"""Setuptools shim.

The execution environment ships setuptools 65 without the ``wheel`` package
and has no network access, so PEP 660 editable installs (which need
``bdist_wheel``) are unavailable.  This file enables the legacy editable
install path::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.

The native VF2 kernel (``src/repro/isomorphism/_ckernel.c``) is declared as
an **optional** extension: a build without a C toolchain still succeeds and
the package falls back to the pure-Python bigint kernel.  The extension is a
plain C99 shared object consumed through ctypes — ``CKERNEL_PYMODULE`` only
adds the module init stub setuptools requires — and when it is absent at
runtime :mod:`repro.isomorphism._ckernel_loader` compiles the same source
on demand into a user cache instead.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.isomorphism._ckernel",
            sources=["src/repro/isomorphism/_ckernel.c"],
            define_macros=[("CKERNEL_PYMODULE", "1")],
            optional=True,
        )
    ]
)
