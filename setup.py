"""Setuptools shim.

The execution environment ships setuptools 65 without the ``wheel`` package
and has no network access, so PEP 660 editable installs (which need
``bdist_wheel``) are unavailable.  This file enables the legacy editable
install path::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
