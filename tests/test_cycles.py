"""Tests for bounded simple-cycle enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.features import cycle_feature_codes, cycle_feature_counts, enumerate_simple_cycles

from .conftest import labeled_graphs, make_clique, make_cycle_graph, make_path_graph


class TestEnumeration:
    def test_triangle_has_one_cycle(self):
        cycles = list(enumerate_simple_cycles(make_cycle_graph("ABC"), 8))
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1, 2}

    def test_path_has_no_cycles(self):
        assert list(enumerate_simple_cycles(make_path_graph("ABCD"), 8)) == []

    def test_k4_cycle_count(self):
        # K4 has 4 triangles and 3 four-cycles = 7 simple cycles.
        cycles = list(enumerate_simple_cycles(make_clique("AAAA"), 8))
        assert len(cycles) == 7
        assert sum(1 for c in cycles if len(c) == 3) == 4
        assert sum(1 for c in cycles if len(c) == 4) == 3

    def test_max_length_bound(self):
        cycles = list(enumerate_simple_cycles(make_clique("AAAA"), 3))
        assert len(cycles) == 4  # only the triangles

    def test_min_length_bound(self):
        cycles = list(enumerate_simple_cycles(make_clique("AAAA"), 8, min_length=4))
        assert len(cycles) == 3  # only the 4-cycles

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            list(enumerate_simple_cycles(make_cycle_graph("ABC"), 8, min_length=2))

    def test_max_smaller_than_min_yields_nothing(self):
        assert list(enumerate_simple_cycles(make_clique("AAAA"), 2)) == []

    @settings(max_examples=25, deadline=None)
    @given(labeled_graphs(max_vertices=6))
    def test_cycles_are_simple_and_closed(self, graph):
        for cycle in enumerate_simple_cycles(graph, 6):
            assert len(cycle) >= 3
            assert len(set(cycle)) == len(cycle)
            for u, v in zip(cycle, cycle[1:]):
                assert graph.has_edge(u, v)
            assert graph.has_edge(cycle[-1], cycle[0])

    @settings(max_examples=25, deadline=None)
    @given(labeled_graphs(max_vertices=6))
    def test_each_cycle_enumerated_once(self, graph):
        seen = set()
        for cycle in enumerate_simple_cycles(graph, 6):
            key = frozenset(cycle)
            edge_key = frozenset(
                frozenset(pair) for pair in zip(cycle, cycle[1:] + (cycle[0],))
            )
            assert (key, edge_key) not in seen
            seen.add((key, edge_key))


class TestCycleFeatures:
    def test_codes_on_square(self):
        codes = cycle_feature_codes(make_cycle_graph("ABAB"), 8)
        assert len(codes) == 1
        assert next(iter(codes)).startswith("cycle:")

    def test_counts_on_k4(self):
        counts = cycle_feature_counts(make_clique("AAAA"), 8)
        assert sum(counts.values()) == 7

    def test_counts_respect_max_length(self):
        counts = cycle_feature_counts(make_clique("AAAA"), 3)
        assert sum(counts.values()) == 4
