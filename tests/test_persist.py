"""Tests for the durability subsystem (:mod:`repro.persist`).

The contracts:

* **WAL discipline** — records are length-prefixed and CRC-checksummed;
  a torn tail (partial header, partial payload, corrupt checksum) never
  poisons the intact prefix, and ``repair=True`` truncates it in place.
* **Atomic snapshots** — snapshots land via temp-file + rename, so a
  crash mid-write leaves either the old state or the new one, never a
  half-written file; corrupt snapshots fall back to the previous one.
* **Warm restart** — an engine reopened on its persist directory serves
  *byte-identical* answers and accounting to an engine that never
  restarted, for single-shard and sharded configurations alike.
* **Prefix consistency** — however the process dies (no close, WAL torn
  at an arbitrary byte offset), recovery lands exactly on some window
  flush boundary: the state equals a fresh engine fed that query prefix.
* **Follower identity** — a remote replica streaming the delta log over
  the wire probes the same entry ids as the leader, including across a
  compaction-floor reset.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.cache import QueryCache
from repro.core.config import (
    CacheConfig,
    ConfigError,
    EngineConfig,
    PersistConfig,
    ShardConfig,
)
from repro.core.engine import IGQ
from repro.core.shard import DeltaLog, ShardedIGQ, ShardEntry
from repro.datasets import load_dataset
from repro.features.extractor import FeatureExtractor
from repro.methods import create_method
from repro.persist import CacheFollower, attach_persistence
from repro.persist import inspect as persist_inspect
from repro.persist import replicate, restore, snapshot, wal
from repro.service import GraphQueryService, serve
from repro.service.protocol import ProtocolError
from repro.workloads import QueryGenerator, WorkloadSpec

from .conftest import make_path_graph

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

WINDOW = 10
CACHE = CacheConfig(size=25, window=WINDOW)


# ----------------------------------------------------------------------
# Shared workload
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def database():
    return load_dataset("synthetic", scale=0.12)


@pytest.fixture(scope="module")
def queries(database):
    spec = WorkloadSpec(
        name="zipf", graph_distribution="zipf", node_distribution="zipf",
        alpha=1.2, seed=11,
    )
    return QueryGenerator(database, spec).generate(120)


def persist_config(tmp_path, **overrides):
    overrides.setdefault("fsync", "flush")
    return PersistConfig(dir=str(tmp_path / "state"), **overrides)


def build_engine(database, config):
    cls = ShardedIGQ if config.shard.shards > 1 else IGQ
    engine = cls.from_config(create_method("ggsx", max_path_length=3), config)
    engine.build_index(database)
    return engine


def cache_fingerprint(engine):
    """Everything a restart must reproduce, as one comparable value."""
    entries = sorted(
        (
            entry.entry_id,
            repr(entry.graph),
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            tuple(sorted(entry.tags)),
        )
        for entry in engine.cache.entries()
    )
    return (engine.cache.query_counter, entries)


def result_fingerprint(results):
    return [
        (
            tuple(sorted(map(repr, result.answers))),
            result.num_sub_hits,
            result.num_super_hits,
            result.exact_hit,
        )
        for result in results
    ]


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
class TestWal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal-0.seg"
        writer = wal.WalWriter(path)
        records = [("delta", {"n": i}) for i in range(5)] + [("state", {"q": 50})]
        for record in records:
            writer.append(record)
        writer.sync()
        writer.close()
        scan = wal.read_segment(path)
        assert scan.clean
        assert scan.records == records
        assert scan.valid_bytes == scan.total_bytes

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "wal-0.seg"
        writer = wal.WalWriter(path)
        writer.append(("a", 1))
        writer.close()
        writer = wal.WalWriter(path)
        writer.append(("b", 2))
        writer.close()
        assert wal.read_segment(path).records == [("a", 1), ("b", 2)]

    @pytest.mark.parametrize("cut", [1, 3, 7])
    def test_torn_tail_truncated(self, tmp_path, cut):
        path = tmp_path / "wal-0.seg"
        writer = wal.WalWriter(path)
        writer.append(("a", 1))
        writer.append(("b", 2))
        writer.sync()
        writer.close()
        intact = path.stat().st_size
        # Tear mid-record: keep the first record plus `cut` bytes of junk.
        data = path.read_bytes()
        frame_one = len(wal.MAGIC) + len(wal.encode_record(("a", 1)))
        path.write_bytes(data[: frame_one + cut])
        scan = wal.read_segment(path, repair=True)
        assert not scan.clean
        assert scan.records == [("a", 1)]
        assert path.stat().st_size == frame_one < intact
        # After repair the segment reads back clean.
        assert wal.read_segment(path).clean

    def test_crc_corruption_stops_scan(self, tmp_path):
        path = tmp_path / "wal-0.seg"
        writer = wal.WalWriter(path)
        writer.append(("a", 1))
        writer.append(("b", 2))
        writer.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte of the last record
        path.write_bytes(bytes(data))
        scan = wal.read_segment(path)
        assert not scan.clean
        assert scan.records == [("a", 1)]
        assert "checksum" in scan.reason

    def test_empty_and_bad_magic(self, tmp_path):
        empty = tmp_path / "wal-empty.seg"
        empty.write_bytes(b"")
        assert wal.read_segment(empty).clean
        bad = tmp_path / "wal-bad.seg"
        bad.write_bytes(b"NOTAWAL!" + b"x" * 16)
        scan = wal.read_segment(bad)
        assert not scan.clean and scan.records == []

    def test_segment_names_sort_by_version(self, tmp_path):
        for version in (7, 123, 0):
            (tmp_path / wal.segment_name(version)).write_bytes(wal.MAGIC)
        listed = wal.list_segments(tmp_path)
        assert [version for version, _ in listed] == [0, 7, 123]
        assert wal.segment_start_version(wal.segment_name(42)) == 42


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_roundtrip_and_latest(self, tmp_path):
        snapshot.write_snapshot(tmp_path, 5, {"v": 5})
        snapshot.write_snapshot(tmp_path, 12, {"v": 12})
        version, payload = snapshot.load_latest_snapshot(tmp_path)
        assert (version, payload) == (12, {"v": 12})

    def test_corrupt_snapshot_falls_back(self, tmp_path):
        snapshot.write_snapshot(tmp_path, 5, {"v": 5})
        snapshot.write_snapshot(tmp_path, 12, {"v": 12})
        newest = tmp_path / snapshot.snapshot_name(12)
        data = bytearray(newest.read_bytes())
        data[-1] ^= 0xFF
        newest.write_bytes(bytes(data))
        version, payload = snapshot.load_latest_snapshot(tmp_path)
        assert (version, payload) == (5, {"v": 5})

    def test_interrupted_rename_leaves_old_state(self, tmp_path):
        snapshot.write_snapshot(tmp_path, 5, {"v": 5})
        # A crash between write and rename leaves only a temp file behind.
        stray = tmp_path / (snapshot.snapshot_name(12) + ".999.tmp")
        stray.write_bytes(b"half-written")
        assert snapshot.load_latest_snapshot(tmp_path) == (5, {"v": 5})
        snapshot.prune_snapshots(tmp_path, keep_version=5)
        assert not stray.exists()

    def test_prune_keeps_newest(self, tmp_path):
        for version in (3, 9, 20):
            snapshot.write_snapshot(tmp_path, version, {"v": version})
        snapshot.prune_snapshots(tmp_path, keep_version=20)
        assert [version for version, _ in snapshot.list_snapshots(tmp_path)] == [20]


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
class TestPersistConfig:
    def test_defaults_off(self):
        config = EngineConfig()
        assert config.persist.dir is None
        assert not config.persist.enabled

    def test_bad_fsync_rejected(self):
        with pytest.raises(ConfigError, match="persist.fsync"):
            PersistConfig(dir="/tmp/x", fsync="sometimes")

    def test_bad_snapshot_interval_rejected(self):
        with pytest.raises(ConfigError, match="snapshot_interval"):
            PersistConfig(dir="/tmp/x", snapshot_interval=0)

    def test_round_trips_through_dict(self, tmp_path):
        config = EngineConfig(
            persist=PersistConfig(dir=str(tmp_path), fsync="never", follow="h:1")
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_mode_mismatch_rejected(self, tmp_path, database, queries):
        config = EngineConfig(cache=CACHE, persist=persist_config(tmp_path))
        engine = build_engine(database, config)
        for query in queries[:WINDOW]:
            engine.query(query)
        engine.close()
        sharded = EngineConfig(
            cache=CACHE,
            shard=ShardConfig(shards=3, backend="inline"),
            persist=persist_config(tmp_path),
        )
        with pytest.raises(ConfigError, match="shards"):
            build_engine(database, sharded)


# ----------------------------------------------------------------------
# Warm restart
# ----------------------------------------------------------------------
SHARDED = ShardConfig(shards=3, backend="inline", hot_threshold=2)


def engine_config(tmp_path=None, shard=None):
    kwargs = {"cache": CACHE}
    if shard is not None:
        kwargs["shard"] = shard
    if tmp_path is not None:
        kwargs["persist"] = persist_config(tmp_path)
    return EngineConfig(**kwargs)


class TestWarmRestart:
    @pytest.mark.parametrize("shard", [None, SHARDED], ids=["single", "sharded"])
    def test_restart_is_byte_identical(self, tmp_path, database, queries, shard):
        durable = engine_config(tmp_path, shard)
        first = build_engine(database, durable)
        for query in queries[:80]:
            first.query(query)
        before = cache_fingerprint(first)
        first.close()

        reopened = build_engine(database, durable)
        assert reopened.persister.restored
        assert cache_fingerprint(reopened) == before

        reference = build_engine(database, engine_config(None, shard))
        for query in queries[:80]:
            reference.query(query)
        cont_reopened = [reopened.query(q) for q in queries[80:120]]
        cont_reference = [reference.query(q) for q in queries[80:120]]
        assert result_fingerprint(cont_reopened) == result_fingerprint(cont_reference)
        assert cache_fingerprint(reopened) == cache_fingerprint(reference)
        reopened.close()
        reference.close()

    def test_sharded_placement_survives(self, tmp_path, database, queries):
        durable = engine_config(tmp_path, SHARDED)
        first = build_engine(database, durable)
        for query in queries[:80]:
            first.query(query)
        placement = (
            dict(first._entry_shard),
            dict(first._replica_targets),
            first._flush_count,
            first._moves_applied,
            first._replicas_created,
        )
        first.close()
        reopened = build_engine(database, durable)
        assert placement == (
            dict(reopened._entry_shard),
            dict(reopened._replica_targets),
            reopened._flush_count,
            reopened._moves_applied,
            reopened._replicas_created,
        )
        reopened.close()

    def test_restart_without_state_is_cold(self, tmp_path, database):
        engine = build_engine(database, engine_config(tmp_path))
        assert engine.persister is not None
        assert not engine.persister.restored
        engine.close()

    def test_close_is_idempotent(self, tmp_path, database, queries):
        engine = build_engine(database, engine_config(tmp_path))
        for query in queries[:WINDOW]:
            engine.query(query)
        engine.close()
        engine.close()
        assert engine.persister.closed

    def test_snapshot_budget_rolls_segments(self, tmp_path, database, queries):
        config = EngineConfig(
            cache=CACHE,
            persist=persist_config(tmp_path, snapshot_interval=8),
        )
        engine = build_engine(database, config)
        for query in queries[:60]:
            engine.query(query)
        stats = engine.persister.stats()
        assert stats["snapshots"] == 1  # old ones pruned
        assert stats["segments"] == 1
        before = cache_fingerprint(engine)
        engine.close()
        reopened = build_engine(database, config)
        assert cache_fingerprint(reopened) == before
        reopened.close()


# ----------------------------------------------------------------------
# Crash recovery (kill -9 semantics) and fault injection
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_abandoned_engine_recovers_at_flush_boundary(
        self, tmp_path, database, queries
    ):
        durable = engine_config(tmp_path)
        crashed = build_engine(database, durable)
        for query in queries[:77]:  # deliberately not flush-aligned
            crashed.query(query)
        # No close(): simulate the process dying with the WAL mid-window.
        survivor = build_engine(database, durable)
        recovered = survivor.cache.query_counter
        assert recovered == 70  # the last completed window flush
        reference = build_engine(database, engine_config(None))
        for query in queries[:recovered]:
            reference.query(query)
        assert cache_fingerprint(survivor) == cache_fingerprint(reference)
        survivor.close()
        reference.close()
        crashed.persister.close()

    def test_randomized_wal_tears_recover_prefix_consistent(
        self, tmp_path, database, queries
    ):
        """Satellite: fault injection at arbitrary byte offsets.

        Kill the writer, then tear the newest WAL segment at a random
        offset.  Whatever survives, recovery must land on *some* flush
        boundary — never a torn half-window, never corrupted entries.
        """
        durable = engine_config(tmp_path)
        victim = build_engine(database, durable)
        for query in queries[:60]:
            victim.query(query)
        victim.persister.close()
        state_dir = tmp_path / "state"
        segments = wal.list_segments(state_dir)
        assert segments
        newest = segments[-1][1]
        pristine = newest.read_bytes()

        references = {}

        def reference_fingerprint(counter):
            if counter not in references:
                engine = build_engine(database, engine_config(None))
                for query in queries[:counter]:
                    engine.query(query)
                references[counter] = cache_fingerprint(engine)
                engine.close()
            return references[counter]

        rng = random.Random(1234)
        boundaries = {0} | {w for w in range(WINDOW, 61, WINDOW)}
        for _ in range(8):
            cut = rng.randrange(len(wal.MAGIC), len(pristine) + 1)
            newest.write_bytes(pristine[:cut])
            survivor = build_engine(database, durable)
            counter = survivor.cache.query_counter
            assert counter in boundaries, (cut, counter)
            assert cache_fingerprint(survivor) == reference_fingerprint(counter)
            survivor.close()
            # Re-arm: the recovered engine rewrote the directory, so plant
            # the pristine artifacts back for the next injection round.
            for _, path in wal.list_segments(state_dir):
                path.unlink()
            for _, path in snapshot.list_snapshots(state_dir):
                path.unlink()
            newest.write_bytes(pristine)

    def test_deleted_directory_recovers_cold(self, tmp_path, database, queries):
        durable = engine_config(tmp_path)
        engine = build_engine(database, durable)
        for query in queries[:30]:
            engine.query(query)
        engine.close()
        import shutil

        shutil.rmtree(tmp_path / "state")
        reopened = build_engine(database, durable)
        assert not reopened.persister.restored
        assert reopened.cache.query_counter == 0
        reopened.close()


# ----------------------------------------------------------------------
# Recovery internals
# ----------------------------------------------------------------------
class TestRecoverDir:
    def test_empty_dir_recovers_nothing(self, tmp_path):
        assert restore.recover_dir(tmp_path) is None

    def test_uncommitted_tail_is_ignored(self, tmp_path):
        """Delta records after the last ``state`` marker do not apply."""
        log = DeltaLog()
        graph = make_path_graph("AB", name="g1")
        features = FeatureExtractor().extract(graph)
        entry = ShardEntry(entry_id=1, graph=graph, features=features)
        committed = log.append_insert(0, entry)
        writer = wal.WalWriter(tmp_path / wal.segment_name(0))
        writer.append(("delta", committed))
        writer.append(("meta", {1: {"answer": [], "tags": (), "added_at": 1}}))
        writer.append(("state", {"format": 1, "query_counter": 10}))
        orphan = log.append_insert(0, ShardEntry(entry_id=2, graph=graph, features=features))
        writer.append(("delta", orphan))  # no closing state marker
        writer.sync()
        writer.close()
        recovered = restore.recover_dir(tmp_path)
        assert recovered.state["query_counter"] == 10
        assert [entry_id for entry_id in recovered.live] == [1]


# ----------------------------------------------------------------------
# Compaction accounting (ServiceReport surface)
# ----------------------------------------------------------------------
class TestCompactStats:
    def test_delta_log_accumulates(self):
        log = DeltaLog()
        graph = make_path_graph("ABC")
        features = FeatureExtractor().extract(graph)
        for entry_id in range(4):
            log.append_insert(0, ShardEntry(entry_id=entry_id, graph=graph, features=features))
        for entry_id in range(4):
            log.append_evict(0, entry_id)
        log.append_flush()
        folded = log.compact(log.version)
        stats = log.compact_stats()
        assert stats["records_folded"] == folded > 0
        assert stats["bytes_reclaimed"] > 0
        assert stats["floor_version"] == log.version
        # Totals accumulate across compactions instead of resetting.
        log.append_flush()
        log.compact(log.version)
        assert log.compact_stats()["records_folded"] >= stats["records_folded"]

    def test_service_report_surfaces_reclaimed_bytes(self, database, queries):
        config = EngineConfig(
            cache=CACHE,
            shard=ShardConfig(shards=3, backend="inline", compact_threshold=4),
        )
        service = GraphQueryService(
            create_method("ggsx", max_path_length=3), config, database=database
        )
        with service:
            for query in queries[:60]:
                service.query(query)
            report = service.stats().as_dict()
        delta_log = report["delta_log"]
        assert delta_log["records_folded"] > 0
        assert delta_log["bytes_reclaimed"] > 0
        assert delta_log["floor_version"] > 0


# ----------------------------------------------------------------------
# Remote followers
# ----------------------------------------------------------------------
def follower_matches_leader(service, follower, probes):
    engine = service.engine
    assert follower.entry_ids() == sorted(engine.cache.entry_ids())
    for query in probes:
        features = engine.method.extract_query_features(query)
        assert follower.probe(query, features) == replicate.leader_probe_ids(
            engine, query, features
        )


class TestFollower:
    @pytest.mark.parametrize("sharded", [False, True], ids=["mirror", "sharded"])
    def test_probe_ids_match_leader(self, tmp_path, database, queries, sharded):
        kwargs = {"cache": CACHE}
        if sharded:
            kwargs["shard"] = SHARDED
        else:
            kwargs["persist"] = persist_config(tmp_path, fsync="never")
        service = GraphQueryService(
            create_method("ggsx", max_path_length=3), EngineConfig(**kwargs),
            database=database,
        )
        with service, serve(service) as server:
            with CacheFollower(server.host, server.port) as follower:
                for index, query in enumerate(queries[:60]):
                    service.query(query)
                    if index % 20 == 19:
                        follower.poll()
                follower.poll()
                follower_matches_leader(service, follower, queries[60:80])
                assert follower.resets == 0

    def test_truncated_follower_resets_and_replays(self, tmp_path, database, queries):
        service = GraphQueryService(
            create_method("ggsx", max_path_length=3),
            EngineConfig(
                cache=CACHE,
                shard=ShardConfig(
                    shards=3, backend="inline", hot_threshold=2, compact_threshold=4
                ),
            ),
            database=database,
        )
        with service, serve(service) as server:
            with CacheFollower(server.host, server.port) as follower:
                for query in queries[:WINDOW]:
                    service.query(query)
                follower.poll()
                for query in queries[WINDOW:60]:
                    service.query(query)
                # The aggressive compaction budget pushed the floor far
                # past this follower's cursor while it slept.
                assert service.engine.delta_log.floor_version > follower.version > 0
                follower.poll()
                assert follower.resets == 1
                follower_matches_leader(service, follower, queries[60:80])

    @pytest.mark.skipif(
        bool(os.environ.get("REPRO_FORCE_PERSIST_DIR")),
        reason="forced persistence gives every engine a followable mirror log",
    )
    def test_unfollowable_leader_is_a_typed_error(self, database, queries):
        service = GraphQueryService(
            create_method("ggsx", max_path_length=3),
            EngineConfig(cache=CACHE),
            database=database,
        )
        with service, serve(service) as server:
            with CacheFollower(server.host, server.port) as follower:
                with pytest.raises(ProtocolError) as excinfo:
                    follower.poll()
                assert excinfo.value.code == "not_followable"

    def test_from_config_needs_follow_address(self):
        with pytest.raises(ConfigError, match="persist.follow"):
            CacheFollower.from_config(EngineConfig())

    def test_move_records_are_skipped(self):
        graph = make_path_graph("AB")
        data = {"version": 3, "epoch": 1, "op": "move", "shard": 1,
                "entry_id": 7, "src_shard": 0}
        assert replicate.delta_from_wire(data, FeatureExtractor()) is None

    def test_bad_wire_records_are_typed_errors(self):
        extractor = FeatureExtractor()
        with pytest.raises(ProtocolError):
            replicate.delta_from_wire("not-a-dict", extractor)
        with pytest.raises(ProtocolError):
            replicate.delta_from_wire({"op": "insert", "version": 0}, extractor)
        with pytest.raises(ProtocolError):
            replicate.delta_from_wire({"op": "melt", "version": 1}, extractor)


# ----------------------------------------------------------------------
# The inspector CLI
# ----------------------------------------------------------------------
class TestInspect:
    def test_reports_clean_state(self, tmp_path, database, queries, capsys):
        durable = engine_config(tmp_path)
        engine = build_engine(database, durable)
        for query in queries[:30]:
            engine.query(query)
        engine.close()
        status = persist_inspect.main([str(tmp_path / "state"), "--records"])
        out = capsys.readouterr().out
        assert status == 0
        assert "snap-" in out and "wal-" in out

    def test_flags_torn_segments(self, tmp_path, database, queries, capsys):
        durable = engine_config(tmp_path)
        engine = build_engine(database, durable)
        for query in queries[:30]:
            engine.query(query)
        engine.persister.close()
        _, newest = wal.list_segments(tmp_path / "state")[-1]
        newest.write_bytes(newest.read_bytes()[:-3])
        status = persist_inspect.main([str(tmp_path / "state")])
        assert status == 1
        assert "TORN" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            persist_inspect.main([str(tmp_path / "nope")])
        assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# Cache restore primitives
# ----------------------------------------------------------------------
class TestCacheRestore:
    def test_restore_entry_preserves_identity(self):
        cache = QueryCache()
        graph = make_path_graph("AB", name="q")
        features = FeatureExtractor().extract(graph)
        cache.restore_entry(7, graph, features, answer=["g1"], added_at=3, hits=2)
        entry = cache.get(7)
        assert (entry.entry_id, entry.hits, entry.added_at) == (7, 2, 3)
        assert cache.next_entry_id == 8
        with pytest.raises(ValueError):
            cache.restore_entry(7, graph, features, answer=[], added_at=3)

    def test_attach_persistence_round_trips_state(self, tmp_path, database, queries):
        """The low-level hook an engine's ``_attach_persistence`` uses."""
        config = engine_config(tmp_path)
        engine = build_engine(database, config)
        for query in queries[:30]:
            engine.query(query)
        state = engine.persist_state()
        engine.close()
        bare = build_engine(database, engine_config(None))
        persister = attach_persistence(bare, config.persist)
        assert persister.restored
        assert bare.persist_state() == state
        persister.close()
