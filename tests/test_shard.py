"""Tests for the sharded query cache and its delta-replicated state.

Four contracts:

* **Replication** — a replica that missed any number of window flushes
  catches up by replaying the ordered delta log and ends in exactly the
  state a from-scratch replay (or the live replica) has; compaction folds
  the log without changing what a bootstrap sees, and a replica behind the
  compaction floor falls back to reset-and-replay.
* **Routing** — an entry's owning shard is a pure function of its graph's
  canonical form: stable across processes and insert/evict churn, and
  shared by isomorphic (relabeled) copies.
* **Equivalence** — ``ShardedIGQ`` with ``shards=1`` is byte-identical to
  the legacy :class:`IGQ` engine (same code paths), and ``shards>1`` —
  inline or process-backed — is byte-identical to ``shards=1``: answers,
  per-query accounting, containment-test statistics, cache contents and
  replacement metadata.
* **Lifecycle** — compiled payloads ship through deltas (shards never
  recompile) and every eviction path releases them.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    IGQ,
    CacheConfig,
    DeltaLog,
    DeltaLogTruncated,
    EngineConfig,
    QueryIndexShard,
    ShardConfig,
    ShardedIGQ,
)
from repro.core.shard import BROADCAST, ShardEntry, shard_of_key
from repro.datasets.registry import load_dataset
from repro.features import FeatureExtractor
from repro.features.canonical import canonical_graph_key
from repro.isomorphism import Verifier
from repro.methods import create_method
from repro.workloads.generator import QueryGenerator, WorkloadSpec
from repro.workloads.zipf import create_sampler

from .conftest import make_path_graph, random_labeled_graph

EXTRACTOR = FeatureExtractor(max_path_length=3)


@pytest.fixture(scope="module")
def small_synthetic():
    return load_dataset("synthetic", scale=0.12)


@pytest.fixture(scope="module")
def zipf_stream(small_synthetic):
    spec = WorkloadSpec(
        name="zipf", graph_distribution="zipf", node_distribution="zipf",
        alpha=1.2, seed=5,
    )
    pool = QueryGenerator(small_synthetic, spec).generate(12)
    rng = random.Random(6)
    sampler = create_sampler("zipf", len(pool), alpha=1.2)
    return [pool[sampler.sample(rng)] for _ in range(48)]


def engine_fingerprint(engine, results):
    """Everything the equivalence contract compares, as one tuple."""
    answers = [tuple(sorted(map(repr, result.answers))) for result in results]
    accounting = [
        (
            result.num_isomorphism_tests,
            result.num_sub_hits,
            result.num_super_hits,
            result.exact_hit,
            result.verification_skipped,
        )
        for result in results
    ]
    cache_state = sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )
    igq_stats = engine.igq_verifier.stats
    method_stats = engine.method.verifier.stats
    return (
        answers,
        accounting,
        cache_state,
        (igq_stats.tests, igq_stats.positives, igq_stats.negatives),
        (method_stats.tests, method_stats.positives, method_stats.negatives),
    )


def run_engine(database, stream, engine_cls=ShardedIGQ, **engine_kwargs):
    method = create_method("ggsx", max_path_length=3)
    engine = engine_cls(method, cache_size=10, window_size=3, **engine_kwargs)
    engine.build_index(database)
    results = [engine.query(query) for query in stream]
    fingerprint = engine_fingerprint(engine, results)
    return engine, fingerprint


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_stable_and_in_range(self):
        rng = random.Random(7)
        graphs = [random_labeled_graph(rng, rng.randint(2, 6), 0.4) for _ in range(50)]
        for num_shards in (1, 2, 3, 8):
            shards = [
                shard_of_key(canonical_graph_key(graph), num_shards) for graph in graphs
            ]
            assert all(0 <= shard < num_shards for shard in shards)
            # Pure function of the graph: recomputing never moves an entry.
            assert shards == [
                shard_of_key(canonical_graph_key(graph), num_shards) for graph in graphs
            ]

    def test_distributes_over_shards(self):
        rng = random.Random(11)
        graphs = [random_labeled_graph(rng, rng.randint(2, 7), 0.4) for _ in range(200)]
        hit_shards = {shard_of_key(canonical_graph_key(g), 4) for g in graphs}
        assert hit_shards == {0, 1, 2, 3}

    def test_isomorphic_copies_share_a_shard(self):
        graph = make_path_graph("ABCA")
        relabeled = make_path_graph("ABCA")  # structural copy
        assert shard_of_key(canonical_graph_key(graph), 8) == shard_of_key(
            canonical_graph_key(relabeled), 8
        )

    def test_routing_stable_under_churn(self, small_synthetic, zipf_stream):
        engine, _ = run_engine(
            small_synthetic, zipf_stream, shards=3, shard_backend="inline"
        )
        # After arbitrary insert/evict churn, every live entry sits exactly
        # where re-running the router would put it, and the replicas hold
        # exactly their routed entries.
        for entry in engine.cache.entries():
            assert engine.entry_shard(entry.entry_id) == engine.shard_of(entry.graph)
        for shard in engine.shard_runtime.shards:
            expected = sorted(
                entry_id
                for entry_id in engine.cache.entry_ids()
                if engine.entry_shard(entry_id) == shard.shard_id
            )
            assert shard.entry_ids() == expected
        engine.close()


# ----------------------------------------------------------------------
# Delta log
# ----------------------------------------------------------------------
def make_entry(entry_id: int, name: str = "g") -> ShardEntry:
    graph = make_path_graph("AB")
    graph.name = f"{name}{entry_id}"
    return ShardEntry(entry_id=entry_id, graph=graph, features=EXTRACTOR.extract(graph))


class TestDeltaLog:
    def test_versions_and_epochs_are_monotonic(self):
        log = DeltaLog()
        log.append_insert(0, make_entry(1))
        log.append_insert(1, make_entry(2))
        assert log.epoch == 0
        log.append_flush()
        log.append_evict(0, 1)
        log.append_flush()
        versions = [record.version for record in log.since(0)]
        assert versions == [1, 2, 3, 4, 5]
        assert log.epoch == 2
        assert [r.epoch for r in log.since(0)] == [0, 0, 1, 1, 2]

    def test_shard_filter_keeps_flush_markers(self):
        log = DeltaLog()
        log.append_insert(0, make_entry(1))
        log.append_insert(1, make_entry(2))
        log.append_flush()
        records = log.since(0, shard=1)
        assert [(r.op, r.shard) for r in records] == [("insert", 1), ("flush", -1)]

    def test_compact_folds_to_net_state(self):
        log = DeltaLog()
        log.append_insert(0, make_entry(1))
        log.append_insert(0, make_entry(2))
        log.append_flush()
        log.append_evict(0, 1)
        log.append_flush()
        log.append_insert(0, make_entry(3))
        removed = log.compact(5)  # everything up to the second flush marker
        assert removed == 4  # insert(1), evict(1) and the two markers fold away
        assert log.floor_version == 5
        # Bootstrap (version 0) still sees the net state: entry 2 then entry 3.
        replayed = [(r.op, r.entry_id) for r in log.since(0)]
        assert replayed == [("insert", 2), ("insert", 3)]

    def test_compact_folds_move_into_rewritten_insert(self):
        log = DeltaLog()
        log.append_insert(0, make_entry(1))
        original = make_entry(2)
        log.append_insert(1, original)
        log.append_flush()
        moved = make_entry(2)
        log.append_move(moved, src_shard=1, dst_shard=0)
        log.append_flush()
        removed = log.compact(5)
        assert removed == 3  # the move and both markers fold away
        replayed = [(r.op, r.entry_id, r.shard) for r in log.since(0)]
        assert replayed == [("insert", 1, 0), ("insert", 2, 0)]
        # The retained insert carries the move's payload (the source shard
        # released the original instance's compiled pointers on transfer)
        # but keeps its original version, so the order is stable.
        rewritten = log.since(0)[1]
        assert rewritten.entry is moved
        assert rewritten.version == 2
        # A fresh shard 0 bootstrapping from the folded prefix holds both.
        shard = QueryIndexShard(0)
        shard.catch_up(log)
        assert shard.entry_ids() == [1, 2]
        # ...and shard 1 (the move's source) sees nothing to install.
        other = QueryIndexShard(1)
        other.catch_up(log)
        assert other.entry_ids() == []

    def test_compact_replicate_supersedes_insert(self):
        log = DeltaLog()
        log.append_insert(0, make_entry(1))
        log.append_insert(1, make_entry(2))
        log.append_replicate(make_entry(1))
        log.append_flush()
        removed = log.compact(4)
        assert removed == 2  # insert(1) and the marker fold away
        replayed = [(r.op, r.entry_id, r.shard) for r in log.since(0)]
        assert replayed == [("insert", 2, 1), ("replicate", 1, BROADCAST)]
        # Replaying the replicate alone IS the net state of a hot entry:
        # every holder installs it in its replica store, no home copy.
        for shard_id in (0, 1):
            shard = QueryIndexShard(shard_id)
            shard.catch_up(log)
            assert shard.replica_ids() == [1]
            assert shard.entry_ids() == ([2] if shard_id == 1 else [])

    def test_compact_retains_standalone_replicate(self):
        # Born-hot entries enter the log as a replicate with no prior
        # insert; compaction must retain the record and a bootstrap must
        # still install it on exactly its holder group.
        log = DeltaLog()
        log.append_replicate(make_entry(7), targets=(0, 1))
        log.append_flush()
        removed = log.compact(2)
        assert removed == 1  # only the marker folds
        holder = QueryIndexShard(0)
        holder.catch_up(log)
        assert holder.replica_ids() == [7]
        assert holder.entry_ids() == []
        outsider = QueryIndexShard(2)
        outsider.catch_up(log)
        assert outsider.replica_ids() == []

    def test_compact_drops_evicted_replicated_entry(self):
        log = DeltaLog()
        log.append_insert(0, make_entry(1))
        log.append_replicate(make_entry(1))
        log.append_evict(BROADCAST, 1)
        log.append_flush()
        log.compact(4)
        assert log.since(0) == []

    def test_subscriber_below_floor_is_rejected(self):
        log = DeltaLog()
        log.append_insert(0, make_entry(1))
        log.append_evict(0, 1)
        log.append_flush()
        log.compact(3)
        with pytest.raises(DeltaLogTruncated):
            log.since(1)
        assert log.since(0) == []  # net state is empty

    def test_shard_rejects_stale_and_misrouted_deltas(self):
        log = DeltaLog()
        delta = log.append_insert(0, make_entry(1))
        shard = QueryIndexShard(0)
        shard.apply(delta)
        with pytest.raises(ValueError):
            shard.apply(delta)  # already applied
        misrouted = log.append_insert(1, make_entry(2))
        with pytest.raises(ValueError):
            shard.apply(misrouted)
        shard.reset()


# ----------------------------------------------------------------------
# Replication
# ----------------------------------------------------------------------
def probe_fingerprint(shard: QueryIndexShard, queries) -> list:
    """Hit ids of both probe directions over ``queries``."""
    out = []
    for query in queries:
        features = EXTRACTOR.extract(query)
        out.append(
            (
                shard.find_supergraph_ids(query, features),
                shard.find_subgraph_ids(query, features),
            )
        )
    return out


class TestReplication:
    def test_replay_after_missed_flushes_equals_full_rebuild(
        self, small_synthetic, zipf_stream
    ):
        method = create_method("ggsx", max_path_length=3)
        engine = ShardedIGQ(
            method, shards=2, shard_backend="inline", cache_size=10, window_size=3
        )
        engine.build_index(small_synthetic)
        half = len(zipf_stream) // 2
        for query in zipf_stream[:half]:
            engine.query(query)
        # A straggler replica synchronised now...
        straggler = QueryIndexShard(0, verifier=Verifier())
        straggler.catch_up(engine.delta_log)
        flushes_before = engine.delta_log.epoch
        # ...misses every flush of the second half of the stream...
        for query in zipf_stream[half:]:
            engine.query(query)
        assert engine.delta_log.epoch > flushes_before
        # ...and replays the tail instead of being re-snapshotted.
        applied = straggler.catch_up(engine.delta_log)
        assert applied > 0

        fresh = QueryIndexShard(0, verifier=Verifier())
        fresh.catch_up(engine.delta_log)
        live = engine.shard_runtime.shards[0]
        probes = zipf_stream[:6]
        assert straggler.entry_ids() == fresh.entry_ids() == live.entry_ids()
        assert straggler.epoch == fresh.epoch == engine.delta_log.epoch
        assert (
            probe_fingerprint(straggler, probes)
            == probe_fingerprint(fresh, probes)
            == probe_fingerprint(live, probes)
        )
        engine.close()

    def test_replica_behind_compaction_floor_resets_and_recovers(
        self, small_synthetic, zipf_stream
    ):
        method = create_method("ggsx", max_path_length=3)
        engine = ShardedIGQ(
            method, shards=2, shard_backend="inline", cache_size=10, window_size=3
        )
        engine.build_index(small_synthetic)
        half = len(zipf_stream) // 2
        for query in zipf_stream[:half]:
            engine.query(query)
        stale = QueryIndexShard(1, verifier=Verifier())
        stale.catch_up(engine.delta_log)
        for query in zipf_stream[half:]:
            engine.query(query)
        # Compact past the straggler's cursor: replaying the tail is no
        # longer sound, so catch_up must reset and bootstrap from 0.
        engine.delta_log.compact(engine.delta_log.version)
        assert stale.applied_version < engine.delta_log.floor_version
        stale.catch_up(engine.delta_log)
        live = engine.shard_runtime.shards[1]
        assert stale.entry_ids() == live.entry_ids()
        probes = zipf_stream[:6]
        assert probe_fingerprint(stale, probes) == probe_fingerprint(live, probes)
        engine.close()

    def test_deltas_ship_compiled_payloads_never_recompiled(
        self, small_synthetic, zipf_stream
    ):
        engine, _ = run_engine(
            small_synthetic, zipf_stream, shards=2, shard_backend="inline"
        )
        inserts = [
            record
            for record in engine.delta_log.since(0)
            if record.op == "insert" and record.entry_id in engine.cache
        ]
        assert inserts
        for record in inserts:
            parent = engine.cache.get(record.entry_id)
            # Compiled exactly once, in the parent, shared by the payload.
            assert record.entry.compiled_target is parent.compiled_target
            assert record.entry.compiled_plan is parent.compiled_plan
            assert parent.compiled_target is not None
            assert parent.compiled_plan is not None
        engine.close()

    def test_auto_compaction_keeps_log_bounded(self, small_synthetic, zipf_stream):
        method = create_method("ggsx", max_path_length=3)
        engine = ShardedIGQ(
            method,
            shards=2,
            shard_backend="inline",
            compact_threshold=8,
            cache_size=10,
            window_size=3,
        )
        engine.build_index(small_synthetic)
        for query in zipf_stream:
            engine.query(query)
        # Inline replicas are always current, so compaction can fold the
        # whole prefix: live inserts plus at most the tail of one window.
        assert len(engine.delta_log) <= 8 + len(engine.cache)
        assert engine.delta_log.floor_version > 0
        engine.close()


# ----------------------------------------------------------------------
# Hot-key replication and adaptive rebalancing
# ----------------------------------------------------------------------
def run_hot_engine(database, stream, **shard_fields):
    """Run a stream through a config-built sharded engine (hot knobs on)."""
    method = create_method("ggsx", max_path_length=3)
    engine = ShardedIGQ(
        method,
        EngineConfig(
            cache=CacheConfig(size=10, window=3),
            shard=ShardConfig(**shard_fields),
        ),
    )
    engine.build_index(database)
    results = [engine.query(query) for query in stream]
    return engine, engine_fingerprint(engine, results)


class TestHotReplication:
    @pytest.mark.parametrize(
        "shard_fields",
        [
            {"shards": 3, "hot_threshold": 2, "rebalance_interval": 2},
            {"shards": 3, "hot_threshold": 1, "replication_factor": 2},
            {"shards": 4, "rebalance_interval": 1},
            {"shards": 2, "hot_threshold": 2, "rebalance_interval": 1},
        ],
    )
    def test_hot_configurations_match_single_shard(
        self, shard_fields, small_synthetic, zipf_stream
    ):
        _, baseline = run_engine(small_synthetic, zipf_stream, shards=1)
        engine, sharded = run_hot_engine(
            small_synthetic, zipf_stream, backend="inline", **shard_fields
        )
        assert sharded == baseline
        stats = engine.shard_stats()
        if "hot_threshold" in shard_fields:
            assert stats["replicas_live"] > 0  # replication actually fired
        if shard_fields.get("rebalance_interval") == 1:
            assert stats["moves_applied"] > 0  # rebalancing actually fired
        engine.close()

    def test_process_shard_skipping_flushes_catches_up(
        self, small_synthetic, zipf_stream
    ):
        """Pruned-away process shards miss whole flush epochs, then replay.

        With probe pruning on, a shard can go unprobed across one or more
        window flushes; the parent ships it the accumulated log tail with
        its next probe.  The run must observe such a lag actually happening
        and still end byte-identical to the single-shard engine.
        """
        stream = zipf_stream[:30]
        _, baseline = run_engine(small_synthetic, stream, shards=1)
        method = create_method("ggsx", max_path_length=3)
        engine = ShardedIGQ(
            method,
            EngineConfig(
                cache=CacheConfig(size=10, window=3),
                shard=ShardConfig(
                    shards=2, backend="process", hot_threshold=1, rebalance_interval=2
                ),
            ),
        )
        engine.build_index(small_synthetic)
        lagged = False
        results = []
        for query in stream:
            results.append(engine.query(query))
            if engine.shard_runtime._pools is not None:
                behind = min(engine.shard_runtime._shipped)
                if any(r.op == "flush" for r in engine.delta_log.since(behind)):
                    lagged = True
        assert lagged
        assert engine_fingerprint(engine, results) == baseline
        engine.close()

    def test_replication_factor_limits_holder_group(
        self, small_synthetic, zipf_stream
    ):
        engine, _ = run_hot_engine(
            small_synthetic,
            zipf_stream,
            shards=3,
            backend="inline",
            hot_threshold=1,
            replication_factor=2,
        )
        stats = engine.shard_stats()
        assert stats["replicas_live"] > 0
        # Every replicate record names exactly its 2-shard holder group,
        # and the group contains the entry's home shard.
        replicates = [
            record for record in engine.delta_log.since(0) if record.op == "replicate"
        ]
        assert replicates
        for record in replicates:
            assert record.targets is not None and len(record.targets) == 2
        # Live holders: each hot entry counted once per holder, nowhere else
        # (the inline backend's shards share one physical replica store, so
        # the holder narrowing lives in this parent-side accounting and in
        # the per-probe cover directives, not in the store itself).
        assert sum(engine.replica_counts()) == 2 * stats["replicas_live"]
        for entry_id, targets in engine._replica_targets.items():
            assert engine.entry_shard(entry_id) in targets
        engine.close()

    def test_born_hot_replacement_skips_home_install(
        self, small_synthetic, zipf_stream
    ):
        """A churned-out hot entry's re-insertion is replicated directly.

        The replacement enters the log as a standalone ``replicate`` record
        — no home insert/retire round-trip — which is exactly the record
        shape the compaction test pins down as bootstrap-valid.
        """
        engine, _ = run_hot_engine(
            small_synthetic, zipf_stream, shards=3, backend="inline", hot_threshold=1
        )
        records = engine.delta_log.since(0)
        assert engine.delta_log.floor_version == 0  # full history retained
        inserted = {r.entry_id for r in records if r.op == "insert"}
        born_hot = [
            r.entry_id
            for r in records
            if r.op == "replicate" and r.entry_id not in inserted
        ]
        assert born_hot
        engine.close()

    def test_straggler_missing_rebalance_epoch_resets_and_replays(
        self, small_synthetic, zipf_stream
    ):
        method = create_method("ggsx", max_path_length=3)
        engine = ShardedIGQ(
            method,
            EngineConfig(
                cache=CacheConfig(size=10, window=3),
                shard=ShardConfig(
                    shards=2, backend="inline", hot_threshold=2, rebalance_interval=1
                ),
            ),
        )
        engine.build_index(small_synthetic)
        half = len(zipf_stream) // 2
        for query in zipf_stream[:half]:
            engine.query(query)
        straggler = QueryIndexShard(0, verifier=Verifier())
        straggler.catch_up(engine.delta_log)
        moves_before = engine.shard_stats()["moves_applied"]
        for query in zipf_stream[half:]:
            engine.query(query)
        # The missed tail contains at least one rebalance epoch (moves) and
        # replicate traffic; compacting past the straggler's cursor makes a
        # plain tail replay unsound, so catch_up must reset and bootstrap.
        assert engine.shard_stats()["moves_applied"] > moves_before
        engine.delta_log.compact(engine.delta_log.version)
        assert straggler.applied_version < engine.delta_log.floor_version
        straggler.catch_up(engine.delta_log)
        live = engine.shard_runtime.shards[0]
        assert straggler.entry_ids() == live.entry_ids()
        assert straggler.replica_ids() == live.replica_ids()
        # Probing home + full replica cover agrees with the live shard.
        for query in zipf_stream[:6]:
            features = EXTRACTOR.extract(query)
            assert sorted(
                straggler.find_supergraph_ids(query, features, cover=True)
            ) == sorted(live.find_supergraph_ids(query, features, cover=True))
            assert sorted(
                straggler.find_subgraph_ids(query, features, cover=True)
            ) == sorted(live.find_subgraph_ids(query, features, cover=True))
        engine.close()

    def test_reset_stats_clears_counters_not_placement(
        self, small_synthetic, zipf_stream
    ):
        engine, _ = run_hot_engine(
            small_synthetic,
            zipf_stream,
            shards=3,
            backend="inline",
            hot_threshold=2,
            rebalance_interval=2,
        )
        stats = engine.shard_stats()
        assert stats["replicas_live"] > 0
        assert sum(stats["probe_load"]) > 0
        replicas_before = engine.replica_counts()
        engine.reset_stats()
        stats = engine.shard_stats()
        assert stats["probe_load"] == [0, 0, 0]
        assert stats["moves_applied"] == 0
        assert stats["replicas_created"] == 0
        assert stats["delta_log"]["records_folded"] == 0
        # Placement survives: replicas stay replicated, entries stay put.
        assert stats["replicas_live"] > 0
        assert engine.replica_counts() == replicas_before
        # The engine keeps serving queries (fresh hotness slate).
        result = engine.query(zipf_stream[0])
        assert result is not None
        engine.close()


# ----------------------------------------------------------------------
# Engine equivalence (the A/B contract)
# ----------------------------------------------------------------------
class TestShardedEngineEquivalence:
    def test_shards_1_matches_legacy_engine(self, small_synthetic, zipf_stream):
        _, legacy = run_engine(small_synthetic, zipf_stream, engine_cls=IGQ)
        sharded_engine, sharded = run_engine(small_synthetic, zipf_stream, shards=1)
        assert sharded == legacy
        assert sharded_engine.delta_log is None  # truly today's path
        assert sharded_engine.shard_runtime is None

    @pytest.mark.parametrize("shards", [2, 4])
    def test_inline_shards_match_single_shard(
        self, shards, small_synthetic, zipf_stream
    ):
        _, baseline = run_engine(small_synthetic, zipf_stream, shards=1)
        engine, sharded = run_engine(
            small_synthetic, zipf_stream, shards=shards, shard_backend="inline"
        )
        assert sharded == baseline
        engine.close()

    def test_process_shards_match_single_shard(self, small_synthetic, zipf_stream):
        stream = zipf_stream[:30]
        _, baseline = run_engine(small_synthetic, stream, shards=1)
        engine, sharded = run_engine(
            small_synthetic, stream, shards=2, shard_backend="process"
        )
        assert sharded == baseline
        engine.close()

    def test_supergraph_mode_inline_shards(self, small_synthetic, zipf_stream):
        stream = zipf_stream[:30]

        def run(shards):
            method = create_method("ggsx", max_path_length=3)
            engine = ShardedIGQ(
                method,
                shards=shards,
                shard_backend="inline",
                cache_size=10,
                window_size=3,
                mode="supergraph",
            )
            engine.build_index(small_synthetic)
            results = [engine.query(query) for query in stream]
            fingerprint = engine_fingerprint(engine, results)
            engine.close()
            return fingerprint

        assert run(3) == run(1)

    def test_run_batch_on_sharded_engine(self, small_synthetic, zipf_stream):
        stream = zipf_stream[:24]
        _, baseline = run_engine(small_synthetic, stream, shards=1)
        method = create_method("ggsx", max_path_length=3)
        engine = ShardedIGQ(
            method, shards=2, shard_backend="inline", cache_size=10, window_size=3
        )
        engine.build_index(small_synthetic)
        results = engine.run_batch(list(stream))
        assert engine_fingerprint(engine, results) == baseline
        engine.close()

    def test_batch_executor_borrows_process_shard_pools(
        self, small_synthetic, zipf_stream
    ):
        """Verification chunks ride on the long-lived shard workers.

        With process-backed shards the batch executor must not spawn a
        second pool: its ``process`` backend borrows the shard pools (whose
        workers hold the method snapshot *and* the delta-fed replica), and
        the pipelined run stays byte-identical to the single-shard engine.
        """
        from repro.core.batch import BatchExecutor

        stream = zipf_stream[:24]
        _, baseline = run_engine(small_synthetic, stream, shards=1)
        method = create_method("ggsx", max_path_length=3)
        engine = ShardedIGQ(
            method, shards=2, shard_backend="process", cache_size=10, window_size=3
        )
        engine.build_index(small_synthetic)
        with BatchExecutor(engine, num_workers=2, backend="process") as executor:
            results = executor.run_batch(stream)
            executor._ensure_pool()
            assert not executor._owns_pool  # borrowed, not spawned
        assert engine_fingerprint(engine, results) == baseline
        engine.close()

    def test_single_component_configurations(self, small_synthetic, zipf_stream):
        stream = zipf_stream[:24]
        for flags in ({"enable_isuper": False}, {"enable_isub": False}):
            def run(shards):
                method = create_method("ggsx", max_path_length=3)
                engine = ShardedIGQ(
                    method,
                    shards=shards,
                    shard_backend="inline",
                    cache_size=10,
                    window_size=3,
                    **flags,
                )
                engine.build_index(small_synthetic)
                results = [engine.query(query) for query in stream]
                fingerprint = engine_fingerprint(engine, results)
                engine.close()
                return fingerprint

            assert run(2) == run(1)

    def test_dict_path_configuration(self, small_synthetic, zipf_stream):
        stream = zipf_stream[:24]

        def run(shards):
            method = create_method(
                "ggsx", max_path_length=3, verifier=Verifier(compiled=False)
            )
            engine = ShardedIGQ(
                method,
                shards=shards,
                shard_backend="inline",
                cache_size=10,
                window_size=3,
                igq_compiled=False,
                igq_verifier=Verifier(compiled=False),
            )
            engine.build_index(small_synthetic)
            results = [engine.query(query) for query in stream]
            fingerprint = engine_fingerprint(engine, results)
            # The dict-path A/B flag must hold on the shards too.
            if engine.delta_log is not None:
                for record in engine.delta_log.since(0):
                    if record.op == "insert":
                        assert record.entry.compiled_target is None
                        assert record.entry.compiled_plan is None
            engine.close()
            return fingerprint

        assert run(2) == run(1)


class TestValidation:
    def test_rejects_bad_configuration(self):
        method = create_method("ggsx", max_path_length=3)
        with pytest.raises(ValueError):
            ShardedIGQ(method, shards=0)
        with pytest.raises(ValueError):
            ShardedIGQ(method, shards=2, shard_backend="threads")

    def test_context_manager_closes_runtime(self, small_synthetic):
        method = create_method("ggsx", max_path_length=3)
        with ShardedIGQ(method, shards=2, shard_backend="inline") as engine:
            engine.build_index(small_synthetic)
        engine.close()  # idempotent
