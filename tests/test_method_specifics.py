"""Method-specific behaviour: GGSX trie, Grapes locations, CT-Index bitmaps."""

from __future__ import annotations

import pytest

from repro.features import FeatureExtractor
from repro.graphs import GraphDatabase
from repro.methods import CTIndexMethod, GGSXMethod, GrapesMethod, ScanMethod

from .conftest import make_clique, make_cycle_graph, make_path_graph, make_star_graph


def containment_database() -> GraphDatabase:
    return GraphDatabase.from_graphs(
        [
            make_path_graph("ABC", name="chain"),
            make_cycle_graph("ABC", name="tri"),
            make_cycle_graph("ABCD", name="square"),
            make_star_graph("A", "BBB", name="star"),
            make_clique("ABCD", name="k4"),
        ]
    )


class TestGGSX:
    def test_count_based_filtering(self):
        method = GGSXMethod(max_path_length=2)
        method.build_index(containment_database())
        # The query needs two A-B edges; only graphs with at least two A-B
        # contacts survive the count filter.
        query = make_star_graph("A", "BB")
        candidates = method.filter_candidates(query)
        assert "star" in candidates
        assert "chain" not in candidates

    def test_empty_query_returns_all(self):
        from repro.graphs import LabeledGraph

        method = GGSXMethod(max_path_length=2)
        database = containment_database()
        method.build_index(database)
        assert method.filter_candidates(LabeledGraph()) == set(database.ids())

    def test_trie_is_exposed(self):
        method = GGSXMethod(max_path_length=2)
        method.build_index(containment_database())
        assert method.trie.num_features > 0
        assert method.index_size_bytes() > 0

    def test_custom_extractor(self):
        extractor = FeatureExtractor(max_path_length=1)
        method = GGSXMethod(extractor=extractor)
        assert method.max_path_length == 1


class TestGrapes:
    def test_name_reflects_workers(self):
        assert GrapesMethod(num_workers=1).name == "grapes"
        assert GrapesMethod(num_workers=6).name == "grapes6"

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            GrapesMethod(num_workers=0)

    def test_candidate_regions_cover_embeddings(self):
        method = GrapesMethod(max_path_length=2)
        database = containment_database()
        method.build_index(database)
        query = make_path_graph("ABC")
        features = method.extract_query_features(query)
        region = method.candidate_regions(features, "square")
        # Any embedding of the query into the square lies inside the region.
        square = database.get("square")
        assert region <= set(square.vertices())
        assert len(region) >= query.num_vertices

    def test_verification_restricted_to_components(self):
        method = GrapesMethod(max_path_length=2)
        database = containment_database()
        method.build_index(database)
        query = make_cycle_graph("ABC")
        result = method.query(query)
        # The ABC triangle is contained in the triangle itself and in K4
        # (whose A, B and C vertices are mutually adjacent), nowhere else.
        assert result.answers == {"tri", "k4"}

    def test_disconnected_query_falls_back(self):
        from repro.graphs import LabeledGraph

        method = GrapesMethod(max_path_length=2)
        database = containment_database()
        method.build_index(database)
        query = LabeledGraph()
        query.add_vertex(0, "A")
        query.add_vertex(1, "C")
        result = method.query(query)
        # Every graph containing both an A and a C vertex.
        expected = {
            gid
            for gid, graph in database.items()
            if graph.vertices_with_label("A") and graph.vertices_with_label("C")
        }
        assert result.answers == expected

    def test_index_size_includes_locations(self):
        plain = GGSXMethod(max_path_length=2)
        located = GrapesMethod(max_path_length=2)
        database = containment_database()
        plain.build_index(database)
        located.build_index(database)
        assert located.index_size_bytes() > plain.index_size_bytes()


class TestCTIndex:
    def test_bitmap_is_deterministic(self):
        method = CTIndexMethod(tree_max_size=3, cycle_max_length=4, bitmap_bits=256)
        other = CTIndexMethod(tree_max_size=3, cycle_max_length=4, bitmap_bits=256)
        database = containment_database()
        method.build_index(database)
        other.build_index(database)
        for graph_id in database.ids():
            assert method.graph_bitmap(graph_id) == other.graph_bitmap(graph_id)

    def test_bitmap_within_width(self):
        method = CTIndexMethod(bitmap_bits=64, tree_max_size=3, cycle_max_length=4)
        method.build_index(containment_database())
        for graph_id in ("tri", "k4"):
            assert method.graph_bitmap(graph_id) < (1 << 64)

    def test_subgraph_bitmap_is_covered(self):
        method = CTIndexMethod(tree_max_size=3, cycle_max_length=4)
        database = containment_database()
        method.build_index(database)
        query = make_cycle_graph("ABC")
        query_bitmap = method.fingerprint(method.extract_query_features(query))
        tri_bitmap = method.graph_bitmap("tri")
        assert tri_bitmap & query_bitmap == query_bitmap

    def test_invalid_bitmap_width(self):
        with pytest.raises(ValueError):
            CTIndexMethod(bitmap_bits=4)

    def test_smaller_bitmaps_cannot_reduce_candidates(self):
        database = containment_database()
        wide = CTIndexMethod(tree_max_size=3, cycle_max_length=4, bitmap_bits=4096)
        narrow = CTIndexMethod(tree_max_size=3, cycle_max_length=4, bitmap_bits=16)
        wide.build_index(database)
        narrow.build_index(database)
        query = make_path_graph("ABC")
        assert set(wide.filter_candidates(query)) <= set(narrow.filter_candidates(query))

    def test_index_size_scales_with_width(self):
        database = containment_database()
        small = CTIndexMethod(tree_max_size=3, cycle_max_length=4, bitmap_bits=256)
        large = CTIndexMethod(tree_max_size=3, cycle_max_length=4, bitmap_bits=8192)
        small.build_index(database)
        large.build_index(database)
        assert large.index_size_bytes() > small.index_size_bytes()


class TestScan:
    def test_candidates_are_size_filtered_universe(self):
        method = ScanMethod()
        database = containment_database()
        method.build_index(database)
        query = make_clique("ABCD")
        candidates = method.filter_candidates(query)
        assert candidates == {"k4"}  # only K4 is large enough
        assert method.index_size_bytes() == 0
