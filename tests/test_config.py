"""Tests for the typed engine configuration (:mod:`repro.core.config`).

Three contracts:

* **Round-trip** — ``EngineConfig.from_dict(config.to_dict()) == config``
  for defaults and for fully customised configs, through JSON included.
* **Validation** — invalid values (negative cache size, unknown backend,
  unknown keys, W > C, both components off) raise :class:`ConfigError`
  with a message naming the field and the accepted values.
* **Equivalence + shims** — an engine built from a config is byte-identical
  (answers, accounting, cache and replacement state) to one built from the
  legacy flat kwargs; the flat kwargs still work but emit a
  ``DeprecationWarning`` pointing at the config field, and the new API
  itself emits none (this module runs with DeprecationWarning as error).
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    IGQ,
    BatchConfig,
    CacheConfig,
    ConfigError,
    EngineConfig,
    ShardConfig,
    ShardedIGQ,
    VerifierConfig,
)
from repro.datasets.registry import load_dataset
from repro.methods import create_method
from repro.workloads.generator import QueryGenerator, WorkloadSpec

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


@pytest.fixture(scope="module")
def database():
    return load_dataset("synthetic", scale=0.12)


@pytest.fixture(scope="module")
def stream(database):
    spec = WorkloadSpec(
        name="zipf", graph_distribution="zipf", node_distribution="zipf",
        alpha=1.3, seed=11,
    )
    pool = QueryGenerator(database, spec).generate(10)
    # Repeats give the query index something to hit.
    return (pool + pool[:6] + pool[3:8])[:24]


def engine_fingerprint(engine, results):
    """Answers, accounting, cache contents and replacement state as a tuple."""
    answers = [tuple(sorted(map(repr, result.answers))) for result in results]
    accounting = [
        (
            result.num_isomorphism_tests,
            result.num_sub_hits,
            result.num_super_hits,
            result.exact_hit,
            result.verification_skipped,
        )
        for result in results
    ]
    cache_state = sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
            entry.tags.get("mode"),
        )
        for entry in engine.cache.entries()
    )
    return (answers, accounting, cache_state)


# ----------------------------------------------------------------------
# Round-trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_default_round_trip(self):
        config = EngineConfig()
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_custom_round_trip(self):
        config = EngineConfig(
            mode="mixed",
            enable_isuper=False,
            cache=CacheConfig(size=64, window=16, policy="hit_rate"),
            verifier=VerifierConfig(algorithm="ullmann", compiled=False, precheck=False),
            batch=BatchConfig(num_workers=4, backend="thread", chunk_size=8,
                              pipeline=False, memoize_features=False),
            shard=ShardConfig(shards=4, backend="inline", compact_threshold=None),
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = EngineConfig(
            mode="supergraph",
            cache=CacheConfig(size=10, window=5),
            shard=ShardConfig(shards=2, backend="process"),
        )
        restored = EngineConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config

    def test_hot_key_fields_round_trip(self):
        config = EngineConfig(
            shard=ShardConfig(
                shards=4,
                backend="inline",
                hot_threshold=3,
                rebalance_interval=5,
                replication_factor=2,
            ),
        )
        restored = EngineConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config
        assert restored.shard.hot_threshold == 3
        assert restored.shard.rebalance_interval == 5
        assert restored.shard.replication_factor == 2

    def test_partial_dict_fills_defaults(self):
        config = EngineConfig.from_dict({"cache": {"size": 7, "window": 3}})
        assert config.cache == CacheConfig(size=7, window=3)
        assert config.batch == BatchConfig()
        assert config.mode == "subgraph"

    def test_sections_accept_plain_dicts(self):
        config = EngineConfig(cache={"size": 12, "window": 4}, shard={"shards": 2})
        assert config.cache == CacheConfig(size=12, window=4)
        assert config.shard.shards == 2

    def test_configs_are_frozen_and_hashable(self):
        config = EngineConfig()
        with pytest.raises(AttributeError):
            config.mode = "supergraph"
        assert hash(config) == hash(EngineConfig())

    def test_replace_returns_modified_copy(self):
        config = EngineConfig()
        mixed = config.replace(mode="mixed")
        assert mixed.mode == "mixed"
        assert config.mode == "subgraph"


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_negative_cache_size(self):
        with pytest.raises(ConfigError, match=r"cache\.size=-5.*integer >= 1"):
            CacheConfig(size=-5)

    def test_zero_window(self):
        with pytest.raises(ConfigError, match=r"cache\.window=0"):
            CacheConfig(window=0)

    def test_window_larger_than_size(self):
        with pytest.raises(ConfigError, match=r"W <= C"):
            CacheConfig(size=10, window=20)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match=r"cache\.policy='lru'.*one of"):
            CacheConfig(policy="lru")

    def test_unknown_batch_backend(self):
        with pytest.raises(ConfigError, match=r"batch\.backend='gpu'.*one of"):
            BatchConfig(backend="gpu")

    def test_unknown_shard_backend(self):
        with pytest.raises(ConfigError, match=r"shard\.backend='remote'.*one of"):
            ShardConfig(backend="remote")

    def test_zero_hot_threshold(self):
        with pytest.raises(ConfigError, match=r"shard\.hot_threshold=0"):
            ShardConfig(shards=2, hot_threshold=0)

    def test_negative_rebalance_interval(self):
        with pytest.raises(ConfigError, match=r"shard\.rebalance_interval=-1"):
            ShardConfig(shards=2, rebalance_interval=-1)

    def test_replication_factor_of_one(self):
        with pytest.raises(ConfigError, match=r"replication_factor=1.*>= 2"):
            ShardConfig(shards=4, replication_factor=1)

    def test_replication_factor_above_shard_count(self):
        with pytest.raises(
            ConfigError, match=r"replication_factor=3 cannot exceed shard\.shards=2"
        ):
            ShardConfig(shards=2, replication_factor=3)

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigError, match=r"verifier\.algorithm='vf3'"):
            VerifierConfig(algorithm="vf3")

    def test_unknown_mode(self):
        with pytest.raises(ConfigError, match=r"engine\.mode='bidirectional'"):
            EngineConfig(mode="bidirectional")

    def test_both_components_disabled(self):
        with pytest.raises(ConfigError, match=r"at least one iGQ component"):
            EngineConfig(enable_isub=False, enable_isuper=False)

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match=r"unknown key\(s\) \['caches'\]"):
            EngineConfig.from_dict({"caches": {"size": 3}})

    def test_unknown_section_key(self):
        with pytest.raises(ConfigError, match=r"unknown key\(s\) \['capacity'\]"):
            EngineConfig.from_dict({"cache": {"capacity": 3}})

    def test_wrong_section_type(self):
        with pytest.raises(ConfigError, match=r"engine\.cache must be a CacheConfig"):
            EngineConfig(cache=42)

    def test_non_bool_flag(self):
        with pytest.raises(ConfigError, match=r"batch\.pipeline=1.*expected a bool"):
            BatchConfig(pipeline=1)

    def test_plain_igq_rejects_sharded_config(self, database):
        method = create_method("ggsx", max_path_length=3)
        with pytest.raises(ConfigError, match=r"from_config"):
            IGQ(method, EngineConfig(shard=ShardConfig(shards=4)))

    def test_config_plus_legacy_kwargs_rejected(self):
        method = create_method("ggsx", max_path_length=3)
        with pytest.raises(ConfigError, match=r"not both"):
            IGQ(method, EngineConfig(), cache_size=10)

    def test_unknown_legacy_kwarg_rejected(self):
        method = create_method("ggsx", max_path_length=3)
        with pytest.raises(TypeError, match=r"cache_capacity"):
            IGQ(method, cache_capacity=10)


# ----------------------------------------------------------------------
# Construction routing
# ----------------------------------------------------------------------
class TestFromConfig:
    def test_default_engine(self, database):
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ.from_config(method)
        assert type(engine) is IGQ
        assert engine.config == EngineConfig()
        assert engine.maintenance.cache_size == 500

    def test_sharded_dispatch(self, database):
        method = create_method("ggsx", max_path_length=3)
        config = EngineConfig(shard=ShardConfig(shards=4, backend="inline"))
        with IGQ.from_config(method, config) as engine:
            assert isinstance(engine, ShardedIGQ)
            assert engine.num_shards == 4
            assert engine.shard_backend == "inline"

    def test_single_shard_stays_plain_path(self, database):
        method = create_method("ggsx", max_path_length=3)
        engine = ShardedIGQ.from_config(method, EngineConfig())
        assert isinstance(engine, ShardedIGQ)
        assert engine.num_shards == 1
        assert engine.delta_log is None

    def test_verifier_config_applied(self, database):
        method = create_method("ggsx", max_path_length=3)
        config = EngineConfig(
            verifier=VerifierConfig(compiled=False, precheck=False, igq_compiled=False)
        )
        engine = IGQ.from_config(method, config)
        assert engine.igq_compiled is False
        assert engine.igq_verifier.compiled is False
        assert engine.igq_verifier.precheck is False

    def test_run_batch_defaults_come_from_config(self, database):
        method = create_method("ggsx", max_path_length=3)
        config = EngineConfig(
            cache=CacheConfig(size=8, window=4),
            batch=BatchConfig(num_workers=2, backend="thread"),
        )
        engine = IGQ.from_config(method, config)
        engine.build_index(database)
        spec = WorkloadSpec(name="uni", seed=3)
        queries = QueryGenerator(database, spec).generate(6)
        results = engine.run_batch(queries)
        assert len(results) == 6


# ----------------------------------------------------------------------
# Deprecation shims and config/kwarg equivalence
# ----------------------------------------------------------------------
class TestLegacyShims:
    def test_flat_kwargs_warn_and_name_the_config_field(self):
        method = create_method("ggsx", max_path_length=3)
        with pytest.warns(DeprecationWarning, match=r"cache_size= -> EngineConfig\.cache\.size"):
            engine = IGQ(method, cache_size=20, window_size=5)
        assert engine.config.cache == CacheConfig(size=20, window=5)

    def test_no_kwargs_means_no_warning(self):
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ(method)  # must not warn (module errors on DeprecationWarning)
        assert engine.config == EngineConfig()

    def test_shard_kwargs_warn(self):
        method = create_method("ggsx", max_path_length=3)
        with pytest.warns(DeprecationWarning, match=r"shards= -> EngineConfig\.shard\.shards"):
            engine = ShardedIGQ(method, shards=2, shard_backend="inline")
        assert engine.config.shard == ShardConfig(shards=2, backend="inline")

    def test_run_batch_kwargs_warn(self, database):
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ.from_config(method, EngineConfig(cache=CacheConfig(size=8, window=4)))
        engine.build_index(database)
        queries = QueryGenerator(database, WorkloadSpec(name="uni", seed=4)).generate(3)
        with pytest.warns(DeprecationWarning, match=r"EngineConfig\.batch\.num_workers"):
            engine.run_batch(queries, num_workers=1)

    def test_config_built_equals_kwarg_built(self, database, stream):
        """Config-built and kwarg-built engines are byte-identical on a
        workload with repeats, including supergraph mode."""
        for mode in ("subgraph", "supergraph"):
            fingerprints = []
            for build in ("config", "kwargs"):
                method = create_method("ggsx", max_path_length=3)
                if build == "config":
                    config = EngineConfig(
                        mode=mode, cache=CacheConfig(size=8, window=3, policy="utility")
                    )
                    engine = IGQ.from_config(method, config)
                else:
                    with pytest.warns(DeprecationWarning):
                        engine = IGQ(
                            method, cache_size=8, window_size=3,
                            policy="utility", mode=mode,
                        )
                engine.build_index(database)
                results = [engine.query(query) for query in stream]
                fingerprints.append(engine_fingerprint(engine, results))
            assert fingerprints[0] == fingerprints[1]

    def test_sharded_config_equals_kwarg_built(self, database, stream):
        fingerprints = []
        for build in ("config", "kwargs"):
            method = create_method("ggsx", max_path_length=3)
            if build == "config":
                config = EngineConfig(
                    cache=CacheConfig(size=8, window=3),
                    shard=ShardConfig(shards=3, backend="inline"),
                )
                engine = ShardedIGQ.from_config(method, config)
            else:
                with pytest.warns(DeprecationWarning):
                    engine = ShardedIGQ(
                        method, shards=3, shard_backend="inline",
                        cache_size=8, window_size=3,
                    )
            engine.build_index(database)
            with engine:
                results = [engine.query(query) for query in stream]
                fingerprints.append(engine_fingerprint(engine, results))
        assert fingerprints[0] == fingerprints[1]
