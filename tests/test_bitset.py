"""Unit tests for the integer-bitmask candidate sets."""

from __future__ import annotations

import pytest

from repro.graphs.bitset import CandidateBitmap, GraphIdSpace, iter_bits


@pytest.fixture
def space() -> GraphIdSpace:
    return GraphIdSpace(["g0", "g1", "g2", "g3", "g4"])


class TestIterBits:
    def test_empty_mask(self):
        assert list(iter_bits(0)) == []

    def test_ascending_positions(self):
        assert list(iter_bits(0b101101)) == [0, 2, 3, 5]

    def test_large_positions(self):
        mask = (1 << 1000) | (1 << 3)
        assert list(iter_bits(mask)) == [3, 1000]


class TestGraphIdSpace:
    def test_positions_follow_insertion_order(self, space):
        assert space.position("g0") == 0
        assert space.position("g4") == 4
        assert space.id_at(2) == "g2"

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            GraphIdSpace(["a", "b", "a"])

    def test_mask_round_trip(self, space):
        mask = space.mask_of(["g1", "g3"])
        assert mask == 0b01010
        assert space.to_ids(mask) == ["g1", "g3"]

    def test_full_mask(self, space):
        assert space.to_ids(space.full_mask) == ["g0", "g1", "g2", "g3", "g4"]

    def test_mask_of_same_space_bitmap_is_identity(self, space):
        bitmap = CandidateBitmap(space, 0b101)
        assert space.mask_of(bitmap) == 0b101


class TestCandidateBitmap:
    def test_set_protocol(self, space):
        bitmap = CandidateBitmap.from_ids(space, ["g0", "g2"])
        assert len(bitmap) == 2
        assert "g0" in bitmap and "g2" in bitmap
        assert "g1" not in bitmap
        assert "unknown" not in bitmap
        assert sorted(bitmap) == ["g0", "g2"]
        assert bool(bitmap)
        assert not bool(CandidateBitmap(space, 0))

    def test_equality_with_plain_sets_both_orders(self, space):
        bitmap = CandidateBitmap.from_ids(space, ["g0", "g2"])
        assert bitmap == {"g0", "g2"}
        assert {"g0", "g2"} == bitmap
        assert bitmap != {"g0"}

    def test_same_space_algebra_uses_masks(self, space):
        a = CandidateBitmap.from_ids(space, ["g0", "g1", "g2"])
        b = CandidateBitmap.from_ids(space, ["g1", "g3"])
        assert (a & b).mask == space.mask_of(["g1"])
        assert (a | b).mask == space.mask_of(["g0", "g1", "g2", "g3"])
        assert (a - b).mask == space.mask_of(["g0", "g2"])
        assert (a ^ b).mask == space.mask_of(["g0", "g2", "g3"])
        assert a.isdisjoint(CandidateBitmap(space, 0))

    def test_mixed_operand_orders_with_sets(self, space):
        bitmap = CandidateBitmap.from_ids(space, ["g0", "g1"])
        assert set(bitmap & {"g1", "g4"}) == {"g1"}
        assert set({"g1", "g4"} & bitmap) == {"g1"}
        assert set({"g1", "g4"} - bitmap) == {"g4"}
        assert set(bitmap | {"g4"}) == {"g0", "g1", "g4"}

    def test_subset_relations(self, space):
        small = CandidateBitmap.from_ids(space, ["g1"])
        big = CandidateBitmap.from_ids(space, ["g0", "g1"])
        assert small <= big
        assert not big <= small
        assert small <= {"g1", "g0"}
