"""Unit tests for BFS/DFS traversal, components and distances."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.graphs import (
    GraphError,
    LabeledGraph,
    bfs_distances,
    bfs_edges,
    bfs_order,
    connected_components,
    dfs_order,
    is_connected,
    largest_connected_component,
    shortest_path_length,
    vertices_within_distance,
)

from .conftest import labeled_graphs, make_cycle_graph, make_path_graph


def two_component_graph() -> LabeledGraph:
    graph = make_path_graph("ABC")
    graph.add_vertex(10, "X")
    graph.add_vertex(11, "Y")
    graph.add_edge(10, 11)
    return graph


class TestBFS:
    def test_bfs_order_starts_at_source(self):
        graph = make_path_graph("ABCD")
        order = list(bfs_order(graph, 0))
        assert order == [0, 1, 2, 3]

    def test_bfs_order_unknown_source(self):
        graph = make_path_graph("AB")
        with pytest.raises(GraphError):
            list(bfs_order(graph, 99))

    def test_bfs_edges_form_spanning_tree(self):
        graph = make_cycle_graph("ABCD")
        edges = list(bfs_edges(graph, 0))
        assert len(edges) == 3  # |V| - 1 tree edges

    def test_bfs_distances(self):
        graph = make_path_graph("ABCDE")
        distances = bfs_distances(graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_distances_ignore_other_component(self):
        graph = two_component_graph()
        distances = bfs_distances(graph, 0)
        assert 10 not in distances

    @given(labeled_graphs(max_vertices=7))
    def test_bfs_visits_whole_component(self, graph):
        source = next(graph.vertices())
        visited = set(bfs_order(graph, source))
        assert visited == set(bfs_distances(graph, source))


class TestDFS:
    def test_dfs_covers_component(self):
        graph = make_cycle_graph("ABCD")
        assert set(dfs_order(graph, 0)) == {0, 1, 2, 3}

    def test_dfs_unknown_source(self):
        graph = make_path_graph("AB")
        with pytest.raises(GraphError):
            list(dfs_order(graph, 7))


class TestComponents:
    def test_single_component(self):
        graph = make_cycle_graph("ABC")
        components = connected_components(graph)
        assert len(components) == 1
        assert components[0] == {0, 1, 2}

    def test_two_components_sorted_by_size(self):
        graph = two_component_graph()
        components = connected_components(graph)
        assert [len(c) for c in components] == [3, 2]

    def test_is_connected(self):
        assert is_connected(make_path_graph("ABCD"))
        assert not is_connected(two_component_graph())
        assert is_connected(LabeledGraph())

    def test_largest_connected_component(self):
        graph = two_component_graph()
        largest = largest_connected_component(graph)
        assert largest.num_vertices == 3
        assert set(largest.vertices()) == {0, 1, 2}

    @given(labeled_graphs(max_vertices=7, connected=False))
    def test_components_partition_vertices(self, graph):
        components = connected_components(graph)
        union = set()
        total = 0
        for component in components:
            union |= component
            total += len(component)
        assert union == set(graph.vertices())
        assert total == graph.num_vertices


class TestDistances:
    def test_shortest_path_length(self):
        graph = make_cycle_graph("ABCDEF")
        assert shortest_path_length(graph, 0, 3) == 3
        assert shortest_path_length(graph, 0, 5) == 1

    def test_shortest_path_disconnected(self):
        graph = two_component_graph()
        assert shortest_path_length(graph, 0, 10) is None

    def test_shortest_path_unknown_target(self):
        graph = make_path_graph("AB")
        with pytest.raises(GraphError):
            shortest_path_length(graph, 0, 77)

    def test_vertices_within_distance(self):
        graph = make_path_graph("ABCDE")
        assert vertices_within_distance(graph, [0], 2) == {0, 1, 2}
        assert vertices_within_distance(graph, [0, 4], 1) == {0, 1, 3, 4}

    def test_vertices_within_distance_zero(self):
        graph = make_path_graph("ABC")
        assert vertices_within_distance(graph, [1], 0) == {1}

    def test_vertices_within_negative_radius(self):
        graph = make_path_graph("AB")
        with pytest.raises(ValueError):
            vertices_within_distance(graph, [0], -1)

    def test_vertices_within_distance_unknown_source(self):
        graph = make_path_graph("AB")
        with pytest.raises(GraphError):
            vertices_within_distance(graph, [9], 1)
