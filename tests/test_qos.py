"""Multi-tenant QoS: fair scheduling, quotas, rate limits, cancel, timeouts.

Two layers:

* :class:`~repro.service.scheduler.FairScheduler` unit tests drive the
  deficit round-robin dispatcher with a fake clock — dispatch order,
  weighting, token-bucket rate limiting, quota admission and drain
  semantics are all deterministic;
* service-level tests run a real engine and assert the user-visible
  contracts: a flooding tenant cannot starve a light one, ``Future.cancel``
  on a queued submission prevents its execution, and deadlines expire
  submissions with :class:`~repro.service.QueryTimeout`.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import pytest

from repro.core import CacheConfig, EngineConfig
from repro.core.config import ConfigError, ServiceConfig, TenantConfig
from repro.datasets.registry import load_dataset
from repro.methods import create_method
from repro.service import (
    AdmissionError,
    FairScheduler,
    GraphQueryService,
    QueryTimeout,
)
from repro.service.scheduler import CLOSED, SchedulerClosed
from repro.workloads.generator import QueryGenerator, WorkloadSpec

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_scheduler(clock=None, **service_kwargs) -> FairScheduler:
    return FairScheduler(
        ServiceConfig(**service_kwargs), clock=clock or FakeClock()
    )


def task_for(tenant: str, tag: int = 0) -> SimpleNamespace:
    return SimpleNamespace(tenant=tenant, tag=tag, finalized=False)


def drain_tags(scheduler: FairScheduler) -> list[tuple[str, int]]:
    order = []
    while True:
        task = scheduler.next(block=False)
        if task is None or task is CLOSED:
            return order
        order.append((task.tenant, task.tag))
        scheduler.finish(task)


class TestFairScheduler:
    def test_single_tenant_is_fifo(self):
        scheduler = make_scheduler()
        for tag in range(6):
            scheduler.submit(task_for("default", tag))
        assert drain_tags(scheduler) == [("default", tag) for tag in range(6)]

    def test_deficit_round_robin_respects_weights(self):
        scheduler = make_scheduler(
            tenants=({"name": "heavy", "weight": 3}, {"name": "light", "weight": 1})
        )
        for tag in range(9):
            scheduler.submit(task_for("heavy", tag))
        for tag in range(3):
            scheduler.submit(task_for("light", tag))
        tenants = [tenant for tenant, _ in drain_tags(scheduler)]
        # 3 heavy dispatches per light one, and each tenant's own order FIFO.
        assert tenants == ["heavy"] * 3 + ["light"] + ["heavy"] * 3 + ["light"] + [
            "heavy"
        ] * 3 + ["light"]

    def test_backlogged_tenant_cannot_starve_a_newcomer(self):
        scheduler = make_scheduler(tenants=({"name": "hog", "max_in_flight": 64},))
        for tag in range(50):
            scheduler.submit(task_for("hog", tag))
        scheduler.submit(task_for("fast", 0))
        served_before_fast = 0
        while True:
            task = scheduler.next(block=False)
            if task.tenant == "fast":
                break
            served_before_fast += 1
            scheduler.finish(task)
        # The cursor reaches the newcomer within one round, not after 50.
        assert served_before_fast <= 2

    def test_rate_limit_blocks_and_refills(self):
        clock = FakeClock()
        scheduler = make_scheduler(
            clock, tenants=({"name": "metered", "rate_limit": 2.0},)
        )
        for tag in range(4):
            scheduler.submit(task_for("metered", tag))
        # burst of max(1, rate)=2 tokens, then the bucket is dry
        assert scheduler.next(block=False).tag == 0
        assert scheduler.next(block=False).tag == 1
        assert scheduler.next(block=False) is None
        clock.advance(0.5)  # one token at 2/sec
        assert scheduler.next(block=False).tag == 2
        assert scheduler.next(block=False) is None
        clock.advance(10.0)
        assert scheduler.next(block=False).tag == 3

    def test_rate_limited_tenant_does_not_block_others(self):
        clock = FakeClock()
        scheduler = make_scheduler(
            clock, tenants=({"name": "metered", "rate_limit": 1.0},)
        )
        for tag in range(3):
            scheduler.submit(task_for("metered", tag))
        scheduler.submit(task_for("free", 0))
        scheduler.submit(task_for("free", 1))
        assert scheduler.next(block=False).tenant == "metered"  # burst token
        # metered is dry now; the free tenant keeps being served
        assert scheduler.next(block=False).tenant == "free"
        assert scheduler.next(block=False).tenant == "free"
        assert scheduler.next(block=False) is None

    def test_quota_admission_blocking_and_not(self):
        scheduler = make_scheduler(tenants=({"name": "t", "max_in_flight": 2},))
        first = task_for("t", 0)
        scheduler.submit(first)
        scheduler.submit(task_for("t", 1))
        with pytest.raises(AdmissionError, match="max_in_flight=2"):
            scheduler.submit(task_for("t", 2), block=False)
        # the quota releases on finish(), not on dequeue
        assert scheduler.next(block=False) is first
        with pytest.raises(AdmissionError):
            scheduler.submit(task_for("t", 2), block=False)
        scheduler.finish(first)
        scheduler.submit(task_for("t", 2), block=False)

    def test_blocking_submit_wakes_on_slot_release(self):
        scheduler = make_scheduler(tenants=({"name": "t", "max_in_flight": 1},))
        first = task_for("t", 0)
        scheduler.submit(first)
        submitted = threading.Event()

        def blocked_submit():
            scheduler.submit(task_for("t", 1))
            submitted.set()

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        assert not submitted.wait(0.1)
        assert scheduler.next(block=False) is first
        scheduler.finish(first)
        assert submitted.wait(5.0)
        thread.join()

    def test_finish_is_idempotent(self):
        scheduler = make_scheduler(tenants=({"name": "t", "max_in_flight": 1},))
        task = scheduler_task = task_for("t")
        scheduler.submit(scheduler_task)
        assert scheduler.next(block=False) is task
        scheduler.finish(task)
        scheduler.finish(task)
        assert scheduler.snapshot()["t"]["in_flight"] == 0

    def test_discard_removes_only_queued_tasks(self):
        scheduler = make_scheduler()
        first, second = task_for("default", 0), task_for("default", 1)
        scheduler.submit(first)
        scheduler.submit(second)
        assert scheduler.discard(second) is True
        assert scheduler.discard(second) is False  # already gone
        dequeued = scheduler.next(block=False)
        assert dequeued is first
        assert scheduler.discard(first) is False  # already dispatched
        assert scheduler.next(block=False) is None

    def test_close_drains_ignoring_rate_limits_then_reports_closed(self):
        clock = FakeClock()
        scheduler = make_scheduler(
            clock, tenants=({"name": "metered", "rate_limit": 0.001},)
        )
        scheduler.submit(task_for("metered", 0))
        scheduler.submit(task_for("metered", 1))
        assert scheduler.next(block=False).tag == 0  # the burst token
        assert scheduler.next(block=False) is None  # rate-blocked
        scheduler.close()
        assert scheduler.next(block=False).tag == 1  # drain ignores the bucket
        assert scheduler.next(block=False) is CLOSED
        with pytest.raises(SchedulerClosed):
            scheduler.submit(task_for("metered", 2))

    def test_snapshot_reports_qos_knobs(self):
        scheduler = make_scheduler(
            default_weight=2,
            tenants=({"name": "vip", "weight": 8, "rate_limit": 100.0},),
        )
        scheduler.submit(task_for("vip"))
        scheduler.submit(task_for("anon"))
        snapshot = scheduler.snapshot()
        assert snapshot["vip"] == {
            "queued": 1, "in_flight": 1, "weight": 8,
            "max_in_flight": 32, "rate_limit": 100.0,
        }
        assert snapshot["anon"]["weight"] == 2


@pytest.fixture(scope="module")
def database():
    return load_dataset("synthetic", scale=0.12)


@pytest.fixture(scope="module")
def query_pool(database):
    spec = WorkloadSpec(
        name="zipf", graph_distribution="zipf", node_distribution="zipf",
        alpha=1.2, seed=23,
    )
    return QueryGenerator(database, spec).generate(12)


def qos_service(database, **service_kwargs) -> GraphQueryService:
    config = EngineConfig(
        cache=CacheConfig(size=10, window=3),
        service=ServiceConfig(**service_kwargs),
    )
    return GraphQueryService(
        create_method("ggsx", max_path_length=3), config, database=database
    )


class TestServiceQoS:
    def test_flooding_tenant_does_not_starve_fast_tenant(self, database, query_pool):
        hog_backlog, fast_count = 20, 5
        with qos_service(
            database,
            tenants=(
                TenantConfig(name="hog", weight=1),
                TenantConfig(name="fast", weight=4),
            ),
        ) as service:
            hog = service.session("hog")
            fast = service.session("fast")
            hog_futures = [
                hog.submit(query_pool[index % len(query_pool)])
                for index in range(hog_backlog)
            ]
            fast_futures = [
                fast.submit(query_pool[index]) for index in range(fast_count)
            ]
            for future in fast_futures:
                future.result(timeout=120)
            # The weighted scheduler interleaved the light tenant ahead of
            # the flood: a chunk of the hog's backlog must still be waiting
            # when the fast tenant's last answer arrives.
            hog_unfinished = sum(not future.done() for future in hog_futures)
            assert hog_unfinished >= 5
            for future in hog_futures:
                future.result(timeout=120)
            report = service.stats()
            assert report.sessions["hog"].queries == hog_backlog
            assert report.sessions["fast"].queries == fast_count
            assert report.totals.queries == hog_backlog + fast_count

    def test_cancel_before_dispatch_removes_from_queue(self, database, query_pool):
        # rate_limit < 1 gives a single-token burst: the second submission
        # is deterministically still queued when we cancel it.
        with qos_service(
            database, tenants=(TenantConfig(name="metered", rate_limit=0.5),)
        ) as service:
            session = service.session("metered")
            first = session.submit(query_pool[0])
            second = session.submit(query_pool[1])
            assert second.cancel()
            assert second.cancelled()
            first.result(timeout=120)
            assert service.scheduler_snapshot()["metered"]["queued"] == 0
            assert service.scheduler_snapshot()["metered"]["in_flight"] == 0
            report = service.stats()
            # the cancelled query never reached the engine
            assert report.totals.queries == 1

    def test_cancel_frees_the_tenant_quota_slot(self, database, query_pool):
        with qos_service(
            database,
            tenants=(
                TenantConfig(name="metered", rate_limit=0.5, max_in_flight=2),
            ),
        ) as service:
            session = service.session("metered")
            # burn the single burst token so later submissions stay queued
            session.submit(query_pool[0]).result(timeout=120)
            second = session.submit(query_pool[1])
            third = session.submit(query_pool[2])
            with pytest.raises(AdmissionError, match="max_in_flight=2"):
                session.submit(query_pool[3], block=False)
            assert second.cancel()
            # the freed slot admits a new submission at once
            fourth = session.submit(query_pool[3], block=False)
            assert fourth.cancel()
            assert third.cancel()

    def test_timeout_expires_queued_submission(self, database, query_pool):
        with qos_service(
            database, tenants=(TenantConfig(name="metered", rate_limit=0.5),)
        ) as service:
            session = service.session("metered")
            first = session.submit(query_pool[0])
            second = session.submit(query_pool[1], timeout=0.05)
            with pytest.raises(QueryTimeout, match="timed out after 0.05s"):
                second.result(timeout=120)
            first.result(timeout=120)
            assert service.stats().totals.queries == 1

    def test_default_timeout_from_service_config(self, database, query_pool):
        with qos_service(
            database,
            default_timeout_seconds=0.05,
            tenants=(TenantConfig(name="metered", rate_limit=0.5),),
        ) as service:
            session = service.session("metered")
            session.submit(query_pool[0])
            second = session.submit(query_pool[1])
            with pytest.raises(QueryTimeout):
                second.result(timeout=120)

    def test_invalid_timeout_rejected(self, database, query_pool):
        with qos_service(database) as service:
            with pytest.raises(ConfigError, match="timeout=0"):
                service.submit(query_pool[0], timeout=0)

    def test_service_still_serves_after_timeouts_and_cancels(
        self, database, query_pool
    ):
        with qos_service(database) as service:
            with pytest.raises(QueryTimeout):
                # expires pre- or mid-execution, whichever the race decides;
                # either way the caller sees QueryTimeout, not a late result
                service.submit(query_pool[0], timeout=0.000001).result(timeout=120)
            result = service.query(query_pool[1])
            assert result.query_name == query_pool[1].name