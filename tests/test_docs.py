"""Docs-vs-code sync checks for the engineering handbook.

The configuration reference (``docs/configuration.md``) promises to list
every ``EngineConfig`` field.  This test introspects the dataclass tree —
top-level fields plus every section field as a ``section.field`` token —
and fails when the docs and the code disagree in either direction, so the
reference cannot silently rot when a field is added, renamed or removed.
"""

from __future__ import annotations

import re
from pathlib import Path

from dataclasses import fields

from repro.core.config import EngineConfig, _SECTIONS

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
CONFIGURATION_MD = DOCS / "configuration.md"


def documented_tokens() -> set[str]:
    """Backticked tokens in the reference tables (`` `mode` ``, `` `cache.size` ``)."""
    text = CONFIGURATION_MD.read_text(encoding="utf-8")
    return set(re.findall(r"`([a-z_]+(?:\.[a-z_]+)?)`", text))


def code_tokens() -> set[str]:
    tokens = set()
    for field in fields(EngineConfig):
        if field.name in _SECTIONS:
            tokens.add(field.name)
            tokens.update(
                f"{field.name}.{section_field.name}"
                for section_field in fields(_SECTIONS[field.name])
            )
        else:
            tokens.add(field.name)
    return tokens


class TestConfigurationReference:
    def test_docs_exist(self):
        assert CONFIGURATION_MD.is_file(), "docs/configuration.md is missing"

    def test_every_config_field_is_documented(self):
        missing = code_tokens() - documented_tokens()
        assert not missing, (
            f"EngineConfig fields missing from docs/configuration.md: "
            f"{sorted(missing)} — add a table row with the backticked token"
        )

    def test_no_phantom_fields_documented(self):
        """Dotted tokens in the docs must exist in the dataclass tree (plain
        words appear in prose freely; only section.field tokens are load-
        bearing enough to verify)."""
        dotted = {token for token in documented_tokens() if "." in token}
        phantom = dotted - code_tokens()
        assert not phantom, (
            f"docs/configuration.md documents nonexistent config fields: "
            f"{sorted(phantom)} — the field was renamed or removed"
        )

    def test_accepted_choices_documented(self):
        """The validated choice tuples must appear verbatim in the docs."""
        from repro.core import config as config_module

        text = CONFIGURATION_MD.read_text(encoding="utf-8")
        for tuple_name in ("MODES", "_KERNELS", "_POLICIES", "_BATCH_BACKENDS",
                           "_SHARD_BACKENDS", "_ALGORITHMS"):
            for choice in getattr(config_module, tuple_name):
                assert f'"{choice}"' in text, (
                    f"accepted value {choice!r} ({tuple_name}) is not mentioned "
                    f"in docs/configuration.md"
                )


class TestPublicSurface:
    """The Public API section of the configuration reference mirrors
    ``repro.__all__`` exactly, in both directions."""

    def listed_names(self) -> set[str]:
        text = CONFIGURATION_MD.read_text(encoding="utf-8")
        match = re.search(r"## Public API\n(.*?)(?=\n## )", text, re.DOTALL)
        assert match, "docs/configuration.md has no '## Public API' section"
        return set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", match.group(1)))

    def test_every_export_is_documented(self):
        import repro

        missing = set(repro.__all__) - self.listed_names()
        assert not missing, (
            f"repro.__all__ names missing from the Public API section of "
            f"docs/configuration.md: {sorted(missing)}"
        )

    def test_no_phantom_exports_documented(self):
        import repro

        # the prose legitimately mentions the package and the list itself
        known = set(repro.__all__) | {"repro", "__all__"}
        phantom = self.listed_names() - known
        assert not phantom, (
            f"docs/configuration.md lists names that repro does not export: "
            f"{sorted(phantom)}"
        )


class TestHandbookStructure:
    PAGES = (
        "architecture.md",
        "performance.md",
        "configuration.md",
        "operations.md",
        "service.md",
    )

    def test_all_pages_exist(self):
        for page in self.PAGES:
            assert (DOCS / page).is_file(), f"docs/{page} is missing"

    def test_readme_links_every_page(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for page in self.PAGES:
            assert f"docs/{page}" in readme, f"README does not link docs/{page}"

    def test_internal_links_resolve(self):
        """Every relative markdown link in docs/ and README points at a file
        that exists (anchors are stripped; external URLs are ignored)."""
        sources = [REPO_ROOT / "README.md", *sorted(DOCS.glob("*.md"))]
        broken = []
        for source in sources:
            text = source.read_text(encoding="utf-8")
            for target in re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", text):
                if target.startswith(("http://", "https://", "#", "mailto:")):
                    continue
                path = (source.parent / target.split("#", 1)[0]).resolve()
                if not path.exists():
                    broken.append(f"{source.relative_to(REPO_ROOT)} -> {target}")
        assert not broken, f"broken relative links: {broken}"
