"""Unit tests for GraphDatabase and dataset statistics."""

from __future__ import annotations

import pytest

from repro.graphs import GraphDatabase, GraphError, summarize_dataset

from .conftest import make_cycle_graph, make_path_graph


class TestGraphDatabase:
    def test_from_graphs_uses_names_as_ids(self, tiny_database):
        assert "g_tri" in tiny_database
        assert tiny_database.get("g_tri").num_edges == 3

    def test_from_graphs_generates_ids_for_unnamed(self):
        database = GraphDatabase.from_graphs([make_path_graph("AB"), make_path_graph("BC")])
        assert database.ids() == ["g0", "g1"]

    def test_duplicate_id_rejected(self):
        database = GraphDatabase()
        database.add("g", make_path_graph("AB"))
        with pytest.raises(GraphError):
            database.add("g", make_path_graph("CD"))

    def test_get_unknown_id(self, tiny_database):
        with pytest.raises(GraphError):
            tiny_database.get("nope")

    def test_len_iteration_and_items(self, tiny_database):
        assert len(tiny_database) == 6
        assert set(iter(tiny_database)) == set(tiny_database.ids())
        assert {gid for gid, _ in tiny_database.items()} == set(tiny_database.ids())
        assert len(list(tiny_database.graphs())) == 6

    def test_label_universe(self, tiny_database):
        assert tiny_database.labels() == {"A", "B", "C", "D"}
        assert tiny_database.num_labels == 4

    def test_repr(self, tiny_database):
        assert "graphs=6" in repr(tiny_database)


class TestDatasetStatistics:
    def test_summary_of_known_collection(self):
        graphs = [make_path_graph("AB"), make_cycle_graph("ABC")]
        stats = summarize_dataset(graphs)
        assert stats.num_graphs == 2
        assert stats.num_labels == 3
        assert stats.nodes_avg == pytest.approx(2.5)
        assert stats.nodes_max == 3
        assert stats.edges_avg == pytest.approx(2.0)
        assert stats.edges_max == 3
        # total degree = 2*(1+3) = 8 over 5 vertices
        assert stats.average_degree == pytest.approx(8 / 5)

    def test_summary_of_empty_collection(self):
        stats = summarize_dataset([])
        assert stats.num_graphs == 0
        assert stats.average_degree == 0.0
        assert stats.nodes_max == 0

    def test_as_row_keys(self):
        stats = summarize_dataset([make_path_graph("AB")])
        row = stats.as_row()
        assert set(row) == {
            "num_labels",
            "num_graphs",
            "avg_degree",
            "nodes_avg",
            "nodes_std",
            "nodes_max",
            "edges_avg",
            "edges_std",
            "edges_max",
        }

    def test_std_zero_for_single_graph(self):
        stats = summarize_dataset([make_path_graph("ABCD")])
        assert stats.nodes_std == 0.0
        assert stats.edges_std == 0.0
