"""Tests for the native C kernel backend (``kernel="native"``).

The contract is the repository-wide byte-identity guarantee extended to a
third backend: the C inner loop (``_ckernel.c``, loaded through
:mod:`repro.isomorphism._ckernel_loader`) must return the same boolean as
the bigint kernel on every (plan, target, mask) triple — cross-validated on
the same four corpora the numpy backend is held to (random pairs, the
supergraph direction, multi-word targets past 64 vertices, region-masked
runs) — and the engine built on top must produce identical answers,
accounting and cache state in every configuration, including shards=4
process replicas.  The backend must also *degrade*: with the extension
force-disabled (``REPRO_DISABLE_NATIVE=1``) everything falls back to
bigint with no behaviour change beyond speed, and the fallback is visible
in the folded worker statistics rather than silent.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core import IGQ, ShardedIGQ
from repro.core.batch import BatchExecutor
from repro.core.config import (
    BatchConfig,
    CacheConfig,
    EngineConfig,
    ShardConfig,
    VerifierConfig,
)
from repro.graphs import GraphDatabase, LabeledGraph
from repro.isomorphism import (
    KERNELS,
    Verifier,
    compile_query_plan,
    compile_target,
    compiled_has_embedding,
    native_kernel_available,
    resolve_kernel,
)
from repro.isomorphism import _ckernel_loader
from repro.methods import create_method
from repro.service import GraphQueryService

from .conftest import (
    make_clique,
    make_cycle_graph,
    make_path_graph,
    make_star_graph,
    random_labeled_graph,
)
from .test_compiled import mask_of_vertices, random_pair
from .test_shard import engine_fingerprint, run_engine

needs_native = pytest.mark.skipif(
    not native_kernel_available(),
    reason="native kernel unavailable (no compiler / REPRO_DISABLE_NATIVE)",
)


@pytest.fixture
def small_db():
    rng = random.Random(19)
    graphs = [random_labeled_graph(rng, rng.randint(6, 12), 0.3) for _ in range(24)]
    return GraphDatabase.from_graphs(graphs, name="ckernel_db")


@pytest.fixture
def queries():
    rng = random.Random(23)
    return [random_labeled_graph(rng, rng.randint(3, 5), 0.5) for _ in range(10)]


# ----------------------------------------------------------------------
# Loader
# ----------------------------------------------------------------------
class TestLoader:
    def test_kernel_listed(self):
        assert "native" in KERNELS

    @needs_native
    def test_loaded_artifact_reported(self):
        path = _ckernel_loader.native_kernel_path()
        assert path is not None and path.is_file()

    @needs_native
    def test_resolution_is_cached(self):
        assert _ckernel_loader.kernel() is _ckernel_loader.kernel()


# ----------------------------------------------------------------------
# Kernel parity (the four corpora)
# ----------------------------------------------------------------------
@needs_native
class TestNativeKernelParity:
    """``kernel="native"`` must be observationally identical to the bigint
    loop — same boolean on every (plan, target, mask) triple, since the
    engine's byte-identity guarantee rides on the kernels agreeing."""

    def both_kernels(self, plan, target, mask=None) -> bool:
        bigint = compiled_has_embedding(plan, target, mask, kernel="bigint")
        native = compiled_has_embedding(plan, target, mask, kernel="native")
        assert native == bigint
        return bigint

    def test_known_cases_agree(self):
        cases = [
            (make_path_graph("ABC"), make_cycle_graph("ABC")),
            (make_cycle_graph("ABC"), make_path_graph("ABC")),
            (make_cycle_graph("AAA"), make_clique("AAAA")),
            (make_star_graph("A", "BBB"), make_path_graph("BAB")),
            (LabeledGraph(), make_path_graph("AB")),
        ]
        for pattern, target_graph in cases:
            self.both_kernels(compile_query_plan(pattern), compile_target(target_graph))

    def test_random_pairs_subgraph_direction(self):
        rng = random.Random(171)  # the TestCrossValidation corpus
        positives = 0
        for _ in range(400):
            pattern, target_graph = random_pair(rng)
            positives += self.both_kernels(
                compile_query_plan(pattern), compile_target(target_graph)
            )
        assert positives > 20  # both outcomes exercised

    def test_random_pairs_supergraph_direction(self):
        rng = random.Random(733)
        for _ in range(200):
            query = random_labeled_graph(rng, rng.randint(3, 10), 0.4)
            compiled_query = compile_target(query)
            dataset_graph = random_labeled_graph(rng, rng.randint(1, 6), 0.5)
            self.both_kernels(compile_query_plan(dataset_graph), compiled_query)

    def test_multi_word_targets(self):
        """Targets past 64 vertices span several uint64 words — the CSR
        row arithmetic and cross-word lookahead popcounts must agree."""
        rng = random.Random(65)
        for _ in range(40):
            target_graph = random_labeled_graph(rng, rng.randint(65, 150), 0.05)
            target = compile_target(target_graph)
            for _ in range(5):
                pattern = random_labeled_graph(rng, rng.randint(2, 6), 0.5)
                self.both_kernels(compile_query_plan(pattern), target)

    def test_masked_regions_agree(self):
        rng = random.Random(4242)  # the TestRegionMaskedKernel corpus
        for _ in range(200):
            target_graph = random_labeled_graph(
                rng, rng.randint(2, 10), rng.random() * 0.6, connected=rng.random() < 0.6
            )
            pattern = random_labeled_graph(
                rng, rng.randint(1, 4), rng.random() * 0.8, connected=rng.random() < 0.8
            )
            target = compile_target(target_graph)
            vertices = [vertex for vertex in target_graph.vertices() if rng.random() < 0.6]
            self.both_kernels(
                compile_query_plan(pattern), target, mask_of_vertices(target, vertices)
            )

    def test_verifier_accounting_identical_across_kernels(self, tiny_database):
        query = make_path_graph("ABC")
        verifiers = {name: Verifier(kernel=name) for name in ("bigint", "native", "auto")}
        answers = {}
        for name, verifier in verifiers.items():
            plan = verifier.compile_pattern(query)
            answers[name] = [
                verifier.is_subgraph_compiled(plan, compile_target(tiny_database.get(gid)))
                for gid in tiny_database.ids()
            ]
        assert answers["bigint"] == answers["native"] == answers["auto"]
        reference = verifiers["bigint"].stats
        for name in ("native", "auto"):
            stats = verifiers[name].stats
            assert stats.tests == reference.tests
            assert stats.positives == reference.positives
            assert stats.negatives == reference.negatives


# ----------------------------------------------------------------------
# Resolution and the hoisted dispatch
# ----------------------------------------------------------------------
@needs_native
class TestKernelResolution:
    def test_native_and_auto_resolve_to_native(self):
        target = compile_target(make_cycle_graph("ABC"))
        assert resolve_kernel("native", target) == "native"
        assert resolve_kernel("auto", target) == "native"
        assert resolve_kernel("bigint", target) == "bigint"
        # target-independent form (worker telemetry)
        assert resolve_kernel("native") == "native"
        assert resolve_kernel("auto") == "native"

    def test_resolution_memoised_on_target(self):
        target = compile_target(make_cycle_graph("ABC"))
        assert target._kernel_cache == {}
        assert target.resolved_kernel("auto") == "native"
        assert target._kernel_cache == {"auto": "native"}
        assert target.resolved_kernel("bigint") == "bigint"
        # the memo is what the per-pair hot path consults
        assert target._kernel_cache == {"auto": "native", "bigint": "bigint"}

    def test_verifier_reports_resolved_name(self):
        assert Verifier(kernel="native").resolved_kernel_name() == "native"
        assert Verifier(kernel="auto").resolved_kernel_name() == "native"
        assert Verifier(kernel="bigint").resolved_kernel_name() == "bigint"
        assert Verifier(compiled=False).resolved_kernel_name() == "uncompiled"
        assert Verifier(algorithm="ullmann").resolved_kernel_name() == "uncompiled"

    def test_config_accepts_native(self):
        verifier = VerifierConfig(kernel="native").build()
        assert verifier.kernel == "native"
        with pytest.raises(ValueError, match="kernel"):
            VerifierConfig(kernel="simd").build()


# ----------------------------------------------------------------------
# Pickling (worker snapshots)
# ----------------------------------------------------------------------
@needs_native
class TestPickling:
    def test_target_native_cache_excluded_from_pickles(self):
        target = compile_target(make_clique("ABCD"))
        assert target._native is None
        native = target.native()
        assert target.native() is native  # cached
        assert target.resolved_kernel("native") == "native"
        clone = pickle.loads(pickle.dumps(target))
        assert clone._native is None  # raw addresses never cross processes
        assert clone._kernel_cache == {}  # workers re-resolve locally
        assert compiled_has_embedding(
            compile_query_plan(make_cycle_graph("ABC")), clone, kernel="native"
        )

    def test_plan_native_cache_excluded_from_pickles(self):
        plan = compile_query_plan(make_cycle_graph("ABC"))
        plan.native()
        assert plan._native is not None
        clone = pickle.loads(pickle.dumps(plan))
        assert clone._native is None
        assert clone.steps == plan.steps
        assert compiled_has_embedding(clone, compile_target(make_clique("ABCD")), kernel="native")

    def test_snapshot_ships_parent_resolution(self, small_db):
        method = create_method("ggsx", max_path_length=3, verifier=Verifier(kernel="native"))
        method.build_index(small_db)
        snapshot = method.verification_snapshot()
        assert snapshot.verifier.parent_resolved_kernel == "native"
        # the clone itself has not resolved anything yet: workers do that
        # locally, where the library may or may not load
        assert snapshot.verifier.kernel == "native"
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.verifier.parent_resolved_kernel == "native"


# ----------------------------------------------------------------------
# Forced fallback (no hard dependency on a compiler)
# ----------------------------------------------------------------------
class TestForcedFallback:
    def test_env_gate_disables_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        _ckernel_loader.reset_for_testing()
        try:
            assert _ckernel_loader.native_disabled()
            assert not native_kernel_available()
            assert resolve_kernel("native") == "bigint"
            assert resolve_kernel("auto") == "bigint"
            target = compile_target(make_cycle_graph("ABC"))
            assert target.resolved_kernel("native") == "bigint"
            # a forced-native verifier still answers correctly (on bigint)
            verifier = Verifier(kernel="native")
            plan = verifier.compile_pattern(make_path_graph("AB"))
            assert verifier.is_subgraph_compiled(plan, target)
            assert verifier.stats.tests == 1
        finally:
            _ckernel_loader.reset_for_testing()

    @needs_native
    def test_fallback_answers_identical(self, monkeypatch):
        rng = random.Random(171)
        corpus = [random_pair(rng) for _ in range(60)]
        native_answers = [
            compiled_has_embedding(compile_query_plan(p), compile_target(t), kernel="native")
            for p, t in corpus
        ]
        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        _ckernel_loader.reset_for_testing()
        try:
            fallback_answers = [
                compiled_has_embedding(
                    compile_query_plan(p), compile_target(t), kernel="native"
                )
                for p, t in corpus
            ]
        finally:
            _ckernel_loader.reset_for_testing()
        assert fallback_answers == native_answers


# ----------------------------------------------------------------------
# Engine-level byte-identity (process pools, shards=4)
# ----------------------------------------------------------------------
@needs_native
class TestEngineByteIdentity:
    def bigint_baseline(self, small_db, queries):
        method = create_method("ggsx", max_path_length=3, verifier=Verifier(kernel="bigint"))
        engine = IGQ(method, cache_size=10, window_size=3)
        engine.build_index(small_db)
        results = [engine.query(query) for query in queries]
        fingerprint = engine_fingerprint(engine, results)
        engine.close()
        return fingerprint

    def test_sequential_engine_matches_bigint(self, small_db, queries):
        baseline = self.bigint_baseline(small_db, queries)
        method = create_method("ggsx", max_path_length=3, verifier=Verifier(kernel="native"))
        engine = IGQ(method, cache_size=10, window_size=3)
        engine.build_index(small_db)
        results = [engine.query(query) for query in queries]
        fingerprint = engine_fingerprint(engine, results)
        engine.close()
        assert fingerprint == baseline

    def test_process_pool_matches_bigint(self, small_db, queries):
        baseline = self.bigint_baseline(small_db, queries)
        method = create_method("ggsx", max_path_length=3, verifier=Verifier(kernel="native"))
        engine = IGQ(method, cache_size=10, window_size=3)
        engine.build_index(small_db)
        with BatchExecutor(engine, num_workers=2, backend="process") as executor:
            results = executor.run_batch(queries)
            worker_kernels = dict(executor.stats.worker_kernels)
        fingerprint = engine_fingerprint(engine, results)
        engine.close()
        assert fingerprint == baseline
        # satellite: the folded stats say which backend each chunk ran on
        assert worker_kernels  # at least one parallel chunk
        assert set(worker_kernels) <= {"native", "bigint"}

    def test_native_process_shards_byte_identical(self, small_db, queries):
        """shards=4, process backend, kernel="native": the full acceptance
        configuration must match the inline bigint single-shard run."""
        baseline = self.bigint_baseline(small_db, queries)
        verifier = Verifier(kernel="native")
        method = create_method("ggsx", max_path_length=3, verifier=verifier)
        engine = ShardedIGQ(
            method, shards=4, shard_backend="process", cache_size=10, window_size=3
        )
        engine.build_index(small_db)
        results = [engine.query(query) for query in queries]
        fingerprint = engine_fingerprint(engine, results)
        worker_kernels = engine.shard_stats()["worker_kernels"]
        engine.close()
        assert fingerprint == baseline
        assert set(worker_kernels) == {0, 1, 2, 3}
        assert set(worker_kernels.values()) <= {"native", "bigint"}

    def test_default_auto_engine_matches_bigint(self, small_db, queries):
        """The default configuration now runs the native kernel — its
        results must stay identical to the pre-native bigint engine."""
        baseline = self.bigint_baseline(small_db, queries)
        _, fingerprint = run_engine(small_db, queries, engine_cls=IGQ)
        assert fingerprint == baseline


# ----------------------------------------------------------------------
# Service report visibility
# ----------------------------------------------------------------------
@needs_native
class TestServiceVisibility:
    def test_report_carries_kernel_resolution(self, small_db, queries):
        method = create_method("ggsx", max_path_length=3)
        config = EngineConfig(
            cache=CacheConfig(size=10, window=3),
            shard=ShardConfig(shards=2, backend="process"),
            batch=BatchConfig(),
        )
        with GraphQueryService(method, config, database=small_db) as service:
            for query in queries[:4]:
                service.query(query)
            report = service.stats()
        resolved = report.kernel_resolved
        assert resolved["configured"] == "auto"
        assert resolved["parent"] == "native"
        assert set(resolved["shards"]) <= {0, 1}
        assert set(resolved["shards"].values()) <= {"native", "bigint"}
        assert resolved == report.as_dict()["kernel_resolved"]
