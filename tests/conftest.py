"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.graphs import GraphDatabase, LabeledGraph

# ----------------------------------------------------------------------
# Deterministic example graphs
# ----------------------------------------------------------------------


def make_path_graph(labels: str, name: str | None = None) -> LabeledGraph:
    """A simple path with one vertex per character of ``labels``."""
    graph = LabeledGraph(name=name)
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        graph.add_edge(index, index + 1)
    return graph


def make_cycle_graph(labels: str, name: str | None = None) -> LabeledGraph:
    """A simple cycle with one vertex per character of ``labels``."""
    graph = make_path_graph(labels, name=name)
    if len(labels) > 2:
        graph.add_edge(len(labels) - 1, 0)
    return graph


def make_star_graph(center: str, leaves: str, name: str | None = None) -> LabeledGraph:
    """A star: one centre vertex connected to one leaf per character."""
    graph = LabeledGraph(name=name)
    graph.add_vertex(0, center)
    for index, label in enumerate(leaves, start=1):
        graph.add_vertex(index, label)
        graph.add_edge(0, index)
    return graph


def make_clique(labels: str, name: str | None = None) -> LabeledGraph:
    """A complete graph over one vertex per character of ``labels``."""
    graph = LabeledGraph(name=name)
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for i in range(len(labels)):
        for j in range(i + 1, len(labels)):
            graph.add_edge(i, j)
    return graph


def random_labeled_graph(
    rng: random.Random,
    num_vertices: int,
    edge_probability: float,
    labels: str = "ABC",
    name: str | None = None,
    connected: bool = True,
) -> LabeledGraph:
    """A random labeled graph, optionally forced to be connected."""
    graph = LabeledGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, rng.choice(labels))
    if connected:
        for vertex in range(1, num_vertices):
            graph.add_edge(vertex, rng.randrange(vertex))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if not graph.has_edge(u, v) and rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


@pytest.fixture
def triangle() -> LabeledGraph:
    return make_cycle_graph("ABC", name="triangle")


@pytest.fixture
def path4() -> LabeledGraph:
    return make_path_graph("ABCA", name="path4")


@pytest.fixture
def tiny_database() -> GraphDatabase:
    """A small, hand-crafted database with known containment structure."""
    graphs = [
        make_path_graph("AB", name="g_ab"),
        make_path_graph("ABC", name="g_abc"),
        make_cycle_graph("ABC", name="g_tri"),
        make_cycle_graph("ABCD", name="g_square"),
        make_star_graph("A", "BBC", name="g_star"),
        make_clique("ABCD", name="g_k4"),
    ]
    return GraphDatabase.from_graphs(graphs, name="tiny")


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

LABELS = "ABC"


@st.composite
def labeled_graphs(draw, max_vertices: int = 8, labels: str = LABELS, connected: bool = True):
    """Strategy producing small random labeled graphs."""
    num_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    label_choices = draw(
        st.lists(st.sampled_from(labels), min_size=num_vertices, max_size=num_vertices)
    )
    graph = LabeledGraph()
    for vertex, label in enumerate(label_choices):
        graph.add_vertex(vertex, label)
    if connected and num_vertices > 1:
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_vertices - 1),
                min_size=num_vertices - 1,
                max_size=num_vertices - 1,
            )
        )
        for vertex in range(1, num_vertices):
            parent = parents[vertex - 1] % vertex
            graph.add_edge(vertex, parent)
    possible_edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if not graph.has_edge(u, v)
    ]
    if possible_edges:
        extra = draw(st.lists(st.sampled_from(possible_edges), max_size=len(possible_edges)))
        for u, v in extra:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return graph


@st.composite
def graph_and_subgraph(draw, max_vertices: int = 8, labels: str = LABELS):
    """Strategy producing ``(graph, subgraph)`` where the second is an actual
    (connected, non-induced) subgraph of the first."""
    graph = draw(labeled_graphs(max_vertices=max_vertices, labels=labels))
    edges = list(graph.edges())
    if not edges:
        return graph, graph.copy()
    # Grow a connected edge subset starting from a random edge.
    start = draw(st.integers(min_value=0, max_value=len(edges) - 1))
    chosen = [edges[start]]
    vertices = set(chosen[0])
    remaining = [e for i, e in enumerate(edges) if i != start]
    grow_steps = draw(st.integers(min_value=0, max_value=len(remaining)))
    for _ in range(grow_steps):
        frontier = [e for e in remaining if e[0] in vertices or e[1] in vertices]
        if not frontier:
            break
        index = draw(st.integers(min_value=0, max_value=len(frontier) - 1))
        edge = frontier[index]
        chosen.append(edge)
        vertices.update(edge)
        remaining.remove(edge)
    subgraph = LabeledGraph()
    for vertex in vertices:
        subgraph.add_vertex(vertex, graph.label(vertex))
    for u, v in chosen:
        if not subgraph.has_edge(u, v):
            subgraph.add_edge(u, v)
    return graph, subgraph
