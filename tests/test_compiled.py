"""Tests for the compiled (bitset VF2) verification fast path.

The contract: :func:`compiled_has_embedding` is observationally identical to
``VF2Matcher.has_match`` — cross-validated property-style against the
dict-based matcher and against ``networkx`` in both the subgraph (query as
pattern) and supergraph (dataset graph as pattern) directions — and the
early-fail signature pre-check never rejects a pair that actually matches.
"""

from __future__ import annotations

import pickle
import random

import networkx as nx
import pytest

from repro.graphs import LabeledGraph
from repro.graphs.traversal import connected_components
from repro.isomorphism import (
    CompiledQueryPlan,
    CompiledTarget,
    DatasetSignatures,
    VF2Matcher,
    Verifier,
    compile_query_plan,
    compile_target,
    compiled_has_embedding,
    masked_components,
    masked_edge_count,
    numpy_kernel_available,
    signature_prereject,
)
from repro.methods import ScanMethod

from .conftest import (
    make_clique,
    make_cycle_graph,
    make_path_graph,
    make_star_graph,
    random_labeled_graph,
)


def compiled_is_subgraph(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    return compiled_has_embedding(compile_query_plan(pattern), compile_target(target))


def to_networkx(graph: LabeledGraph) -> nx.Graph:
    result = nx.Graph()
    for vertex in graph.vertices():
        result.add_node(vertex, label=graph.label(vertex))
    result.add_edges_from(graph.edges())
    return result


def networkx_is_subgraph(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        to_networkx(target),
        to_networkx(pattern),
        node_match=lambda a, b: a["label"] == b["label"],
    )
    return matcher.subgraph_is_monomorphic()


def random_pair(rng: random.Random) -> tuple[LabeledGraph, LabeledGraph]:
    """A random (pattern, target) pair, sometimes disconnected."""
    target = random_labeled_graph(
        rng, rng.randint(1, 10), rng.random() * 0.6, connected=rng.random() < 0.7
    )
    pattern = random_labeled_graph(
        rng, rng.randint(1, 6), rng.random() * 0.8, connected=rng.random() < 0.7
    )
    return pattern, target


class TestKnownCases:
    def test_path_in_cycle(self):
        assert compiled_is_subgraph(make_path_graph("ABC"), make_cycle_graph("ABC"))

    def test_cycle_not_in_path(self):
        assert not compiled_is_subgraph(make_cycle_graph("ABC"), make_path_graph("ABC"))

    def test_label_mismatch(self):
        assert not compiled_is_subgraph(make_path_graph("AZ"), make_cycle_graph("ABC"))

    def test_triangle_in_clique(self):
        assert compiled_is_subgraph(make_cycle_graph("AAA"), make_clique("AAAA"))

    def test_empty_pattern_matches_anything(self):
        assert compiled_is_subgraph(LabeledGraph(), make_path_graph("AB"))
        assert compiled_is_subgraph(LabeledGraph(), LabeledGraph())

    def test_pattern_larger_than_target(self):
        assert not compiled_is_subgraph(make_clique("AAAA"), make_cycle_graph("AAA"))

    def test_star_needs_degree(self):
        assert not compiled_is_subgraph(make_star_graph("A", "BBB"), make_path_graph("BAB"))
        assert compiled_is_subgraph(make_star_graph("A", "BB"), make_path_graph("BAB"))

    def test_disconnected_pattern(self):
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "B")
        target = make_path_graph("ACB")
        assert compiled_is_subgraph(pattern, target)
        assert not compiled_is_subgraph(pattern, make_path_graph("AC"))

    def test_monomorphism_not_induced(self):
        # A path maps into a cycle of the same labels: extra target edges are
        # allowed (non-induced semantics).
        assert compiled_is_subgraph(make_path_graph("AAA"), make_cycle_graph("AAA"))


class TestCrossValidation:
    def test_matches_vf2_and_networkx_subgraph_direction(self):
        rng = random.Random(171)
        for _ in range(600):
            pattern, target = random_pair(rng)
            expected = VF2Matcher(pattern, target).has_match()
            assert compiled_is_subgraph(pattern, target) == expected
            assert networkx_is_subgraph(pattern, target) == expected

    def test_matches_vf2_supergraph_direction(self):
        """Supergraph queries run dataset graphs as patterns against one
        compiled query target; validate that orientation explicitly."""
        rng = random.Random(733)
        for _ in range(200):
            query = random_labeled_graph(rng, rng.randint(3, 10), 0.4)
            compiled_query = compile_target(query)
            dataset_graph = random_labeled_graph(rng, rng.randint(1, 6), 0.5)
            plan = compile_query_plan(dataset_graph)
            expected = VF2Matcher(dataset_graph, query).has_match()
            assert compiled_has_embedding(plan, compiled_query) == expected

    def test_plan_reuse_across_targets(self):
        """One plan, many targets — reuse must not leak state between runs."""
        rng = random.Random(909)
        pattern = make_path_graph("ABA")
        plan = compile_query_plan(pattern)
        for _ in range(100):
            target = random_labeled_graph(rng, rng.randint(1, 8), 0.4)
            expected = VF2Matcher(pattern, target).has_match()
            assert compiled_has_embedding(plan, compile_target(target)) == expected

    def test_precheck_is_sound(self):
        """A signature pre-reject must imply that no embedding exists."""
        rng = random.Random(555)
        rejected = 0
        for _ in range(500):
            pattern, target = random_pair(rng)
            if signature_prereject(pattern, target):
                rejected += 1
                assert not VF2Matcher(pattern, target).has_match()
        assert rejected > 0  # the check actually fires on this workload


class TestCompiledRepresentations:
    def test_target_structure(self):
        graph = make_cycle_graph("ABA")
        target = compile_target(graph)
        assert isinstance(target, CompiledTarget)
        assert target.num_vertices == 3 and target.num_edges == 3
        # Label masks partition the vertex set.
        combined = 0
        for mask in target.label_masks.values():
            assert combined & mask == 0
            combined |= mask
        assert combined == (1 << target.num_vertices) - 1
        # Adjacency is symmetric and degree-consistent.
        for index in range(target.num_vertices):
            assert target.adjacency_masks[index].bit_count() == target.degrees[index]
            for other in range(target.num_vertices):
                assert bool(target.adjacency_masks[index] >> other & 1) == bool(
                    target.adjacency_masks[other] >> index & 1
                )

    def test_plan_covers_every_vertex_once(self):
        pattern = make_clique("ABCD")
        plan = compile_query_plan(pattern)
        assert isinstance(plan, CompiledQueryPlan)
        assert len(plan.steps) == pattern.num_vertices
        # Each step after the first (connected pattern) has anchors, and the
        # anchor/lookahead counts add up to the vertex degree.
        for index, (label, degree, anchors, lookahead) in enumerate(plan.steps):
            if index:
                assert anchors
            assert len(anchors) + lookahead == degree


class TestDatabaseCaching:
    def test_compiled_target_is_cached(self, tiny_database):
        first = tiny_database.compiled_target("g_tri")
        assert tiny_database.compiled_target("g_tri") is first

    def test_compiled_plan_is_cached(self, tiny_database):
        first = tiny_database.compiled_plan("g_tri")
        assert tiny_database.compiled_plan("g_tri") is first

    def test_precompile_builds_all(self, tiny_database):
        tiny_database.precompile()
        assert all(
            tiny_database.compiled_target(graph_id) is not None
            for graph_id in tiny_database.ids()
        )

    def test_snapshot_carries_compiled_targets(self, tiny_database):
        method = ScanMethod()
        method.build_index(tiny_database)
        snapshot = method.verification_snapshot()
        payload = pickle.dumps(snapshot)
        clone = pickle.loads(payload)
        # The compiled cache travelled with the pickle: verification on the
        # worker side finds every target prebuilt.
        assert set(clone.database._compiled_targets) == set(tiny_database.ids())
        assert clone.verify(make_path_graph("AB"), clone.database.ids()) == method.verify(
            make_path_graph("AB"), tiny_database.ids()
        )

    def test_supergraph_snapshot_carries_compiled_plans(self, tiny_database):
        """In supergraph mode the dataset graphs play the pattern role, so
        the snapshot precompiles their matching plans, not bitset targets."""
        method = ScanMethod()
        method.build_index(tiny_database)
        clone = pickle.loads(pickle.dumps(method.verification_snapshot(supergraph=True)))
        assert set(clone.database._compiled_plans) == set(tiny_database.ids())
        query = make_clique("ABCD")
        assert clone.verify_supergraph(query, clone.database.ids()) == (
            method.verify_supergraph(query, tiny_database.ids())
        )


class TestVerifierDispatch:
    def test_compile_pattern_gated_by_configuration(self):
        query = make_path_graph("AB")
        assert Verifier().compile_pattern(query) is not None
        assert Verifier(compiled=False).compile_pattern(query) is None
        assert Verifier(algorithm="ullmann").compile_pattern(query) is None
        assert Verifier(induced=True).compile_pattern(query) is None

    def test_compiled_and_plain_paths_count_identically(self, tiny_database):
        query = make_path_graph("ABC")
        fast = Verifier()
        plan = fast.compile_pattern(query)
        slow = Verifier(compiled=False, precheck=False)
        for graph_id in tiny_database.ids():
            graph = tiny_database.get(graph_id)
            assert fast.is_subgraph_compiled(plan, compile_target(graph)) == slow.is_subgraph(
                query, graph
            )
        assert fast.stats.tests == slow.stats.tests == len(tiny_database)
        assert fast.stats.positives == slow.stats.positives
        assert fast.stats.negatives == slow.stats.negatives
        assert len(fast.stats.per_test_seconds) == fast.stats.tests

    def test_precheck_does_not_change_answers(self):
        rng = random.Random(404)
        with_precheck = Verifier(compiled=False, precheck=True)
        without = Verifier(compiled=False, precheck=False)
        for _ in range(300):
            pattern, target = random_pair(rng)
            assert with_precheck.is_subgraph(pattern, target) == without.is_subgraph(
                pattern, target
            )
        assert with_precheck.stats.tests == without.stats.tests

    @pytest.mark.parametrize("compiled", [True, False])
    def test_method_verify_equivalent(self, tiny_database, compiled):
        method = ScanMethod(verifier=Verifier(compiled=compiled))
        method.build_index(tiny_database)
        reference = ScanMethod(verifier=Verifier(compiled=False, precheck=False))
        reference.build_index(tiny_database)
        for query in (make_path_graph("AB"), make_cycle_graph("ABC"), make_clique("ABCD")):
            assert method.verify(query, tiny_database.ids()) == reference.verify(
                query, tiny_database.ids()
            )
            assert method.verify_supergraph(query, tiny_database.ids()) == (
                reference.verify_supergraph(query, tiny_database.ids())
            )


def mask_of_vertices(target: CompiledTarget, vertices) -> int:
    mask = 0
    for vertex in vertices:
        mask |= 1 << target.space.position(vertex)
    return mask


def vertices_of_mask(target: CompiledTarget, mask: int) -> set:
    return {
        target.space.id_at(position)
        for position in range(target.num_vertices)
        if (mask >> position) & 1
    }


class TestRegionMaskedKernel:
    """The ``vertex_mask`` mode answers "does the pattern embed with its
    image inside the mask?" — cross-validated against matching into the
    materialised vertex-induced subgraph of the masked vertices."""

    def test_masks_of_size_zero_one_all(self):
        target_graph = make_cycle_graph("ABCA")
        target = compile_target(target_graph)
        pattern = make_path_graph("AB")
        plan = compile_query_plan(pattern)
        full = (1 << target.num_vertices) - 1
        # Empty mask: nothing to map into.
        assert not compiled_has_embedding(plan, target, 0)
        # Single-vertex masks: too small for a 2-vertex pattern...
        for position in range(target.num_vertices):
            assert not compiled_has_embedding(plan, target, 1 << position)
        # ...but large enough for a 1-vertex pattern of the right label.
        single = compile_query_plan(make_path_graph("B"))
        for position in range(target.num_vertices):
            expected = target_graph.label(target.space.id_at(position)) == "B"
            assert compiled_has_embedding(single, target, 1 << position) == expected
        # Full mask is the unmasked semantics.
        assert compiled_has_embedding(plan, target, full)
        assert compiled_has_embedding(plan, target, full) == compiled_has_embedding(plan, target)

    def test_cross_validates_against_materialised_subgraphs(self):
        rng = random.Random(4242)
        positives = negatives = 0
        for _ in range(400):
            target_graph = random_labeled_graph(
                rng, rng.randint(2, 10), rng.random() * 0.6, connected=rng.random() < 0.6
            )
            pattern = random_labeled_graph(
                rng, rng.randint(1, 4), rng.random() * 0.8, connected=rng.random() < 0.8
            )
            target = compile_target(target_graph)
            vertices = [
                vertex for vertex in target_graph.vertices() if rng.random() < 0.6
            ]
            expected = VF2Matcher(pattern, target_graph.subgraph(vertices)).has_match()
            actual = compiled_has_embedding(
                compile_query_plan(pattern), target, mask_of_vertices(target, vertices)
            )
            assert actual == expected
            positives += expected
            negatives += not expected
        assert positives > 20 and negatives > 20  # both outcomes exercised

    def test_mask_excludes_out_of_region_embeddings(self):
        # The only A-B-A path uses vertex 1; masking it out must fail even
        # though the whole graph matches.
        target_graph = make_path_graph("ABAC")
        target = compile_target(target_graph)
        plan = compile_query_plan(make_path_graph("ABA"))
        assert compiled_has_embedding(plan, target)
        assert not compiled_has_embedding(
            plan, target, mask_of_vertices(target, [0, 2, 3])
        )

    def test_masked_components_match_materialised_decomposition(self):
        rng = random.Random(77)
        for _ in range(200):
            graph = random_labeled_graph(
                rng, rng.randint(1, 12), rng.random() * 0.4, connected=False
            )
            target = compile_target(graph)
            vertices = [vertex for vertex in graph.vertices() if rng.random() < 0.7]
            mask = mask_of_vertices(target, vertices)
            expected = connected_components(graph.subgraph(vertices))
            actual = [
                vertices_of_mask(target, component)
                for component in masked_components(target, mask)
            ]
            # Same components in the same (size-then-repr) order — Grapes
            # relies on the order for byte-identical test accounting.
            assert actual == expected

    def test_masked_edge_count_matches_subgraph(self):
        rng = random.Random(88)
        for _ in range(200):
            graph = random_labeled_graph(rng, rng.randint(1, 12), rng.random() * 0.6)
            target = compile_target(graph)
            vertices = [vertex for vertex in graph.vertices() if rng.random() < 0.7]
            mask = mask_of_vertices(target, vertices)
            assert masked_edge_count(target, mask) == graph.subgraph(vertices).num_edges

    def test_masked_run_counts_as_one_test(self):
        verifier = Verifier()
        target = compile_target(make_cycle_graph("ABC"))
        plan = verifier.compile_pattern(make_path_graph("AB"))
        assert verifier.is_subgraph_compiled(plan, target, vertex_mask=0b111)
        assert not verifier.is_subgraph_compiled(plan, target, vertex_mask=0b001)
        assert verifier.stats.tests == 2
        assert verifier.stats.positives == 1 and verifier.stats.negatives == 1


needs_numpy = pytest.mark.skipif(
    not numpy_kernel_available(), reason="numpy >= 2.0 little-endian kernel unavailable"
)


@needs_numpy
class TestNumpyKernel:
    """``kernel="numpy"`` must be observationally identical to the bigint
    loop — same boolean on every (plan, target, mask) triple, since the
    engine's byte-identity guarantee rides on the two kernels agreeing."""

    def both_kernels(self, plan, target, mask=None) -> bool:
        bigint = compiled_has_embedding(plan, target, mask, kernel="bigint")
        vectorised = compiled_has_embedding(plan, target, mask, kernel="numpy")
        assert vectorised == bigint
        return bigint

    def test_known_cases_agree(self):
        cases = [
            (make_path_graph("ABC"), make_cycle_graph("ABC")),
            (make_cycle_graph("ABC"), make_path_graph("ABC")),
            (make_cycle_graph("AAA"), make_clique("AAAA")),
            (make_star_graph("A", "BBB"), make_path_graph("BAB")),
            (LabeledGraph(), make_path_graph("AB")),
        ]
        for pattern, target_graph in cases:
            self.both_kernels(compile_query_plan(pattern), compile_target(target_graph))

    def test_random_pairs_subgraph_direction(self):
        rng = random.Random(171)  # the TestCrossValidation corpus
        positives = 0
        for _ in range(400):
            pattern, target_graph = random_pair(rng)
            positives += self.both_kernels(
                compile_query_plan(pattern), compile_target(target_graph)
            )
        assert positives > 20  # both outcomes exercised

    def test_random_pairs_supergraph_direction(self):
        rng = random.Random(733)
        for _ in range(200):
            query = random_labeled_graph(rng, rng.randint(3, 10), 0.4)
            compiled_query = compile_target(query)
            dataset_graph = random_labeled_graph(rng, rng.randint(1, 6), 0.5)
            self.both_kernels(compile_query_plan(dataset_graph), compiled_query)

    def test_multi_word_targets(self):
        """Targets past 64 vertices span several uint64 words — the word
        arithmetic (shift-by-6 gathers, cross-word lookahead) must agree."""
        rng = random.Random(65)
        for _ in range(40):
            target_graph = random_labeled_graph(rng, rng.randint(65, 150), 0.05)
            target = compile_target(target_graph)
            for _ in range(5):
                pattern = random_labeled_graph(rng, rng.randint(2, 6), 0.5)
                self.both_kernels(compile_query_plan(pattern), target)

    def test_masked_regions_agree(self):
        rng = random.Random(4242)  # the TestRegionMaskedKernel corpus
        for _ in range(200):
            target_graph = random_labeled_graph(
                rng, rng.randint(2, 10), rng.random() * 0.6, connected=rng.random() < 0.6
            )
            pattern = random_labeled_graph(
                rng, rng.randint(1, 4), rng.random() * 0.8, connected=rng.random() < 0.8
            )
            target = compile_target(target_graph)
            vertices = [vertex for vertex in target_graph.vertices() if rng.random() < 0.6]
            self.both_kernels(
                compile_query_plan(pattern), target, mask_of_vertices(target, vertices)
            )

    def test_verifier_accounting_identical_across_kernels(self, tiny_database):
        query = make_path_graph("ABC")
        verifiers = {name: Verifier(kernel=name) for name in ("bigint", "numpy", "auto")}
        answers = {}
        for name, verifier in verifiers.items():
            plan = verifier.compile_pattern(query)
            answers[name] = [
                verifier.is_subgraph_compiled(plan, compile_target(tiny_database.get(gid)))
                for gid in tiny_database.ids()
            ]
        assert answers["bigint"] == answers["numpy"] == answers["auto"]
        reference = verifiers["bigint"].stats
        for name in ("numpy", "auto"):
            stats = verifiers[name].stats
            assert stats.tests == reference.tests
            assert stats.positives == reference.positives
            assert stats.negatives == reference.negatives

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            compiled_has_embedding(
                compile_query_plan(make_path_graph("AB")),
                compile_target(make_path_graph("AB")),
                kernel="simd",
            )
        with pytest.raises(ValueError, match="kernel"):
            Verifier(kernel="simd")

    def test_arrays_are_lazy_and_excluded_from_pickles(self):
        target = compile_target(make_clique("ABCD"))
        assert target._arrays is None
        arrays = target.arrays()
        assert target.arrays() is arrays  # cached
        clone = pickle.loads(pickle.dumps(target))
        assert clone._arrays is None  # snapshots ship the compact form
        assert compiled_has_embedding(
            compile_query_plan(make_cycle_graph("ABC")), clone, kernel="numpy"
        )


@needs_numpy
class TestDatasetSignatures:
    """The batched prereject must equal the scalar ``plan.prereject`` /
    ``signature_prereject`` verdict element-for-element in both directions."""

    def build_corpus(self, seed: int, count: int):
        rng = random.Random(seed)
        graphs = {
            f"g{i}": random_labeled_graph(
                rng, rng.randint(1, 10), rng.random() * 0.6, connected=rng.random() < 0.7
            )
            for i in range(count)
        }
        return rng, graphs

    def test_prereject_targets_matches_scalar(self):
        rng, graphs = self.build_corpus(555, 40)
        signatures = DatasetSignatures(graphs)
        ids = list(graphs)
        for _ in range(30):
            pattern = random_labeled_graph(rng, rng.randint(1, 6), rng.random() * 0.8)
            plan = compile_query_plan(pattern)
            batched = signatures.prereject_targets(plan, ids)
            for graph_id, verdict in zip(ids, batched):
                expected = plan.prereject(compile_target(graphs[graph_id]))
                assert bool(verdict) == expected, graph_id

    def test_prereject_patterns_matches_scalar(self):
        rng, graphs = self.build_corpus(556, 40)
        signatures = DatasetSignatures(graphs)
        ids = list(graphs)
        for _ in range(30):
            query = random_labeled_graph(rng, rng.randint(2, 8), rng.random() * 0.6)
            target = compile_target(query)
            batched = signatures.prereject_patterns(target, ids)
            for graph_id, verdict in zip(ids, batched):
                expected = compile_query_plan(graphs[graph_id]).prereject(target)
                assert bool(verdict) == expected, graph_id

    def test_prereject_is_sound(self):
        """A batched reject must imply no embedding exists (soundness of the
        precheck, restated for the vectorised form)."""
        rng, graphs = self.build_corpus(557, 25)
        signatures = DatasetSignatures(graphs)
        ids = list(graphs)
        rejected = 0
        for _ in range(20):
            pattern = random_labeled_graph(rng, rng.randint(1, 5), rng.random() * 0.8)
            plan = compile_query_plan(pattern)
            for graph_id, verdict in zip(ids, signatures.prereject_targets(plan, ids)):
                if verdict:
                    rejected += 1
                    assert not VF2Matcher(pattern, graphs[graph_id]).has_match()
        assert rejected > 0

    def test_database_invalidates_signatures_on_insert(self, tiny_database):
        first = tiny_database.dataset_signatures()
        assert first is not None
        assert tiny_database.dataset_signatures() is first  # cached
        tiny_database.add("late", make_path_graph("AAB", name="late"))
        rebuilt = tiny_database.dataset_signatures()
        assert rebuilt is not first
        plan = compile_query_plan(make_path_graph("AAB"))
        verdicts = rebuilt.prereject_targets(plan, ["late"])
        assert not bool(verdicts[0])
