"""Tests for the Isuper component (Algorithms 1 and 2 of the paper)."""

from __future__ import annotations

import random

from hypothesis import given, settings

from repro.core import QueryCache, SupergraphQueryIndex
from repro.features import FeatureExtractor
from repro.isomorphism import is_subgraph_isomorphic

from .conftest import (
    labeled_graphs,
    make_clique,
    make_cycle_graph,
    make_path_graph,
    make_star_graph,
    random_labeled_graph,
)

EXTRACTOR = FeatureExtractor(max_path_length=3)


def build_index(graphs):
    cache = QueryCache()
    index = SupergraphQueryIndex()
    for graph in graphs:
        entry = cache.add(graph, EXTRACTOR.extract(graph), frozenset())
        index.add(entry)
    return cache, index


class TestAlgorithm1:
    def test_nf_counts_distinct_features(self):
        cache, index = build_index([make_path_graph("AB")])
        entry_id = cache.entry_ids()[0]
        # Features of A-B with path length <= 3: "A", "B", "A-B".
        assert index.num_features(entry_id) == 3

    def test_entries_tracked(self):
        cache, index = build_index([make_path_graph("AB"), make_cycle_graph("ABC")])
        assert len(index) == 2


class TestAlgorithm2:
    def test_candidate_generation_no_false_negatives(self):
        rng = random.Random(5)
        cached = [
            random_labeled_graph(rng, rng.randint(2, 5), 0.3, name=f"c{i}") for i in range(15)
        ]
        cache, index = build_index(cached)
        entries = {entry.entry_id: entry for entry in cache.entries()}
        for _ in range(10):
            query = random_labeled_graph(rng, rng.randint(4, 8), 0.3)
            features = EXTRACTOR.extract(query)
            candidates = set(index.candidate_subgraphs(features))
            for entry_id, entry in entries.items():
                if is_subgraph_isomorphic(entry.graph, query):
                    assert entry_id in candidates

    def test_occurrence_counts_prune(self):
        # A cached star with two A-B edges cannot be a subgraph of a single
        # A-B edge: the count check (o <= O[f, g]) must prune it.
        cache, index = build_index([make_star_graph("A", "BB")])
        query = make_path_graph("AB")
        features = EXTRACTOR.extract(query)
        assert index.candidate_subgraphs(features) == []

    def test_find_subgraphs_verifies_candidates(self):
        cache, index = build_index(
            [make_path_graph("AB"), make_cycle_graph("ABC"), make_clique("ABCD")]
        )
        query = make_cycle_graph("ABC")
        hits = index.find_subgraphs(query, EXTRACTOR.extract(query))
        names = sorted(entry.graph.num_vertices for entry in hits)
        # The A-B edge and the ABC triangle are subgraphs; K4 is not.
        assert names == [2, 3]

    def test_empty_index(self):
        index = SupergraphQueryIndex()
        query = make_path_graph("AB")
        assert index.find_subgraphs(query, EXTRACTOR.extract(query)) == []

    def test_no_false_positives(self):
        rng = random.Random(9)
        cached = [
            random_labeled_graph(rng, rng.randint(2, 5), 0.4, name=f"c{i}") for i in range(12)
        ]
        cache, index = build_index(cached)
        for _ in range(10):
            query = random_labeled_graph(rng, rng.randint(3, 7), 0.3)
            features = EXTRACTOR.extract(query)
            for entry in index.find_subgraphs(query, features):
                assert is_subgraph_isomorphic(entry.graph, query)

    @settings(max_examples=25, deadline=None)
    @given(labeled_graphs(max_vertices=5), labeled_graphs(max_vertices=6))
    def test_agrees_with_direct_isomorphism(self, cached_graph, query):
        cache, index = build_index([cached_graph])
        hits = index.find_subgraphs(query, EXTRACTOR.extract(query))
        assert bool(hits) == is_subgraph_isomorphic(cached_graph, query)


class TestMaintenance:
    def test_remove_entry(self):
        cache, index = build_index([make_path_graph("AB"), make_path_graph("ABC")])
        victim = cache.entry_ids()[0]
        index.remove(victim)
        assert len(index) == 1
        query = make_cycle_graph("ABCD")
        hits = index.find_subgraphs(query, EXTRACTOR.extract(query))
        assert all(entry.entry_id != victim for entry in hits)

    def test_remove_unknown_is_noop(self):
        cache, index = build_index([make_path_graph("AB")])
        index.remove(42)
        assert len(index) == 1

    def test_rebuild(self):
        cache, index = build_index([make_path_graph("AB")])
        cache.add(make_cycle_graph("ABC"), EXTRACTOR.extract(make_cycle_graph("ABC")), frozenset())
        index.rebuild(cache)
        assert len(index) == 2

    def test_size_estimate(self):
        cache, index = build_index([make_path_graph("ABCD")])
        assert index.estimated_size_bytes() > 0
