"""Tests for the §5.1 replacement policies."""

from __future__ import annotations

import pytest

from repro.core import (
    HitRateReplacementPolicy,
    LeastRecentlyAddedPolicy,
    QueryCache,
    UtilityReplacementPolicy,
    create_policy,
)
from repro.features import FeatureExtractor

from .conftest import make_path_graph

EXTRACTOR = FeatureExtractor(max_path_length=2)


def cache_with_entries(specs):
    """Build a cache with entries described by (added_at, hits, removed, cost)."""
    cache = QueryCache()
    entries = []
    for added_at, hits, removed, cost in specs:
        cache.query_counter = added_at
        entry = cache.add(make_path_graph("AB"), EXTRACTOR.extract(make_path_graph("AB")), set())
        entry.hits = hits
        entry.removed = removed
        entry.alleviated_cost = cost
        entries.append(entry)
    return cache, entries


class TestUtilityPolicy:
    def test_utility_is_cost_over_queries(self):
        cache, entries = cache_with_entries([(0, 2, 5, 100.0)])
        cache.query_counter = 10
        policy = UtilityReplacementPolicy()
        assert policy.score(entries[0], cache) == pytest.approx(10.0)

    def test_fresh_entries_are_protected(self):
        cache, entries = cache_with_entries([(5, 0, 0, 0.0)])
        cache.query_counter = 5  # added this instant
        policy = UtilityReplacementPolicy()
        assert policy.score(entries[0], cache) == float("inf")

    def test_lowest_utility_evicted_first(self):
        cache, entries = cache_with_entries(
            [(0, 1, 1, 1.0), (0, 1, 1, 500.0), (0, 1, 1, 50.0)]
        )
        cache.query_counter = 10
        policy = UtilityReplacementPolicy()
        victims = policy.select_victims(cache, 2)
        assert victims == [entries[0].entry_id, entries[2].entry_id]

    def test_paper_identity_u_equals_c_over_m(self):
        # U(g) = H/M * R/H * C/R must telescope to C/M.
        cache, entries = cache_with_entries([(0, 4, 12, 36.0)])
        cache.query_counter = 9
        entry = entries[0]
        h_over_m = entry.hits / 9
        r_over_h = entry.removed / entry.hits
        c_over_r = entry.alleviated_cost / entry.removed
        policy = UtilityReplacementPolicy()
        assert policy.score(entry, cache) == pytest.approx(h_over_m * r_over_h * c_over_r)


class TestOtherPolicies:
    def test_hit_rate_policy(self):
        cache, entries = cache_with_entries([(0, 8, 0, 0.0), (0, 2, 0, 0.0)])
        cache.query_counter = 10
        policy = HitRateReplacementPolicy()
        victims = policy.select_victims(cache, 1)
        assert victims == [entries[1].entry_id]

    def test_fifo_policy(self):
        cache, entries = cache_with_entries([(3, 0, 0, 0.0), (1, 0, 0, 0.0), (2, 0, 0, 0.0)])
        policy = LeastRecentlyAddedPolicy()
        victims = policy.select_victims(cache, 2)
        assert victims == [entries[1].entry_id, entries[2].entry_id]

    def test_zero_or_negative_count(self):
        cache, _ = cache_with_entries([(0, 1, 1, 1.0)])
        policy = UtilityReplacementPolicy()
        assert policy.select_victims(cache, 0) == []
        assert policy.select_victims(cache, -3) == []

    def test_ties_broken_by_age(self):
        cache, entries = cache_with_entries([(2, 1, 1, 10.0), (0, 1, 1, 10.0)])
        cache.query_counter = 12
        policy = HitRateReplacementPolicy()
        # Same hit rate denominator differs; craft equal scores via hits.
        entries[0].hits = 10
        entries[1].hits = 12
        victims = policy.select_victims(cache, 1)
        assert victims == [entries[1].entry_id]


class TestFactory:
    def test_create_policy(self):
        assert isinstance(create_policy("utility"), UtilityReplacementPolicy)
        assert isinstance(create_policy("hit_rate"), HitRateReplacementPolicy)
        assert isinstance(create_policy("fifo"), LeastRecentlyAddedPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            create_policy("lru")
