"""Tests for canonical path / cycle / tree codes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import canonical_cycle_code, canonical_path_code, canonical_tree_code
from repro.graphs import GraphError, LabeledGraph

from .conftest import make_cycle_graph, make_path_graph, make_star_graph


class TestPathCode:
    def test_direction_invariance(self):
        assert canonical_path_code("ABC") == canonical_path_code("CBA")

    def test_different_paths_differ(self):
        assert canonical_path_code("ABC") != canonical_path_code("ACB")

    def test_single_label(self):
        assert canonical_path_code(["X"]) == "X"

    def test_non_string_labels(self):
        assert canonical_path_code([1, 2, 3]) == canonical_path_code([3, 2, 1])

    @given(st.lists(st.sampled_from("ABCD"), min_size=1, max_size=6))
    def test_reverse_always_equal(self, labels):
        assert canonical_path_code(labels) == canonical_path_code(list(reversed(labels)))


class TestCycleCode:
    def test_rotation_invariance(self):
        assert canonical_cycle_code("ABCD") == canonical_cycle_code("BCDA")

    def test_reflection_invariance(self):
        assert canonical_cycle_code("ABCD") == canonical_cycle_code("DCBA")

    def test_distinct_cycles_differ(self):
        assert canonical_cycle_code("AABB") != canonical_cycle_code("ABAB")

    def test_prefix_prevents_collision_with_paths(self):
        assert canonical_cycle_code("ABC") != canonical_path_code("ABC")

    def test_too_short_cycle(self):
        with pytest.raises(ValueError):
            canonical_cycle_code("AB")

    @given(st.lists(st.sampled_from("ABC"), min_size=3, max_size=7), st.integers(0, 6))
    def test_any_rotation_equal(self, labels, shift):
        rotated = labels[shift % len(labels):] + labels[: shift % len(labels)]
        assert canonical_cycle_code(labels) == canonical_cycle_code(rotated)


class TestTreeCode:
    def test_path_tree_direction_invariance(self):
        assert canonical_tree_code(make_path_graph("ABC")) == canonical_tree_code(
            make_path_graph("CBA")
        )

    def test_star_vs_path(self):
        assert canonical_tree_code(make_star_graph("A", "BBB")) != canonical_tree_code(
            make_path_graph("BABB")
        )

    def test_relabeling_invariance(self):
        tree = make_star_graph("A", "BCB")
        relabeled = LabeledGraph()
        mapping = {0: "root", 1: "x", 2: "y", 3: "z"}
        for old, new in mapping.items():
            relabeled.add_vertex(new, tree.label(old))
        for u, v in tree.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        assert canonical_tree_code(tree) == canonical_tree_code(relabeled)

    def test_label_sensitivity(self):
        assert canonical_tree_code(make_star_graph("A", "BBB")) != canonical_tree_code(
            make_star_graph("A", "BBC")
        )

    def test_single_vertex(self):
        single = LabeledGraph()
        single.add_vertex(0, "Q")
        assert canonical_tree_code(single).startswith("tree:")

    def test_empty_tree(self):
        assert canonical_tree_code(LabeledGraph()) == "tree:"

    def test_non_tree_rejected(self):
        with pytest.raises(GraphError):
            canonical_tree_code(make_cycle_graph("ABC"))

    def test_isomorphic_trees_same_code(self):
        # The same labelled tree built with two different vertex orderings.
        first = LabeledGraph()
        for vertex, label in enumerate("ABAC"):
            first.add_vertex(vertex, label)
        first.add_edge(0, 1)
        first.add_edge(1, 2)
        first.add_edge(1, 3)
        second = LabeledGraph()
        for vertex, label in enumerate("CABA"):
            second.add_vertex(vertex, label)
        second.add_edge(0, 1)
        second.add_edge(1, 2)
        second.add_edge(2, 3)
        # first: B is the centre with children A, A, C;
        # second: path C-A-B-A -> different trees, codes must differ...
        assert canonical_tree_code(first) != canonical_tree_code(second)

    @settings(max_examples=40)
    @given(st.lists(st.sampled_from("AB"), min_size=2, max_size=7))
    def test_path_trees_reverse_invariant(self, labels):
        forward = make_path_graph("".join(labels))
        backward = make_path_graph("".join(reversed(labels)))
        assert canonical_tree_code(forward) == canonical_tree_code(backward)
