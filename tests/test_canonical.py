"""Tests for canonical path / cycle / tree codes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import (
    canonical_cycle_code,
    canonical_graph_key,
    canonical_path_code,
    canonical_tree_code,
)
from repro.graphs import GraphError, LabeledGraph

from .conftest import (
    make_clique,
    make_cycle_graph,
    make_path_graph,
    make_star_graph,
    random_labeled_graph,
)


class TestPathCode:
    def test_direction_invariance(self):
        assert canonical_path_code("ABC") == canonical_path_code("CBA")

    def test_different_paths_differ(self):
        assert canonical_path_code("ABC") != canonical_path_code("ACB")

    def test_single_label(self):
        assert canonical_path_code(["X"]) == "X"

    def test_non_string_labels(self):
        assert canonical_path_code([1, 2, 3]) == canonical_path_code([3, 2, 1])

    @given(st.lists(st.sampled_from("ABCD"), min_size=1, max_size=6))
    def test_reverse_always_equal(self, labels):
        assert canonical_path_code(labels) == canonical_path_code(list(reversed(labels)))


class TestCycleCode:
    def test_rotation_invariance(self):
        assert canonical_cycle_code("ABCD") == canonical_cycle_code("BCDA")

    def test_reflection_invariance(self):
        assert canonical_cycle_code("ABCD") == canonical_cycle_code("DCBA")

    def test_distinct_cycles_differ(self):
        assert canonical_cycle_code("AABB") != canonical_cycle_code("ABAB")

    def test_prefix_prevents_collision_with_paths(self):
        assert canonical_cycle_code("ABC") != canonical_path_code("ABC")

    def test_too_short_cycle(self):
        with pytest.raises(ValueError):
            canonical_cycle_code("AB")

    @given(st.lists(st.sampled_from("ABC"), min_size=3, max_size=7), st.integers(0, 6))
    def test_any_rotation_equal(self, labels, shift):
        rotated = labels[shift % len(labels):] + labels[: shift % len(labels)]
        assert canonical_cycle_code(labels) == canonical_cycle_code(rotated)


class TestTreeCode:
    def test_path_tree_direction_invariance(self):
        assert canonical_tree_code(make_path_graph("ABC")) == canonical_tree_code(
            make_path_graph("CBA")
        )

    def test_star_vs_path(self):
        assert canonical_tree_code(make_star_graph("A", "BBB")) != canonical_tree_code(
            make_path_graph("BABB")
        )

    def test_relabeling_invariance(self):
        tree = make_star_graph("A", "BCB")
        relabeled = LabeledGraph()
        mapping = {0: "root", 1: "x", 2: "y", 3: "z"}
        for old, new in mapping.items():
            relabeled.add_vertex(new, tree.label(old))
        for u, v in tree.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        assert canonical_tree_code(tree) == canonical_tree_code(relabeled)

    def test_label_sensitivity(self):
        assert canonical_tree_code(make_star_graph("A", "BBB")) != canonical_tree_code(
            make_star_graph("A", "BBC")
        )

    def test_single_vertex(self):
        single = LabeledGraph()
        single.add_vertex(0, "Q")
        assert canonical_tree_code(single).startswith("tree:")

    def test_empty_tree(self):
        assert canonical_tree_code(LabeledGraph()) == "tree:"

    def test_non_tree_rejected(self):
        with pytest.raises(GraphError):
            canonical_tree_code(make_cycle_graph("ABC"))

    def test_isomorphic_trees_same_code(self):
        # The same labelled tree built with two different vertex orderings.
        first = LabeledGraph()
        for vertex, label in enumerate("ABAC"):
            first.add_vertex(vertex, label)
        first.add_edge(0, 1)
        first.add_edge(1, 2)
        first.add_edge(1, 3)
        second = LabeledGraph()
        for vertex, label in enumerate("CABA"):
            second.add_vertex(vertex, label)
        second.add_edge(0, 1)
        second.add_edge(1, 2)
        second.add_edge(2, 3)
        # first: B is the centre with children A, A, C;
        # second: path C-A-B-A -> different trees, codes must differ...
        assert canonical_tree_code(first) != canonical_tree_code(second)

    @settings(max_examples=40)
    @given(st.lists(st.sampled_from("AB"), min_size=2, max_size=7))
    def test_path_trees_reverse_invariant(self, labels):
        forward = make_path_graph("".join(labels))
        backward = make_path_graph("".join(reversed(labels)))
        assert canonical_tree_code(forward) == canonical_tree_code(backward)


class TestGraphKey:
    """Whole-graph canonical keys (the batch feature-memo key)."""

    def test_relabeling_invariance(self):
        import random

        rng = random.Random(17)
        for _ in range(60):
            graph = random_labeled_graph(rng, rng.randint(1, 9), 0.4, connected=False)
            vertices = list(graph.vertices())
            shuffled = list(vertices)
            rng.shuffle(shuffled)
            mapping = {old: new + 50 for old, new in zip(vertices, range(len(shuffled)))}
            twin = LabeledGraph()
            for old in shuffled:
                twin.add_vertex(mapping[old], graph.label(old))
            for u, v in graph.edges():
                twin.add_edge(mapping[u], mapping[v])
            assert canonical_graph_key(graph) == canonical_graph_key(twin)

    def test_distinguishes_same_invariants(self):
        """C6 and two triangles share every degree/label invariant but are
        not isomorphic — the key must separate them."""
        hexagon = make_cycle_graph("AAAAAA")
        triangles = LabeledGraph()
        for vertex in range(6):
            triangles.add_vertex(vertex, "A")
        for base in (0, 3):
            triangles.add_edge(base, base + 1)
            triangles.add_edge(base + 1, base + 2)
            triangles.add_edge(base + 2, base)
        assert canonical_graph_key(hexagon) != canonical_graph_key(triangles)

    def test_distinguishes_labels(self):
        assert canonical_graph_key(make_path_graph("ABC")) != canonical_graph_key(
            make_path_graph("ACB")
        )

    def test_key_agrees_with_isomorphism_oracle(self):
        import random

        from repro.isomorphism import are_isomorphic

        rng = random.Random(23)
        graphs = [
            random_labeled_graph(rng, rng.randint(2, 6), 0.5, labels="AB", connected=False)
            for _ in range(40)
        ]
        for first in graphs:
            for second in graphs:
                same_key = canonical_graph_key(first) == canonical_graph_key(second)
                assert same_key == are_isomorphic(first, second)

    def test_symmetric_graph_within_budget(self):
        # A same-label 6-clique explores 6! = 720 leaves, inside the budget:
        # the canonical path must still produce one key for all relabelings.
        clique = make_clique("A" * 6)
        key = canonical_graph_key(clique)
        assert key[0] == "canon"
        assert key == canonical_graph_key(clique.relabeled())

    def test_too_symmetric_graph_falls_back(self):
        # A same-label 8-clique blows the leaf budget (8! leaves); the exact
        # fallback is deterministic and still never collides across classes.
        clique = make_clique("A" * 8)
        key = canonical_graph_key(clique)
        assert key[0] == "exact"

    def test_oversized_graph_falls_back_to_exact_key(self):
        big = LabeledGraph()
        for vertex in range(70):
            big.add_vertex(vertex, "A")
        for vertex in range(69):
            big.add_edge(vertex, vertex + 1)
        key = canonical_graph_key(big)
        assert key[0] == "exact"
        assert key == canonical_graph_key(big)
