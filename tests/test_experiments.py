"""Tests for the experiment layer: metrics, runner, figure drivers, reporting."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    StreamMetrics,
    ablation_components,
    figure1_time_breakdown,
    figure14_cache_size_time,
    format_figure,
    format_rows,
    get_database,
    get_method,
    get_queries,
    run_speedup_experiment,
    speedup,
    table1,
)
from repro.methods.base import QueryResult

from .conftest import make_path_graph

#: a deliberately tiny configuration so experiment-layer tests stay fast
TINY = {
    "dataset": "aids",
    "scale": 0.08,
    "num_queries": 20,
    "cache_size": 8,
    "window_size": 4,
    "max_path_length": 3,
}


def fake_result(tests, candidates, answers, filter_s, verify_s, igq_s=0.0):
    return QueryResult(
        query_name="q",
        answers=set(range(answers)),
        candidates=set(range(candidates)),
        num_isomorphism_tests=tests,
        filter_seconds=filter_s,
        verify_seconds=verify_s,
        igq_seconds=igq_s,
    )


class TestStreamMetrics:
    def test_averages(self):
        metrics = StreamMetrics(label="test")
        metrics.add(fake_result(10, 12, 6, 0.1, 0.4), make_path_graph("ABCD"))
        metrics.add(fake_result(20, 18, 10, 0.1, 0.4), make_path_graph("ABC"))
        assert metrics.num_queries == 2
        assert metrics.avg_isomorphism_tests == pytest.approx(15.0)
        assert metrics.avg_candidates == pytest.approx(15.0)
        assert metrics.avg_answers == pytest.approx(8.0)
        assert metrics.avg_false_positives == pytest.approx(7.0)
        assert metrics.avg_seconds == pytest.approx(0.5)
        assert metrics.filter_time_fraction == pytest.approx(0.2)
        assert metrics.verify_time_fraction == pytest.approx(0.8)

    def test_group_breakdowns(self):
        metrics = StreamMetrics()
        metrics.add(fake_result(10, 10, 5, 0.0, 1.0), make_path_graph("ABCD"))  # 3 edges
        metrics.add(fake_result(30, 30, 5, 0.0, 3.0), make_path_graph("ABCD"))  # 3 edges
        metrics.add(fake_result(2, 2, 1, 0.0, 0.5), make_path_graph("AB"))  # 1 edge
        assert metrics.group_avg_tests() == {1: 2.0, 3: 20.0}
        assert metrics.group_avg_seconds()[3] == pytest.approx(2.0)

    def test_empty_metrics(self):
        metrics = StreamMetrics()
        assert metrics.avg_isomorphism_tests == 0.0
        assert metrics.filter_time_fraction == 0.0
        assert metrics.as_dict()["num_queries"] == 0

    def test_speedup_ratios(self):
        base = StreamMetrics()
        base.add(fake_result(40, 40, 4, 0.1, 0.9))
        igq = StreamMetrics()
        igq.add(fake_result(10, 40, 4, 0.1, 0.15, igq_s=0.05))
        report = speedup(base, igq)
        assert report.isomorphism_test_speedup == pytest.approx(4.0)
        assert report.time_speedup == pytest.approx(1.0 / 0.3)
        assert report.as_dict()["iso_test_speedup"] == pytest.approx(4.0)

    def test_speedup_with_zero_denominator(self):
        base = StreamMetrics()
        base.add(fake_result(10, 10, 1, 0.0, 1.0))
        igq = StreamMetrics()
        igq.add(fake_result(0, 10, 1, 0.0, 0.0))
        report = speedup(base, igq)
        assert report.isomorphism_test_speedup == float("inf")


class TestExperimentConfig:
    def test_resolution_fills_defaults(self):
        config = ExperimentConfig(dataset="ppi").resolved()
        assert config.max_path_length == 3
        assert config.num_queries == 150
        assert config.cache_size == 30
        assert config.window_size == 10

    def test_explicit_values_win(self):
        config = ExperimentConfig(dataset="aids", cache_size=999).resolved()
        assert config.cache_size == 999

    def test_workload_spec_parsing(self):
        spec = ExperimentConfig(workload="zipf-uni", alpha=2.0).workload_spec()
        assert spec.graph_distribution == "zipf"
        assert spec.node_distribution == "uni"
        assert spec.alpha == 2.0


class TestRunner:
    def test_building_blocks_are_cached(self):
        assert get_database("aids", 0.08) is get_database("aids", 0.08)
        config = ExperimentConfig(**TINY)
        assert get_method(config) is get_method(config)
        queries = get_queries(config)
        assert queries is get_queries(config)
        assert len(queries) == TINY["num_queries"] + TINY["window_size"]

    def test_speedup_experiment_outcome(self):
        config = ExperimentConfig(**TINY, method="ggsx", workload="zipf-zipf")
        outcome = run_speedup_experiment(config)
        assert outcome.base.num_queries == TINY["num_queries"]
        assert outcome.igq.num_queries == TINY["num_queries"]
        # iGQ never performs more isomorphism tests than the base method.
        assert (
            outcome.igq.total_isomorphism_tests <= outcome.base.total_isomorphism_tests
        )
        assert outcome.report.isomorphism_test_speedup >= 1.0
        assert outcome.as_dict()["dataset"] == "aids"

    def test_component_flags_reach_engine(self):
        config = ExperimentConfig(**TINY, method="ggsx", enable_isuper=False)
        outcome = run_speedup_experiment(config)
        assert outcome.engine.isuper is None
        assert outcome.engine.isub is not None


class TestFigureDrivers:
    def test_table1_structure(self):
        result = table1(scale=0.05)
        assert len(result["rows"]) == 4
        assert {row["dataset"] for row in result["rows"]} == {
            "aids",
            "pdbs",
            "ppi",
            "synthetic",
        }

    def test_figure1_rows(self):
        result = figure1_time_breakdown(
            datasets=("aids",), methods=("ggsx",), **TINY_OVERRIDES()
        )
        assert len(result["rows"]) == 1
        row = result["rows"][0]
        assert 0 <= row["filter_time_pct"] <= 100
        assert 0 <= row["verify_time_pct"] <= 100

    def test_figure14_rows(self):
        result = figure14_cache_size_time(
            dataset="aids", method="ggsx", cache_sizes=(6, 10), **TINY_OVERRIDES(cache=False)
        )
        assert [row["cache_size"] for row in result["rows"]] == [6, 10]
        assert all(row["iso_test_speedup"] >= 1.0 for row in result["rows"])

    def test_ablation_components_rows(self):
        result = ablation_components(dataset="aids", method="ggsx", **TINY_OVERRIDES())
        assert [row["components"] for row in result["rows"]] == [
            "isub+isuper",
            "isub only",
            "isuper only",
        ]


def TINY_OVERRIDES(cache: bool = True) -> dict:
    overrides = {
        "scale": TINY["scale"],
        "num_queries": TINY["num_queries"],
        "window_size": TINY["window_size"],
        "max_path_length": TINY["max_path_length"],
    }
    if cache:
        overrides["cache_size"] = TINY["cache_size"]
    return overrides


class TestReporting:
    def test_format_rows_alignment(self):
        text = format_rows([{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.25}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_figure_includes_title_and_params(self):
        text = format_figure(
            {"figure": "X", "title": "demo", "params": {"k": 1}, "rows": [{"v": 2}]}
        )
        assert "Figure X" in text
        assert "k=1" in text
        assert "v" in text
