"""Unit tests for the core LabeledGraph type."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.graphs import GraphError, LabeledGraph

from .conftest import labeled_graphs, make_cycle_graph, make_path_graph, make_star_graph


class TestConstruction:
    def test_empty_graph(self):
        graph = LabeledGraph(name="empty")
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert len(graph) == 0
        assert graph.average_degree() == 0.0
        assert graph.density() == 0.0

    def test_add_vertex_and_edge(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        graph.add_vertex(1, "B")
        graph.add_edge(0, 1)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.label(0) == "A"
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert sorted(graph.neighbors(0)) == [1]
        assert graph.degree(0) == 1

    def test_readding_vertex_same_label_is_noop(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        graph.add_vertex(0, "A")
        assert graph.num_vertices == 1

    def test_readding_vertex_other_label_fails(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        with pytest.raises(GraphError):
            graph.add_vertex(0, "B")

    def test_self_loop_rejected(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        with pytest.raises(GraphError):
            graph.add_edge(0, 0)

    def test_edge_requires_known_vertices(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        with pytest.raises(GraphError):
            graph.add_edge(0, 1)
        with pytest.raises(GraphError):
            graph.add_edge(2, 0)

    def test_duplicate_edge_is_noop(self):
        graph = make_path_graph("AB")
        graph.add_edge(0, 1)
        assert graph.num_edges == 1

    def test_duplicate_edge_with_other_label_fails(self):
        graph = make_path_graph("AB")
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, label="bond")

    def test_from_edges(self):
        graph = LabeledGraph.from_edges({0: "A", 1: "B", 2: "C"}, [(0, 1), (1, 2)])
        assert graph.num_vertices == 3
        assert graph.num_edges == 2


class TestRemoval:
    def test_remove_edge(self):
        graph = make_cycle_graph("ABC")
        graph.remove_edge(0, 1)
        assert graph.num_edges == 2
        assert not graph.has_edge(0, 1)

    def test_remove_missing_edge_fails(self):
        graph = make_path_graph("AB")
        with pytest.raises(GraphError):
            graph.remove_edge(0, 5)

    def test_remove_vertex_removes_incident_edges(self):
        graph = make_star_graph("A", "BBB")
        graph.remove_vertex(0)
        assert graph.num_vertices == 3
        assert graph.num_edges == 0
        assert "A" not in graph.labels()

    def test_remove_unknown_vertex_fails(self):
        graph = LabeledGraph()
        with pytest.raises(GraphError):
            graph.remove_vertex(3)

    def test_label_histogram_updates_on_removal(self):
        graph = make_path_graph("AAB")
        graph.remove_vertex(0)
        assert graph.label_histogram() == {"A": 1, "B": 1}


class TestAccessors:
    def test_edges_reported_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert len({frozenset(edge) for edge in edges}) == 3

    def test_label_of_unknown_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.label(99)

    def test_edge_label(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        graph.add_vertex(1, "B")
        graph.add_edge(0, 1, label="double")
        assert graph.edge_label(0, 1) == "double"
        with pytest.raises(GraphError):
            graph.edge_label(0, 5)

    def test_vertices_with_label(self):
        graph = make_path_graph("ABA")
        assert graph.vertices_with_label("A") == frozenset({0, 2})
        assert graph.vertices_with_label("Z") == frozenset()

    def test_degree_sequence(self):
        graph = make_star_graph("A", "BBB")
        assert graph.degree_sequence() == [3, 1, 1, 1]

    def test_density_of_triangle(self, triangle):
        assert triangle.density() == pytest.approx(1.0)

    def test_contains_and_iteration(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle
        assert set(triangle.vertices()) == {0, 1, 2}

    def test_repr_mentions_sizes(self, triangle):
        assert "|V|=3" in repr(triangle)


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.num_edges == 3
        assert clone.num_edges == 2

    def test_subgraph_induced(self):
        graph = make_cycle_graph("ABCD")
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # the edge closing the square is dropped

    def test_subgraph_unknown_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.subgraph([0, 42])

    def test_relabeled_preserves_structure(self):
        graph = LabeledGraph()
        graph.add_vertex("x", "A")
        graph.add_vertex("y", "B")
        graph.add_edge("x", "y")
        relabeled = graph.relabeled()
        assert set(relabeled.vertices()) == {0, 1}
        assert relabeled.num_edges == 1
        assert sorted(relabeled.label_histogram().items()) == [("A", 1), ("B", 1)]

    def test_same_size(self, triangle):
        assert triangle.same_size(make_cycle_graph("XYZ"))
        assert not triangle.same_size(make_path_graph("AB"))


class TestEqualityAndInvariants:
    def test_structural_equality(self):
        first = make_path_graph("ABC")
        second = make_path_graph("ABC")
        assert first == second
        second.add_vertex(9, "Z")
        assert first != second

    def test_equality_other_type(self, triangle):
        assert triangle.__eq__(42) is NotImplemented

    @given(labeled_graphs())
    def test_invariant_signature_stable_under_relabeling(self, graph):
        assert graph.invariant_signature() == graph.relabeled().invariant_signature()

    @given(labeled_graphs(max_vertices=6))
    def test_degree_sum_is_twice_edges(self, graph):
        assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges

    @given(labeled_graphs(max_vertices=6))
    def test_label_histogram_total(self, graph):
        assert sum(graph.label_histogram().values()) == graph.num_vertices
