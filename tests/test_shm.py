"""Tests for shared-memory worker snapshots (:mod:`repro.core.shm`).

Three contracts:

* **Segment lifecycle** — ``publish`` creates one segment per snapshot,
  handles round-trip the object bit-exactly, ``close`` unlinks exactly once
  (double close is a no-op), and the refcounted method-level API unlinks on
  the last release with :meth:`release_shared_payloads` as the force-unlink
  safety net wired into ``IGQ.close``.
* **Fallback** — when shared memory is unavailable the publishing entry
  points return ``None`` and the pools initialise from the classic pickled
  ``initargs`` payload, with identical answers.
* **Byte-identity** — process pools fed through shared memory (batch
  executor workers and per-shard replicas, including ``kernel="numpy"``)
  produce the same answers, accounting and cache state as the inline run.
"""

from __future__ import annotations

import glob
import random

import pytest

from repro.core import IGQ, ShardedIGQ
from repro.core import shm
from repro.core.batch import BatchExecutor
from repro.isomorphism import Verifier
from repro.methods import ScanMethod, create_method

from .conftest import make_path_graph, random_labeled_graph
from .test_shard import engine_fingerprint, run_engine

needs_shm = pytest.mark.skipif(
    not shm.shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture
def no_shared_memory(monkeypatch):
    """Force the pickle fallback regardless of platform support."""
    monkeypatch.setattr(shm, "_force_disabled", True)


def leaked_segments() -> list[str]:
    return glob.glob("/dev/shm/psm_*")


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
@needs_shm
class TestSegmentLifecycle:
    def test_publish_load_roundtrip(self):
        payload = {"graphs": [make_path_graph("ABC")], "answer": 42}
        snapshot = shm.publish(payload)
        assert snapshot is not None
        try:
            loaded = snapshot.handle.load()
            assert loaded["answer"] == 42
            assert repr(loaded["graphs"][0]) == repr(payload["graphs"][0])
        finally:
            snapshot.close()

    def test_handle_is_tiny(self):
        import pickle

        snapshot = shm.publish(list(range(100_000)))
        try:
            assert len(pickle.dumps(snapshot.handle)) < 200
        finally:
            snapshot.close()

    def test_close_unlinks_and_is_idempotent(self):
        snapshot = shm.publish("payload")
        name = snapshot.handle.name
        assert not snapshot.closed
        snapshot.close()
        assert snapshot.closed
        snapshot.close()  # double close: no-op, no exception
        with pytest.raises(FileNotFoundError):
            snapshot.handle.load()
        assert f"/dev/shm/{name}" not in leaked_segments()

    def test_context_manager_closes(self):
        with shm.publish("payload") as snapshot:
            handle = snapshot.handle
            assert handle.load() == "payload"
        assert snapshot.closed

    def test_publish_unavailable_returns_none(self, no_shared_memory):
        assert not shm.shared_memory_available()
        assert shm.publish("anything") is None


@needs_shm
class TestRefcountedPayloads:
    def make_method(self, tiny_database):
        method = ScanMethod()
        method.build_index(tiny_database)
        return method

    def test_acquire_release_refcounting(self, tiny_database):
        method = self.make_method(tiny_database)
        first = method.acquire_shared_payload(mode="subgraph")
        second = method.acquire_shared_payload(mode="subgraph")
        assert first is not None and first == second  # published once
        method.release_shared_payload("subgraph")
        assert first.load() is not None  # one reference still held
        method.release_shared_payload("subgraph")
        with pytest.raises(FileNotFoundError):
            first.load()  # last release unlinked the segment

    def test_modes_publish_separate_segments(self, tiny_database):
        method = self.make_method(tiny_database)
        sub = method.acquire_shared_payload(mode="subgraph")
        sup = method.acquire_shared_payload(mode="supergraph")
        assert sub.name != sup.name
        method.release_shared_payloads()

    def test_release_unpublished_mode_is_noop(self, tiny_database):
        method = self.make_method(tiny_database)
        method.release_shared_payload("subgraph")  # nothing published: no-op

    def test_release_all_force_unlinks(self, tiny_database):
        method = self.make_method(tiny_database)
        handle = method.acquire_shared_payload(mode="subgraph")
        method.acquire_shared_payload(mode="subgraph")  # refcount 2
        method.release_shared_payloads()
        with pytest.raises(FileNotFoundError):
            handle.load()
        assert method._shared_payloads == {}

    def test_acquire_unavailable_returns_none(self, tiny_database, no_shared_memory):
        method = self.make_method(tiny_database)
        assert method.acquire_shared_payload(mode="subgraph") is None

    def test_snapshot_clone_does_not_share_segments(self, tiny_database):
        method = self.make_method(tiny_database)
        method.acquire_shared_payload(mode="subgraph")
        clone = method.verification_snapshot()
        assert clone._shared_payloads == {}
        method.release_shared_payloads()

    def test_loaded_snapshot_verifies(self, tiny_database):
        method = self.make_method(tiny_database)
        handle = method.acquire_shared_payload(mode="subgraph")
        worker_method = handle.load()
        query = make_path_graph("AB")
        assert worker_method.verify(query, worker_method.database.ids()) == method.verify(
            query, tiny_database.ids()
        )
        method.release_shared_payload("subgraph")


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
@pytest.fixture
def small_db():
    from repro.graphs import GraphDatabase

    rng = random.Random(19)
    graphs = [random_labeled_graph(rng, rng.randint(6, 12), 0.3) for _ in range(24)]
    return GraphDatabase.from_graphs(graphs, name="shm_db")


@pytest.fixture
def queries():
    rng = random.Random(23)
    return [random_labeled_graph(rng, rng.randint(3, 5), 0.5) for _ in range(10)]


def run_batch_engine(database, stream, **batch_kwargs):
    method = create_method("ggsx", max_path_length=3)
    engine = IGQ(method, cache_size=8, window_size=3)
    engine.build_index(database)
    with BatchExecutor(engine, **batch_kwargs) as executor:
        results = executor.run_batch(stream)
    fingerprint = engine_fingerprint(engine, results)
    engine.close()
    return fingerprint


@needs_shm
class TestProcessPoolIntegration:
    def test_batch_pool_attaches_and_unlinks(self, small_db, queries):
        baseline = run_batch_engine(small_db, queries)
        before = set(leaked_segments())
        shared = run_batch_engine(small_db, queries, num_workers=2, backend="process")
        assert shared == baseline
        assert set(leaked_segments()) <= before  # every segment unlinked

    def test_batch_pool_pickle_fallback(self, small_db, queries, no_shared_memory):
        baseline = run_batch_engine(small_db, queries)
        fallback = run_batch_engine(small_db, queries, num_workers=2, backend="process")
        assert fallback == baseline

    def test_executor_close_releases_segment(self, small_db, queries):
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ(method, cache_size=8, window_size=3)
        engine.build_index(small_db)
        executor = BatchExecutor(engine, num_workers=2, backend="process")
        executor.run_batch(queries[:4])
        assert executor._shared_mode is not None
        assert "subgraph" in method._shared_payloads
        executor.close()
        assert executor._shared_mode is None
        assert method._shared_payloads == {}
        engine.close()

    def test_engine_close_is_a_safety_net(self, small_db):
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ(method, cache_size=8, window_size=3)
        engine.build_index(small_db)
        handle = method.acquire_shared_payload(mode="subgraph")
        assert handle is not None
        engine.close()  # force-unlinks what a leaked executor left behind
        assert method._shared_payloads == {}
        with pytest.raises(FileNotFoundError):
            handle.load()

    def test_process_shards_attach_shared_snapshot(self, small_db, queries):
        _, baseline = run_engine(small_db, queries, engine_cls=IGQ)
        before = set(leaked_segments())
        engine, sharded = run_engine(
            small_db, queries, shards=2, shard_backend="process"
        )
        assert engine.shard_runtime._acquired_mode == "subgraph"
        engine.close()
        assert sharded == baseline
        assert set(leaked_segments()) <= before

    def test_numpy_kernel_process_shards_byte_identical(self, small_db, queries):
        """shards=4, process backend, kernel="numpy": the full acceptance
        configuration must match the inline bigint single-shard run."""
        _, baseline = run_engine(small_db, queries, engine_cls=IGQ)
        verifier = Verifier(kernel="numpy")
        method = create_method("ggsx", max_path_length=3, verifier=verifier)
        engine = ShardedIGQ(
            method, shards=4, shard_backend="process", cache_size=10, window_size=3
        )
        engine.build_index(small_db)
        results = [engine.query(query) for query in queries]
        fingerprint = engine_fingerprint(engine, results)
        engine.close()
        assert fingerprint == baseline
