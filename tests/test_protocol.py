"""Round-trip and validation tests for the versioned JSON wire protocol."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import ConfigError
from repro.core.engine import IGQQueryResult
from repro.graphs.graph import LabeledGraph
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    decode_request,
    decode_response,
    encode_frame,
    encode_request,
    encode_response,
    error_to_dict,
    graph_from_dict,
    graph_to_dict,
    result_from_dict,
    result_to_dict,
)

from .conftest import labeled_graphs


def wire_round_trip(envelope):
    """Push a payload through the actual bytes-on-the-wire path."""
    return decode_frame(encode_frame(envelope))


class TestGraphRoundTrip:
    @given(labeled_graphs(max_vertices=8))
    def test_round_trip_preserves_structure_and_order(self, graph):
        restored = graph_from_dict(wire_round_trip(graph_to_dict(graph)))
        assert restored == graph
        assert list(restored.vertices()) == list(graph.vertices())
        assert sorted(restored.edges()) == sorted(graph.edges())

    def test_round_trip_preserves_labels_names_and_mixed_ids(self):
        graph = LabeledGraph(name="query-7")
        graph.add_vertex("a", "X")
        graph.add_vertex(2, "Y")
        graph.add_vertex("c", "X")
        graph.add_edge("a", 2, "bond")
        graph.add_edge(2, "c")
        restored = graph_from_dict(wire_round_trip(graph_to_dict(graph)))
        assert restored == graph
        assert restored.name == "query-7"
        assert restored.edge_label("a", 2) == "bond"
        assert restored.edge_label(2, "c") is None

    @pytest.mark.parametrize(
        ("payload", "fragment"),
        [
            ("nope", "graph='nope'"),
            ({"vertices": []}, "graph.edges"),
            ({"vertices": {}, "edges": []}, "graph.vertices"),
            ({"vertices": [], "edges": [], "label": 1}, "unknown key"),
            ({"vertices": [[1]], "edges": []}, "graph.vertices[0]"),
            ({"vertices": [[1, "A"], [1, "B"]], "edges": []}, "repeats vertex id"),
            ({"vertices": [[1, "A"]], "edges": [[1, 2]]}, "graph.edges[0]"),
            ({"vertices": [[1, "A"]], "edges": [[1, 1]]}, "graph.edges[0]"),
            (
                {"vertices": [[1, "A"], [2, "B"]], "edges": [[1, 2], [2, 1]]},
                "graph.edges[1]",
            ),
        ],
    )
    def test_malformed_graph_names_offending_field(self, payload, fragment):
        with pytest.raises(ProtocolError, match="graph") as excinfo:
            graph_from_dict(payload)
        assert excinfo.value.code == "invalid_graph"
        assert fragment in str(excinfo.value)


class TestResultRoundTrip:
    @given(
        st.sets(st.text(min_size=1, max_size=4), max_size=6),
        st.sets(st.text(min_size=1, max_size=4), max_size=6),
        st.integers(min_value=0, max_value=99),
        st.booleans(),
    )
    def test_round_trip(self, answers, guaranteed, tests, exact):
        result = IGQQueryResult(
            query_name="q",
            answers=answers,
            candidates=answers | guaranteed,
            guaranteed_answers=guaranteed,
            num_isomorphism_tests=tests,
            num_sub_hits=1,
            exact_hit=exact,
            filter_seconds=0.25,
        )
        restored = result_from_dict(wire_round_trip(result_to_dict(result)))
        assert restored.answers == result.answers
        assert restored.candidates == result.candidates
        assert restored.guaranteed_answers == result.guaranteed_answers
        assert restored.num_isomorphism_tests == tests
        assert restored.num_sub_hits == 1
        assert restored.exact_hit is exact
        assert restored.filter_seconds == 0.25

    def test_answers_are_serialised_deterministically(self):
        result = IGQQueryResult(query_name="q", answers={"b", "a", "c"})
        first = json.dumps(result_to_dict(result))
        second = json.dumps(result_to_dict(IGQQueryResult(query_name="q", answers={"c", "a", "b"})))
        assert first == second

    def test_unknown_result_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown key"):
            result_from_dict({"query_name": "q", "bogus": 1})


class TestEnvelopes:
    def test_request_round_trip(self):
        envelope = encode_request(
            "query", request_id=9, tenant="fast", payload={"mode": "subgraph"}
        )
        request = decode_request(wire_round_trip(envelope))
        assert request.op == "query"
        assert request.request_id == 9
        assert request.tenant == "fast"
        assert request.payload == {"mode": "subgraph"}

    def test_request_defaults(self):
        request = decode_request(encode_request("ping", request_id=0))
        assert request.tenant == "default"
        assert request.payload == {}

    def test_response_round_trip(self):
        ok = decode_response(wire_round_trip(encode_response(3, result={"pong": True})))
        assert ok.ok and ok.request_id == 3 and ok.result == {"pong": True}
        failed = decode_response(
            encode_response(4, error={"code": "timeout", "message": "t", "field": None})
        )
        assert not failed.ok
        assert failed.error["code"] == "timeout"

    def test_response_needs_exactly_one_of_result_or_error(self):
        with pytest.raises(ValueError, match="exactly one"):
            encode_response(1)
        with pytest.raises(ValueError, match="exactly one"):
            encode_response(1, result={}, error={"code": "x", "message": "y"})
        with pytest.raises(ProtocolError, match="exactly one"):
            decode_response({"protocol_version": PROTOCOL_VERSION, "id": 1})

    @pytest.mark.parametrize("version", [0, 2, "1", None])
    def test_version_mismatch_rejected_both_directions(self, version):
        request = encode_request("ping", request_id=1)
        request["protocol_version"] = version
        with pytest.raises(ProtocolError, match="protocol_version") as excinfo:
            decode_request(request)
        assert excinfo.value.code == "unsupported_version"
        response = encode_response(1, result={})
        response["protocol_version"] = version
        with pytest.raises(ProtocolError, match="protocol_version"):
            decode_response(response)

    @pytest.mark.parametrize(
        ("mutation", "field"),
        [
            ({"op": "shutdown"}, "request.op"),
            ({"id": "seven"}, "request.id"),
            ({"id": True}, "request.id"),
            ({"tenant": ""}, "request.tenant"),
            ({"payload": []}, "request.payload"),
        ],
    )
    def test_malformed_request_names_offending_field(self, mutation, field):
        envelope = encode_request("ping", request_id=7)
        envelope.update(mutation)
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(envelope)
        assert excinfo.value.field == field
        assert field.split(".", 1)[1] in str(excinfo.value)

    def test_malformed_frame(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"{not json")
        assert excinfo.value.code == "invalid_json"


class TestErrorPayloads:
    def test_known_exceptions_map_to_typed_codes(self):
        from repro.service.scheduler import AdmissionError
        from repro.service.service import QueryTimeout, ServiceClosed

        cases = [
            (ProtocolError("bad", code="invalid_graph", field="graph"), "invalid_graph"),
            (QueryTimeout("query timed out after 1.0s"), "timeout"),
            (AdmissionError("tenant 'hog' is over its max_in_flight=2 quota"), "overloaded"),
            (ServiceClosed("service is closed"), "closed"),
            (ConfigError("service.tenants[0].weight=0 is not valid"), "invalid_config"),
            (ValueError("unknown mode"), "invalid_request"),
            (RuntimeError("boom"), "internal"),
        ]
        for exc, code in cases:
            payload = error_to_dict(exc)
            assert payload["code"] == code
            assert isinstance(payload["message"], str) and payload["message"]
            wire_round_trip(encode_response(1, error=payload))

    def test_error_payload_keeps_field_naming(self):
        payload = error_to_dict(
            ProtocolError(
                "request.payload.graph.vertices is not valid",
                code="invalid_graph",
                field="request.payload.graph.vertices",
            )
        )
        assert payload["field"] == "request.payload.graph.vertices"
        assert "graph.vertices" in payload["message"]
