"""Integration tests for the network front door (server + client).

The contracts:

* **Byte identity** — a single-tenant query stream through the socket
  yields the same answers, accounting and engine cache state as the legacy
  sequential ``engine.query()`` loop (the protocol is a transport, not a
  semantic layer).
* **Typed errors** — malformed frames, version mismatches, bad payloads and
  quota pressure come back as machine-readable error payloads and are
  re-raised client-side as their local exception types.
* **Concurrency** — multiple tenants on separate connections get correctly
  attributed stats, and responses are matched by request id even when they
  complete out of submission order.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.core.config import ServiceConfig, TenantConfig
from repro.methods import create_method
from repro.service import (
    AdmissionError,
    GraphQueryService,
    connect,
    serve,
)
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError

from .test_service import (
    database,  # noqa: F401 - fixture re-export
    engine_fingerprint,
    mixed_config,
    mixed_stream,  # noqa: F401 - fixture re-export
    sequential_baseline,
)

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


def serve_mixed(database, **service_kwargs):  # noqa: F811 - fixture name
    config = mixed_config(service=ServiceConfig(**service_kwargs))
    service = GraphQueryService(
        create_method("ggsx", max_path_length=3), config, database=database
    )
    return service


class TestWireEquivalence:
    def test_remote_stream_matches_sequential_engine(self, database, mixed_stream):  # noqa: F811
        baseline = sequential_baseline(database, mixed_stream)
        service = serve_mixed(database)
        with service, serve(service) as server:
            with connect(server.host, server.port) as client:
                results = [client.query(query, mode) for query, mode in mixed_stream]
            fingerprint = engine_fingerprint(service.engine, results)
        assert fingerprint == baseline

    def test_pipelined_submissions_keep_order_and_identity(self, database, mixed_stream):  # noqa: F811
        baseline = sequential_baseline(database, mixed_stream)
        # the whole stream is submitted at once: raise the quota above 36
        service = serve_mixed(database, default_max_in_flight=64)
        with service, serve(service) as server:
            with connect(server.host, server.port) as client:
                futures = [
                    client.submit(query, mode) for query, mode in mixed_stream
                ]
                results = [future.result(timeout=120) for future in futures]
            fingerprint = engine_fingerprint(service.engine, results)
        assert fingerprint == baseline


class TestProtocolSurface:
    @pytest.fixture()
    def endpoint(self, database):  # noqa: F811
        service = serve_mixed(database)
        with service, serve(service) as server:
            yield server

    def raw_exchange(self, server, envelope: dict) -> dict:
        with socket.create_connection((server.host, server.port)) as sock:
            sock.sendall(json.dumps(envelope).encode() + b"\n")
            reader = sock.makefile("rb")
            return json.loads(reader.readline())

    def test_ping(self, endpoint):
        with connect(endpoint.host, endpoint.port) as client:
            assert client.ping() == {"pong": True}

    def test_responses_carry_protocol_version(self, endpoint):
        response = self.raw_exchange(
            endpoint,
            {"protocol_version": PROTOCOL_VERSION, "id": 5, "op": "ping"},
        )
        assert response["protocol_version"] == PROTOCOL_VERSION
        assert response["id"] == 5
        assert response["result"] == {"pong": True}

    def test_version_mismatch_is_a_typed_error(self, endpoint):
        response = self.raw_exchange(
            endpoint, {"protocol_version": 99, "id": 1, "op": "ping"}
        )
        assert response["error"]["code"] == "unsupported_version"
        assert "protocol_version=99" in response["error"]["message"]

    def test_malformed_json_is_a_typed_error(self, endpoint):
        with socket.create_connection((endpoint.host, endpoint.port)) as sock:
            sock.sendall(b"{this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["error"]["code"] == "invalid_json"
        assert response["id"] is None

    def test_unknown_op_and_bad_graph_name_the_field(self, endpoint):
        bad_op = self.raw_exchange(
            endpoint, {"protocol_version": PROTOCOL_VERSION, "id": 2, "op": "drop"}
        )
        assert bad_op["error"]["code"] == "invalid_request"
        assert bad_op["error"]["field"] == "request.op"
        bad_graph = self.raw_exchange(
            endpoint,
            {
                "protocol_version": PROTOCOL_VERSION,
                "id": 3,
                "op": "query",
                "payload": {"graph": {"vertices": "nope", "edges": []}},
            },
        )
        assert bad_graph["error"]["code"] == "invalid_graph"
        assert bad_graph["error"]["field"] == "request.payload.graph.vertices"

    def test_client_raises_local_exception_types(self, endpoint, mixed_stream):  # noqa: F811
        query = mixed_stream[0][0]
        with connect(endpoint.host, endpoint.port) as client:
            with pytest.raises(ProtocolError, match="mixed-mode"):
                client.query(query)  # mixed engine: mode is mandatory
            with pytest.raises(ProtocolError, match="unknown query mode"):
                client.query(query, "sideways")

    def test_stats_over_the_wire(self, endpoint, mixed_stream):  # noqa: F811
        query, mode = mixed_stream[0]
        with connect(endpoint.host, endpoint.port, tenant="acct") as client:
            client.query(query, mode)
            stats = client.stats()
        assert stats["sessions"]["acct"]["queries"] == 1
        assert stats["scheduler"]["acct"]["in_flight"] == 0
        assert stats["config"]["mode"] == "mixed"


class TestMultiTenant:
    def test_tenants_on_separate_connections_are_attributed(self, database, mixed_stream):  # noqa: F811
        service = serve_mixed(
            database, tenants=(TenantConfig(name="vip", weight=4),)
        )
        with service, serve(service) as server:
            with connect(server.host, server.port, tenant="vip") as vip, connect(
                server.host, server.port, tenant="guest"
            ) as guest:
                vip_futures = [
                    vip.submit(query, mode) for query, mode in mixed_stream[:8]
                ]
                guest_futures = [
                    guest.submit(query, mode) for query, mode in mixed_stream[8:12]
                ]
                for future in vip_futures + guest_futures:
                    future.result(timeout=120)
                stats = guest.stats()
        assert stats["sessions"]["vip"]["queries"] == 8
        assert stats["sessions"]["guest"]["queries"] == 4
        assert stats["totals"]["queries"] == 12
        assert stats["scheduler"]["vip"]["weight"] == 4

    def test_quota_pressure_is_an_overloaded_error(self, database, mixed_stream):  # noqa: F811
        # One burst token, then queued: with max_in_flight=2 the third
        # concurrent submission is deterministically over quota.
        service = serve_mixed(
            database,
            tenants=(
                TenantConfig(name="busy", max_in_flight=2, rate_limit=0.5),
            ),
        )
        with service, serve(service) as server:
            with connect(server.host, server.port, tenant="busy") as client:
                query, mode = mixed_stream[0]
                client.query(query, mode)  # consumes the burst token
                client.submit(*mixed_stream[1])  # queued, holds a slot
                client.submit(*mixed_stream[2])  # queued, holds a slot
                third = client.submit(*mixed_stream[3])
                with pytest.raises(AdmissionError, match="max_in_flight=2"):
                    third.result(timeout=120)
