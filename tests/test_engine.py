"""Integration tests for the iGQ engine (correctness, optimal cases, modes)."""

from __future__ import annotations

import random

import pytest

from repro.core import IGQ
from repro.graphs import GraphDatabase
from repro.isomorphism import is_subgraph_isomorphic
from repro.methods import CTIndexMethod, GGSXMethod, GrapesMethod, ScanMethod

from .conftest import make_cycle_graph, make_path_graph, make_star_graph, random_labeled_graph


def build_database(seed=21, count=14) -> GraphDatabase:
    rng = random.Random(seed)
    graphs = [
        random_labeled_graph(rng, rng.randint(4, 9), 0.25, labels="ABC", name=f"g{i}")
        for i in range(count)
    ]
    graphs.append(make_cycle_graph("ABC", name="tri"))
    graphs.append(make_star_graph("A", "BBC", name="star"))
    return GraphDatabase.from_graphs(graphs)


def make_queries(seed=3, count=40):
    rng = random.Random(seed)
    queries = []
    for index in range(count):
        queries.append(
            random_labeled_graph(
                rng, rng.randint(2, 6), 0.3, labels="ABC", name=f"q{index}"
            )
        )
    return queries


def subgraph_truth(database, query):
    return {gid for gid, graph in database.items() if is_subgraph_isomorphic(query, graph)}


def supergraph_truth(database, query):
    return {gid for gid, graph in database.items() if is_subgraph_isomorphic(graph, query)}


class TestConstruction:
    def test_requires_a_component(self):
        with pytest.raises(ValueError):
            IGQ(GGSXMethod(max_path_length=2), enable_isub=False, enable_isuper=False)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            IGQ(GGSXMethod(max_path_length=2), mode="bidirectional")

    def test_query_before_index(self):
        engine = IGQ(GGSXMethod(max_path_length=2))
        with pytest.raises(RuntimeError):
            engine.query(make_path_graph("AB"))

    def test_mode_guards(self):
        engine = IGQ(GGSXMethod(max_path_length=2), mode="subgraph")
        engine.build_index(build_database())
        with pytest.raises(RuntimeError):
            engine.supergraph_query(make_path_graph("AB"))

    def test_attach_prebuilt_requires_built_method(self):
        engine = IGQ(GGSXMethod(max_path_length=2))
        with pytest.raises(RuntimeError):
            engine.attach_prebuilt()

    def test_name_and_repr(self):
        engine = IGQ(GGSXMethod(max_path_length=2))
        assert engine.name == "igq_ggsx"
        assert "ggsx" in repr(engine)


@pytest.mark.parametrize(
    "method_factory",
    [
        lambda: GGSXMethod(max_path_length=3),
        lambda: GrapesMethod(max_path_length=3),
        lambda: CTIndexMethod(tree_max_size=3, cycle_max_length=4),
        lambda: ScanMethod(),
    ],
    ids=["ggsx", "grapes", "ctindex", "scan"],
)
class TestCorrectness:
    def test_answers_always_match_brute_force(self, method_factory):
        database = build_database()
        method = method_factory()
        engine = IGQ(method, cache_size=10, window_size=3)
        engine.build_index(database)
        for query in make_queries(count=35):
            result = engine.query(query)
            assert result.answers == subgraph_truth(database, query), query.name

    def test_repeated_stream_has_no_false_results(self, method_factory):
        """Lemmas 1 and 2: no false positives, no false negatives, even when
        the same queries recur and the cache is heavily reused."""
        database = build_database()
        method = method_factory()
        engine = IGQ(method, cache_size=8, window_size=2)
        engine.build_index(database)
        queries = make_queries(count=12)
        for _ in range(3):  # replay the same queries: exact-hit path exercised
            for query in queries:
                result = engine.query(query)
                truth = subgraph_truth(database, query)
                assert result.answers == truth


class TestOptimalCases:
    def test_exact_repeat_skips_verification(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=10, window_size=1)
        engine.build_index(database)
        query = make_path_graph("ABC", name="repeat")
        first = engine.query(query)
        second = engine.query(query.copy(name="repeat-again"))
        assert second.exact_hit
        assert second.num_isomorphism_tests == 0
        assert second.answers == first.answers

    def test_empty_answer_subquery_short_circuits(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=10, window_size=1)
        engine.build_index(database)
        # A query with a label that exists nowhere: empty answer, cached.
        impossible = make_path_graph("AZ", name="impossible")
        first = engine.query(impossible)
        assert first.answers == set()
        # A supergraph of the impossible query: Isuper finds the cached empty
        # answer and proves the result empty without any isomorphism test.
        bigger = make_path_graph("AZB", name="bigger")
        second = engine.query(bigger)
        assert second.answers == set()
        assert second.num_isomorphism_tests == 0
        assert second.verification_skipped

    def test_subgraph_of_cached_query_reuses_answers(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=10, window_size=1)
        engine.build_index(database)
        big_query = make_path_graph("ABC", name="big")
        engine.query(big_query)
        small_query = make_path_graph("AB", name="small")
        result = engine.query(small_query)
        assert result.num_sub_hits >= 1
        assert result.guaranteed_answers  # answers inherited without testing
        assert result.answers == subgraph_truth(database, small_query)


class TestSupergraphMode:
    def test_supergraph_answers_match_brute_force(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=8, window_size=2, mode="supergraph")
        engine.build_index(database)
        rng = random.Random(17)
        for index in range(25):
            query = random_labeled_graph(
                rng, rng.randint(4, 9), 0.35, labels="ABC", name=f"sq{index}"
            )
            result = engine.supergraph_query(query)
            assert result.answers == supergraph_truth(database, query), query.name

    def test_generic_query_dispatches_by_mode(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), mode="supergraph")
        engine.build_index(database)
        query = make_star_graph("A", "BBC")
        assert engine.query(query).answers == supergraph_truth(database, query)


class TestComponentsAndMetadata:
    def test_single_component_configurations_stay_correct(self):
        database = build_database()
        for flags in ((True, False), (False, True)):
            engine = IGQ(
                GGSXMethod(max_path_length=3),
                cache_size=8,
                window_size=2,
                enable_isub=flags[0],
                enable_isuper=flags[1],
            )
            engine.build_index(database)
            for query in make_queries(count=20):
                assert engine.query(query).answers == subgraph_truth(database, query)

    def test_hits_update_metadata(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=10, window_size=1)
        engine.build_index(database)
        engine.query(make_path_graph("ABC", name="seed"))
        engine.query(make_path_graph("AB", name="child"))
        hit_entries = [entry for entry in engine.cache.entries() if entry.hits > 0]
        assert hit_entries
        assert all(entry.alleviated_cost >= 0 for entry in hit_entries)

    def test_cache_respects_capacity(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=5, window_size=2)
        engine.build_index(database)
        for query in make_queries(count=30):
            engine.query(query)
        assert len(engine.cache) <= 5

    def test_maintenance_report_returned_on_flush(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=6, window_size=2)
        engine.build_index(database)
        first = engine.query(make_path_graph("AB", name="one"))
        second = engine.query(make_path_graph("BC", name="two"))
        assert first.maintenance is None
        assert second.maintenance is not None
        assert second.maintenance.inserted == 2

    def test_index_size_grows_with_cached_queries(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=10, window_size=1)
        engine.build_index(database)
        empty_size = engine.index_size_bytes()
        for query in make_queries(count=6):
            engine.query(query)
        assert engine.index_size_bytes() > empty_size

    def test_warm_up_helper(self):
        database = build_database()
        engine = IGQ(GGSXMethod(max_path_length=3), cache_size=10, window_size=2)
        engine.build_index(database)
        results = engine.warm_up(make_queries(count=4))
        assert len(results) == 4
        assert len(engine.cache) >= 2
