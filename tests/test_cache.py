"""Tests for the iGQ query cache and its metadata bookkeeping."""

from __future__ import annotations

import pytest

from repro.core import QueryCache
from repro.features import FeatureExtractor

from .conftest import make_cycle_graph, make_path_graph

EXTRACTOR = FeatureExtractor(max_path_length=2)


def add_entry(cache, graph, answer=("g1",)):
    return cache.add(graph, EXTRACTOR.extract(graph), frozenset(answer))


class TestQueryCache:
    def test_add_assigns_increasing_ids(self):
        cache = QueryCache()
        first = add_entry(cache, make_path_graph("AB"))
        second = add_entry(cache, make_path_graph("BC"))
        assert second.entry_id == first.entry_id + 1
        assert len(cache) == 2
        assert first.entry_id in cache

    def test_get_and_remove(self):
        cache = QueryCache()
        entry = add_entry(cache, make_path_graph("AB"))
        assert cache.get(entry.entry_id) is entry
        removed = cache.remove(entry.entry_id)
        assert removed is entry
        assert len(cache) == 0
        with pytest.raises(KeyError):
            cache.get(entry.entry_id)
        with pytest.raises(KeyError):
            cache.remove(entry.entry_id)

    def test_entries_in_insertion_order(self):
        cache = QueryCache()
        graphs = [make_path_graph("AB"), make_path_graph("BC"), make_cycle_graph("ABC")]
        for graph in graphs:
            add_entry(cache, graph)
        assert [entry.graph for entry in cache.entries()] == graphs
        assert cache.entry_ids() == [0, 1, 2]

    def test_query_counter_and_added_at(self):
        cache = QueryCache()
        for _ in range(5):
            cache.note_query_processed()
        entry = add_entry(cache, make_path_graph("AB"))
        assert entry.added_at == 5
        for _ in range(3):
            cache.note_query_processed()
        assert entry.queries_since_added(cache.query_counter) == 3

    def test_answer_stored_as_frozenset(self):
        cache = QueryCache()
        entry = cache.add(
            make_path_graph("AB"), EXTRACTOR.extract(make_path_graph("AB")), {"g1", "g2"}
        )
        assert entry.answer == frozenset({"g1", "g2"})

    def test_tags_are_copied(self):
        cache = QueryCache()
        tags = {"mode": "subgraph"}
        entry = cache.add(
            make_path_graph("AB"), EXTRACTOR.extract(make_path_graph("AB")), set(), tags=tags
        )
        tags["mode"] = "mutated"
        assert entry.tags == {"mode": "subgraph"}


class TestCacheEntryMetadata:
    def test_record_hit_accumulates(self):
        cache = QueryCache()
        entry = add_entry(cache, make_path_graph("AB"))
        entry.record_hit(removed=3, alleviated_cost=10.0)
        entry.record_hit(removed=2, alleviated_cost=5.0)
        assert entry.hits == 2
        assert entry.removed == 5
        assert entry.alleviated_cost == pytest.approx(15.0)

    def test_queries_since_added_never_negative(self):
        cache = QueryCache()
        entry = add_entry(cache, make_path_graph("AB"))
        assert entry.queries_since_added(0) == 0
