"""Tests for the Ullmann baseline matcher (agreement with VF2)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.graphs import LabeledGraph
from repro.isomorphism import (
    UllmannMatcher,
    is_subgraph_isomorphic,
    ullmann_is_subgraph_isomorphic,
)

from .conftest import (
    graph_and_subgraph,
    labeled_graphs,
    make_clique,
    make_cycle_graph,
    make_path_graph,
    make_star_graph,
)


class TestKnownCases:
    def test_path_in_cycle(self):
        assert ullmann_is_subgraph_isomorphic(make_path_graph("ABC"), make_cycle_graph("ABC"))

    def test_cycle_not_in_path(self):
        assert not ullmann_is_subgraph_isomorphic(
            make_cycle_graph("ABC"), make_path_graph("ABC")
        )

    def test_triangle_in_k4(self):
        assert ullmann_is_subgraph_isomorphic(make_cycle_graph("AAA"), make_clique("AAAA"))

    def test_star_degree_pruning(self):
        assert not ullmann_is_subgraph_isomorphic(
            make_star_graph("A", "BBB"), make_path_graph("BAB")
        )

    def test_empty_pattern(self):
        assert ullmann_is_subgraph_isomorphic(LabeledGraph(), make_path_graph("AB"))

    def test_pattern_larger_than_target(self):
        assert not ullmann_is_subgraph_isomorphic(
            make_path_graph("ABCD"), make_path_graph("AB")
        )

    def test_embedding_is_valid(self):
        pattern = make_path_graph("ABC")
        target = make_cycle_graph("ABCD")
        embedding = UllmannMatcher(pattern, target).find_one()
        assert embedding is not None
        for u, v in pattern.edges():
            assert target.has_edge(embedding[u], embedding[v])

    def test_missing_label_prunes_immediately(self):
        assert not ullmann_is_subgraph_isomorphic(
            make_path_graph("AZ"), make_cycle_graph("ABC")
        )


class TestAgreementWithVF2:
    @settings(max_examples=40, deadline=None)
    @given(labeled_graphs(max_vertices=5), labeled_graphs(max_vertices=6))
    def test_random_pairs_agree(self, pattern, target):
        assert ullmann_is_subgraph_isomorphic(pattern, target) == is_subgraph_isomorphic(
            pattern, target
        )

    @settings(max_examples=40, deadline=None)
    @given(graph_and_subgraph(max_vertices=7))
    def test_true_subgraphs_always_found(self, pair):
        graph, subgraph = pair
        assert ullmann_is_subgraph_isomorphic(subgraph, graph)
