"""Tests for the unified compiled containment layer.

Three contracts:

* **Equivalence** — with the compiled path on (the default), the two
  component indexes and Grapes' region-masked verification return exactly
  the answers, hit lists and verifier accounting of the dict-based path
  (``compiled=False``), at the index level and end-to-end through the
  engine.
* **Compile-on-insertion** — cached entries carry their ``CompiledTarget`` /
  ``CompiledQueryPlan`` from the moment they are indexed, shadow rebuilds
  reuse (never recompile) them, and eviction releases them.
* **Bounded lifecycle** — a long churny insert/evict stream keeps the number
  of live compiled objects and the dense-slot allocator's footprint at a
  steady state instead of growing without bound.
"""

from __future__ import annotations

import gc
import random

import pytest

from repro.core import IGQ, QueryCache, SubgraphQueryIndex, SupergraphQueryIndex
from repro.datasets.registry import load_dataset
from repro.features import FeatureExtractor
from repro.isomorphism import CompiledQueryPlan, CompiledTarget, Verifier
from repro.methods import create_method
from repro.workloads.generator import QueryGenerator, WorkloadSpec
from repro.workloads.zipf import create_sampler

from .conftest import make_cycle_graph, make_path_graph, random_labeled_graph

EXTRACTOR = FeatureExtractor(max_path_length=3)


@pytest.fixture(scope="module")
def small_synthetic():
    return load_dataset("synthetic", scale=0.15)


def build_indexes(graphs, compiled: bool, verifier: Verifier | None = None):
    cache = QueryCache()
    isub = SubgraphQueryIndex(verifier, compiled=compiled)
    isuper = SupergraphQueryIndex(verifier, compiled=compiled)
    for graph in graphs:
        entry = cache.add(graph, EXTRACTOR.extract(graph), frozenset())
        isub.add(entry)
        isuper.add(entry)
    return cache, isub, isuper


def random_query_pool(rng: random.Random, count: int, lo: int = 2, hi: int = 7):
    return [
        random_labeled_graph(rng, rng.randint(lo, hi), 0.4, name=f"c{i}")
        for i in range(count)
    ]


class TestCompiledDictEquivalence:
    def test_index_answers_and_accounting_match(self):
        rng = random.Random(23)
        cached = random_query_pool(rng, 25)
        fast_verifier = Verifier()
        slow_verifier = Verifier(compiled=False)
        _, fast_isub, fast_isuper = build_indexes(cached, True, fast_verifier)
        _, slow_isub, slow_isuper = build_indexes(cached, False, slow_verifier)
        for _ in range(40):
            query = random_labeled_graph(rng, rng.randint(2, 8), 0.4)
            features = EXTRACTOR.extract(query)
            fast_sub = [e.entry_id for e in fast_isub.find_supergraphs(query, features)]
            slow_sub = [e.entry_id for e in slow_isub.find_supergraphs(query, features)]
            assert fast_sub == slow_sub
            fast_super = [e.entry_id for e in fast_isuper.find_subgraphs(query, features)]
            slow_super = [e.entry_id for e in slow_isuper.find_subgraphs(query, features)]
            assert fast_super == slow_super
        # One counted test per surviving pair, on both paths.
        assert fast_verifier.stats.tests == slow_verifier.stats.tests
        assert fast_verifier.stats.positives == slow_verifier.stats.positives
        assert fast_verifier.stats.negatives == slow_verifier.stats.negatives
        assert fast_verifier.stats.tests > 0

    @pytest.mark.parametrize("method_name", ["ggsx", "grapes"])
    def test_engine_state_byte_identical(self, method_name, small_synthetic):
        database = small_synthetic
        spec = WorkloadSpec(
            name="zipf", graph_distribution="zipf", node_distribution="zipf",
            alpha=1.2, seed=5,
        )
        pool = QueryGenerator(database, spec).generate(12)
        rng = random.Random(6)
        sampler = create_sampler("zipf", len(pool), alpha=1.2)
        stream = [pool[sampler.sample(rng)] for _ in range(40)]

        def run(compiled: bool):
            method = create_method(
                method_name,
                max_path_length=3,
                verifier=Verifier(compiled=compiled),
            )
            engine = IGQ(
                method,
                cache_size=12,
                window_size=4,
                igq_compiled=compiled,
                igq_verifier=Verifier(compiled=compiled),
            )
            engine.build_index(database)
            results = [engine.query(query) for query in stream]
            answers = [tuple(sorted(map(repr, result.answers))) for result in results]
            accounting = [
                (
                    result.num_isomorphism_tests,
                    result.num_sub_hits,
                    result.num_super_hits,
                    result.exact_hit,
                    result.verification_skipped,
                )
                for result in results
            ]
            cache_state = sorted(
                (
                    entry.entry_id,
                    entry.graph.name,
                    tuple(sorted(map(repr, entry.answer))),
                    entry.hits,
                    entry.removed,
                    round(entry.alleviated_cost, 9),
                    entry.added_at,
                )
                for entry in engine.cache.entries()
            )
            igq_stats = engine.igq_verifier.stats
            return (
                answers,
                accounting,
                cache_state,
                (igq_stats.tests, igq_stats.positives, igq_stats.negatives),
                (
                    method.verifier.stats.tests,
                    method.verifier.stats.positives,
                    method.verifier.stats.negatives,
                ),
            )

        assert run(True) == run(False)


class TestCompileOnInsertion:
    def test_entries_carry_compiled_state(self):
        cached = [make_cycle_graph("ABCD"), make_path_graph("AB")]
        cache, isub, isuper = build_indexes(cached, True)
        for entry in cache.entries():
            assert isinstance(entry.compiled_target, CompiledTarget)
            assert isinstance(entry.compiled_plan, CompiledQueryPlan)

    def test_dict_mode_compiles_nothing(self):
        cache, isub, isuper = build_indexes([make_cycle_graph("ABC")], False)
        entry = next(cache.entries())
        assert entry.compiled_target is None and entry.compiled_plan is None

    def test_rebuild_reuses_compiled_state(self):
        cache, isub, isuper = build_indexes([make_cycle_graph("ABCD")], True)
        entry = next(cache.entries())
        target, plan = entry.compiled_target, entry.compiled_plan
        isub.rebuild(cache)
        isuper.rebuild(cache)
        assert entry.compiled_target is target  # same object — not recompiled
        assert entry.compiled_plan is plan

    def test_cache_eviction_releases_compiled_state(self):
        cache, isub, isuper = build_indexes([make_cycle_graph("ABC")], True)
        entry = cache.remove(next(cache.entries()).entry_id)
        assert entry.compiled_target is None and entry.compiled_plan is None

    def test_index_remove_releases_its_direction(self):
        cache, isub, isuper = build_indexes([make_cycle_graph("ABC")], True)
        entry = next(cache.entries())
        isub.remove(entry.entry_id)
        assert entry.compiled_target is None
        assert entry.compiled_plan is not None  # Isuper still serves it
        isuper.remove(entry.entry_id)
        assert entry.compiled_plan is None

    def test_rebuild_releases_entries_dropped_from_the_cache(self):
        """A shadow rebuild that drops entries must not strand payloads.

        ``QueryCache.remove`` releases on eviction, but an index rebuilt
        against a cache that no longer holds one of its entries (the entry
        left through some other door) must release the dropped entry's
        compiled state for its own direction.
        """
        cache, isub, isuper = build_indexes(
            [make_cycle_graph("ABCD"), make_path_graph("AB")], True
        )
        dropped, kept = list(cache.entries())
        # Simulate an exit that bypasses QueryCache.remove (no release).
        del cache._entries[dropped.entry_id]
        assert dropped.compiled_target is not None
        assert dropped.compiled_plan is not None
        isub.rebuild(cache)
        assert dropped.compiled_target is None  # Isub's direction released
        assert dropped.compiled_plan is not None  # Isuper still holds it
        isuper.rebuild(cache)
        assert dropped.compiled_plan is None
        # The surviving entry keeps its compiled state through both rebuilds.
        assert kept.compiled_target is not None
        assert kept.compiled_plan is not None


def live_compiled_counts() -> tuple[int, int]:
    """Process-wide live (CompiledTarget, CompiledQueryPlan) counts.

    Other fixtures legitimately hold compiled objects, so the lifecycle
    tests assert on *deltas* of these counts, not absolutes.
    """
    gc.collect()
    targets = plans = 0
    for obj in gc.get_objects():
        if isinstance(obj, CompiledTarget):
            targets += 1
        elif isinstance(obj, CompiledQueryPlan):
            plans += 1
    return targets, plans


class TestLifecycleRegression:
    def test_steady_state_across_1k_insert_evict_cycles(self):
        """Churning 1000 entries through a capacity-8 index pair must not
        accumulate compiled objects or dense-slot positions."""
        capacity = 8
        targets_before, plans_before = live_compiled_counts()
        cache = QueryCache()
        isub = SubgraphQueryIndex()
        isuper = SupergraphQueryIndex()
        rng = random.Random(99)
        live: list[int] = []
        for cycle in range(1000):
            graph = random_labeled_graph(rng, rng.randint(2, 4), 0.5, name=f"q{cycle}")
            entry = cache.add(graph, EXTRACTOR.extract(graph), frozenset())
            isub.add(entry)
            isuper.add(entry)
            live.append(entry.entry_id)
            if len(live) > capacity:
                victim = live.pop(0)
                isub.remove(victim)
                isuper.remove(victim)
                cache.remove(victim)
        assert len(isub) == len(isuper) == len(cache) == capacity
        # The dense-slot allocators recycle freed positions: their footprint
        # is the live capacity, not the 1000-entry history.
        assert len(isub._slots._order) <= capacity + 1
        assert len(isuper._slots._order) <= capacity + 1
        # Only the live entries still hold compiled objects.
        targets_after, plans_after = live_compiled_counts()
        assert targets_after - targets_before <= capacity
        assert plans_after - plans_before <= capacity

    def test_steady_state_across_1k_shard_handoffs(self):
        """The same 1k churn routed through delta-fed shard replicas.

        Every insert delta carries the compiled payloads and every evict
        delta must release them on the replica, so the number of live
        compiled objects stays bounded by the cache capacity no matter how
        many entries were handed to (and taken back from) the shards.
        """
        from repro.core.shard import DeltaLog, QueryIndexShard, ShardEntry, shard_of_key
        from repro.features.canonical import canonical_graph_key
        from repro.isomorphism.compiled import compile_query_plan, compile_target

        capacity = 8
        num_shards = 3
        targets_before, plans_before = live_compiled_counts()
        cache = QueryCache()
        log = DeltaLog()
        shards = [QueryIndexShard(shard_id) for shard_id in range(num_shards)]
        owners: dict[int, int] = {}
        rng = random.Random(41)
        live: list[int] = []
        for cycle in range(1000):
            graph = random_labeled_graph(rng, rng.randint(2, 4), 0.5, name=f"s{cycle}")
            entry = cache.add(graph, EXTRACTOR.extract(graph), frozenset())
            entry.compiled_target = compile_target(graph)
            entry.compiled_plan = compile_query_plan(graph)
            shard_id = shard_of_key(canonical_graph_key(graph), num_shards)
            owners[entry.entry_id] = shard_id
            log.append_insert(
                shard_id,
                ShardEntry(
                    entry_id=entry.entry_id,
                    graph=graph,
                    features=entry.features,
                    compiled_target=entry.compiled_target,
                    compiled_plan=entry.compiled_plan,
                ),
            )
            live.append(entry.entry_id)
            if len(live) > capacity:
                victim = live.pop(0)
                cache.remove(victim)
                log.append_evict(owners.pop(victim), victim)
            for shard in shards:
                shard.catch_up(log)
            if cycle % 100 == 99:
                log.append_flush()
                log.compact(min(shard.applied_version for shard in shards))
        # Final sync: once every replica acknowledged the whole log, the
        # compacted log is exactly the live entries.
        log.append_flush()
        for shard in shards:
            shard.catch_up(log)
        log.compact(min(shard.applied_version for shard in shards))
        assert sum(len(shard) for shard in shards) == len(cache) == capacity
        assert len(log) <= capacity
        targets_after, plans_after = live_compiled_counts()
        assert targets_after - targets_before <= capacity
        assert plans_after - plans_before <= capacity

    def test_maintenance_flush_keeps_compiled_state_bounded(self, small_synthetic):
        """The engine's own windowed eviction path must release victims."""
        database = small_synthetic
        spec = WorkloadSpec(name="uniform", seed=3)
        pool = QueryGenerator(database, spec).generate(10)
        rng = random.Random(4)
        targets_before, _ = live_compiled_counts()
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ(method, cache_size=6, window_size=2)
        engine.build_index(database)
        for _ in range(60):
            engine.query(rng.choice(pool))
        targets_after, _ = live_compiled_counts()
        # cache entries + dataset graphs (compiled lazily by the base
        # method's verification) are the only legitimate holders
        assert targets_after - targets_before <= len(engine.cache) + len(database)
