"""Tests for exhaustive simple-path enumeration and path features."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.features import enumerate_simple_paths, path_features

from .conftest import labeled_graphs, make_clique, make_cycle_graph, make_path_graph, make_star_graph


def count_paths(graph, max_length, min_length=0):
    return sum(1 for _ in enumerate_simple_paths(graph, max_length, min_length=min_length))


class TestEnumeration:
    def test_single_vertices_are_zero_length_paths(self):
        graph = make_path_graph("ABC")
        paths = list(enumerate_simple_paths(graph, 0))
        assert sorted(paths) == [(0,), (1,), (2,)]

    def test_path_graph_counts(self):
        # A path graph with 4 vertices has: 4 vertices, 3 edges, 2 paths of
        # length 2, 1 path of length 3.
        graph = make_path_graph("ABCD")
        assert count_paths(graph, 1) == 4 + 3
        assert count_paths(graph, 2) == 4 + 3 + 2
        assert count_paths(graph, 3) == 4 + 3 + 2 + 1

    def test_each_undirected_path_once(self):
        graph = make_cycle_graph("ABC")
        paths = set(enumerate_simple_paths(graph, 2, min_length=1))
        assert len(paths) == 6  # 3 edges + 3 two-edge paths
        # A path and its reverse are the same undirected path: only one of
        # the two directions may be reported.
        for path in paths:
            assert tuple(reversed(path)) not in paths or len(path) == 1

    def test_triangle_counts(self):
        # Triangle: 3 vertices, 3 edges, 3 paths of length 2.
        graph = make_cycle_graph("ABC")
        assert count_paths(graph, 2) == 3 + 3 + 3

    def test_min_length_excludes_short_paths(self):
        graph = make_path_graph("ABCD")
        assert count_paths(graph, 3, min_length=2) == 2 + 1

    def test_invalid_lengths(self):
        graph = make_path_graph("AB")
        with pytest.raises(ValueError):
            list(enumerate_simple_paths(graph, -1))
        with pytest.raises(ValueError):
            list(enumerate_simple_paths(graph, 2, min_length=-2))

    @settings(max_examples=30, deadline=None)
    @given(labeled_graphs(max_vertices=6))
    def test_paths_are_simple_and_within_bounds(self, graph):
        for path in enumerate_simple_paths(graph, 3):
            assert 1 <= len(path) <= 4
            assert len(set(path)) == len(path)
            for u, v in zip(path, path[1:]):
                assert graph.has_edge(u, v)


class TestPathFeatures:
    def test_counts_on_known_graph(self):
        features = path_features(make_path_graph("ABA"), max_length=2)
        by_code = {code: info.count for code, info in features.items()}
        # Features: single labels A (x2), B (x1); edges A-B (x2); path A-B-A (x1).
        sep = "\x1f"
        assert by_code[f"A"] == 2
        assert by_code[f"B"] == 1
        assert by_code[f"A{sep}B"] == 2
        assert by_code[f"A{sep}B{sep}A"] == 1

    def test_locations_cover_occurrence_vertices(self):
        features = path_features(make_star_graph("A", "BB"), max_length=1)
        sep = "\x1f"
        info = features[f"A{sep}B"]
        assert info.count == 2
        assert info.vertices == {0, 1, 2}

    def test_clique_feature_counts(self):
        features = path_features(make_clique("AAA"), max_length=1)
        sep = "\x1f"
        assert features["A"].count == 3
        assert features[f"A{sep}A"].count == 3

    @settings(max_examples=25, deadline=None)
    @given(labeled_graphs(max_vertices=6))
    def test_feature_counts_match_enumeration(self, graph):
        features = path_features(graph, max_length=2)
        total = sum(info.count for info in features.values())
        assert total == count_paths(graph, 2)

    @settings(max_examples=25, deadline=None)
    @given(labeled_graphs(max_vertices=6))
    def test_locations_are_subsets_of_vertices(self, graph):
        for info in path_features(graph, max_length=2).values():
            assert info.vertices <= set(graph.vertices())
