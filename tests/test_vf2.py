"""Tests for the VF2-style subgraph isomorphism matcher.

Correctness is checked on hand-built cases and, property-based, against the
``networkx`` matcher used as an oracle (networkx is a test-only dependency).
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings

from repro.graphs import LabeledGraph
from repro.isomorphism import (
    VF2Matcher,
    are_isomorphic,
    count_subgraph_embeddings,
    find_subgraph_embedding,
    is_subgraph_isomorphic,
)

from .conftest import (
    graph_and_subgraph,
    labeled_graphs,
    make_clique,
    make_cycle_graph,
    make_path_graph,
    make_star_graph,
)


def to_networkx(graph: LabeledGraph) -> nx.Graph:
    result = nx.Graph()
    for vertex in graph.vertices():
        result.add_node(vertex, label=graph.label(vertex))
    result.add_edges_from(graph.edges())
    return result


def networkx_is_subgraph(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    """Oracle: non-induced, label-preserving subgraph isomorphism."""
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        to_networkx(target),
        to_networkx(pattern),
        node_match=lambda a, b: a["label"] == b["label"],
    )
    return matcher.subgraph_is_monomorphic()


class TestKnownCases:
    def test_path_in_cycle(self):
        assert is_subgraph_isomorphic(make_path_graph("ABC"), make_cycle_graph("ABC"))

    def test_cycle_not_in_path(self):
        assert not is_subgraph_isomorphic(make_cycle_graph("ABC"), make_path_graph("ABC"))

    def test_label_mismatch(self):
        assert not is_subgraph_isomorphic(make_path_graph("AZ"), make_cycle_graph("ABC"))

    def test_triangle_in_k4(self):
        assert is_subgraph_isomorphic(make_cycle_graph("AAA"), make_clique("AAAA"))

    def test_star_needs_degree(self):
        star = make_star_graph("A", "BBB")
        assert not is_subgraph_isomorphic(star, make_path_graph("BAB"))
        bigger_star = make_star_graph("A", "BBBB")
        assert is_subgraph_isomorphic(star, bigger_star)

    def test_empty_pattern_matches_everything(self):
        assert is_subgraph_isomorphic(LabeledGraph(), make_path_graph("AB"))

    def test_pattern_larger_than_target(self):
        assert not is_subgraph_isomorphic(make_path_graph("ABCD"), make_path_graph("AB"))

    def test_disconnected_pattern(self):
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "C")
        target = make_path_graph("ABC")
        assert is_subgraph_isomorphic(pattern, target)
        pattern.add_vertex(2, "Z")
        assert not is_subgraph_isomorphic(pattern, target)

    def test_embedding_is_valid(self):
        pattern = make_path_graph("ABC")
        target = make_cycle_graph("ABCD")
        embedding = find_subgraph_embedding(pattern, target)
        assert embedding is not None
        assert len(set(embedding.values())) == pattern.num_vertices
        for u, v in pattern.edges():
            assert target.has_edge(embedding[u], embedding[v])
        for vertex in pattern.vertices():
            assert pattern.label(vertex) == target.label(embedding[vertex])

    def test_no_embedding_returns_none(self):
        assert find_subgraph_embedding(make_cycle_graph("AAA"), make_path_graph("AAA")) is None

    def test_count_embeddings_path_in_triangle(self):
        # A labelled A-A path embeds in an all-A triangle 6 times (3 edges x 2
        # directions).
        assert count_subgraph_embeddings(make_path_graph("AA"), make_cycle_graph("AAA")) == 6

    def test_count_embeddings_with_limit(self):
        count = count_subgraph_embeddings(
            make_path_graph("AA"), make_cycle_graph("AAA"), limit=2
        )
        assert count == 2

    def test_iter_matches_limit_zero(self):
        matcher = VF2Matcher(make_path_graph("AA"), make_cycle_graph("AAA"))
        assert list(matcher.iter_matches(limit=0)) == []

    def test_induced_semantics(self):
        # An induced A-A-A path does not exist inside an all-A triangle.
        path = make_path_graph("AAA")
        triangle = make_cycle_graph("AAA")
        assert is_subgraph_isomorphic(path, triangle, induced=False)
        assert not is_subgraph_isomorphic(path, triangle, induced=True)


class TestIsomorphism:
    def test_same_graph_relabeled(self):
        graph = make_cycle_graph("ABCD")
        other = LabeledGraph()
        for vertex, label in [(10, "C"), (11, "D"), (12, "A"), (13, "B")]:
            other.add_vertex(vertex, label)
        other.add_edge(12, 13)
        other.add_edge(13, 10)
        other.add_edge(10, 11)
        other.add_edge(11, 12)
        assert are_isomorphic(graph, other)

    def test_different_sizes(self):
        assert not are_isomorphic(make_path_graph("AB"), make_path_graph("ABC"))

    def test_same_size_different_structure(self):
        assert not are_isomorphic(make_path_graph("AAAA"), make_star_graph("A", "AAA"))

    def test_different_labels(self):
        assert not are_isomorphic(make_path_graph("AAB"), make_path_graph("ABB"))


class TestAgainstNetworkxOracle:
    @settings(max_examples=60, deadline=None)
    @given(labeled_graphs(max_vertices=5), labeled_graphs(max_vertices=7))
    def test_random_pairs_match_oracle(self, pattern, target):
        assert is_subgraph_isomorphic(pattern, target) == networkx_is_subgraph(
            pattern, target
        )

    @settings(max_examples=60, deadline=None)
    @given(graph_and_subgraph(max_vertices=8))
    def test_true_subgraphs_always_found(self, pair):
        graph, subgraph = pair
        assert is_subgraph_isomorphic(subgraph, graph)

    @settings(max_examples=40, deadline=None)
    @given(labeled_graphs(max_vertices=6))
    def test_every_graph_contains_itself(self, graph):
        assert is_subgraph_isomorphic(graph, graph)
        assert are_isomorphic(graph, graph.relabeled())
