"""Tests for the popularity samplers and the query workload generator."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.graphs import is_connected
from repro.workloads import (
    DEFAULT_QUERY_SIZES,
    DriftingZipfSampler,
    QueryGenerator,
    UniformSampler,
    WorkloadSpec,
    ZipfSampler,
    create_sampler,
    drifting_stream,
    standard_workloads,
)

from .conftest import make_path_graph
from repro.datasets import load_dataset


class TestSamplers:
    def test_uniform_probabilities(self):
        sampler = UniformSampler(4)
        assert sampler.probability(0) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            sampler.probability(4)

    def test_uniform_sampling_range(self):
        sampler = UniformSampler(5)
        rng = random.Random(1)
        assert all(0 <= sampler.sample(rng) < 5 for _ in range(200))

    def test_zipf_probabilities_decreasing_and_normalised(self):
        sampler = ZipfSampler(10, alpha=1.4)
        probabilities = [sampler.probability(rank) for rank in range(10)]
        assert probabilities == sorted(probabilities, reverse=True)
        assert sum(probabilities) == pytest.approx(1.0)

    def test_zipf_follows_power_law(self):
        sampler = ZipfSampler(100, alpha=2.0)
        # p(1)/p(2) should be (2/1)^alpha = 4.
        assert sampler.probability(0) / sampler.probability(1) == pytest.approx(4.0)

    def test_zipf_skew_effect_on_samples(self):
        rng = random.Random(5)
        weak = ZipfSampler(50, alpha=1.1)
        strong = ZipfSampler(50, alpha=2.4)
        weak_top = sum(1 for _ in range(2000) if weak.sample(rng) == 0)
        strong_top = sum(1 for _ in range(2000) if strong.sample(rng) == 0)
        assert strong_top > weak_top

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, alpha=0)
        with pytest.raises(ValueError):
            UniformSampler(0)

    def test_create_sampler(self):
        assert isinstance(create_sampler("uniform", 3), UniformSampler)
        assert isinstance(create_sampler("uni", 3), UniformSampler)
        assert isinstance(create_sampler("zipf", 3, alpha=2.0), ZipfSampler)
        with pytest.raises(ValueError):
            create_sampler("gaussian", 3)


class TestDriftingZipf:
    def test_alpha_drift_sharpens_the_distribution(self):
        sampler = DriftingZipfSampler(50, alpha=1.1, alpha_end=2.4, drift_steps=100)
        p_start = sampler.probability(0)
        rng = random.Random(3)
        for _ in range(100):
            sampler.sample(rng)
        # After the drift window the exponent sits at alpha_end, so the top
        # rank concentrates more mass than it did at the start.
        assert sampler.probability(0) > p_start

    def test_rotation_moves_the_hot_set(self):
        sampler = DriftingZipfSampler(20, alpha=2.0, rotate_every=10, rotate_stride=3)
        assert sampler.probability(0) > sampler.probability(3)
        rng = random.Random(4)
        for _ in range(10):
            sampler.sample(rng)
        # One rotation later the most popular identity is rank 3; the
        # popularity *shape* is still the same Zipf.
        assert sampler.probability(3) > sampler.probability(0)
        assert sampler.probability(3) == pytest.approx(
            ZipfSampler(20, alpha=2.0).probability(0)
        )

    def test_no_drift_arguments_means_static_zipf(self):
        drifting = DriftingZipfSampler(30, alpha=1.4)
        static = ZipfSampler(30, alpha=1.4)
        rng_a, rng_b = random.Random(11), random.Random(11)
        draws = [drifting.sample(rng_a) for _ in range(50)]
        reference = [static.sample(rng_b) for _ in range(50)]
        assert draws == reference

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="drift_steps"):
            DriftingZipfSampler(10, alpha_end=2.0)
        with pytest.raises(ValueError, match="drift_steps"):
            DriftingZipfSampler(10, alpha_end=2.0, drift_steps=0)
        with pytest.raises(ValueError, match="rotate_every"):
            DriftingZipfSampler(10, rotate_every=0)
        with pytest.raises(ValueError, match="resolution"):
            DriftingZipfSampler(10, resolution=0)

    def test_create_sampler_drift_kinds(self):
        for kind in ("zipf-drift", "drifting-zipf"):
            sampler = create_sampler(
                kind, 10, alpha=1.2, alpha_end=2.0, drift_steps=64, rotate_every=8
            )
            assert isinstance(sampler, DriftingZipfSampler)
            assert sampler.alpha_end == 2.0
        with pytest.raises(ValueError, match="drift"):
            create_sampler("zipf", 10, rotate_every=8)
        with pytest.raises(ValueError, match="drift"):
            create_sampler("uniform", 10, alpha_end=2.0)

    def test_drifting_stream_rotates_the_popular_items(self):
        pool = [make_path_graph("AB") for _ in range(20)]
        stream = drifting_stream(
            pool, 400, alpha=2.0, rotate_every=100, rotate_stride=10, seed=13
        )
        assert len(stream) == 400
        assert all(graph in pool for graph in stream)
        # Deterministic for a given seed.
        again = drifting_stream(
            pool, 400, alpha=2.0, rotate_every=100, rotate_stride=10, seed=13
        )
        assert [id(g) for g in stream] == [id(g) for g in again]
        # The early hot item differs from the late one: rotation moved the
        # popularity peak while the stream ran.
        early = Counter(id(g) for g in stream[:100]).most_common(1)[0][0]
        late = Counter(id(g) for g in stream[300:]).most_common(1)[0][0]
        assert early != late

    def test_generator_accepts_drifting_graph_distribution(self):
        database = load_dataset("synthetic", scale=0.12)
        spec = WorkloadSpec(
            name="drift",
            graph_distribution="zipf-drift",
            alpha=1.2,
            alpha_end=2.2,
            drift_steps=40,
            rotate_every=16,
            rotate_stride=4,
            seed=3,
        )
        queries = QueryGenerator(database, spec).generate(20)
        assert len(queries) == 20
        assert all(is_connected(query) for query in queries)
        description = spec.describe()
        assert description["alpha_end"] == 2.2
        assert description["rotate_every"] == 16
        assert spec.drift_kwargs() == {
            "alpha_end": 2.2,
            "drift_steps": 40,
            "rotate_every": 16,
            "rotate_stride": 4,
        }


class TestWorkloadSpec:
    def test_standard_workloads(self):
        names = [spec.name for spec in standard_workloads()]
        assert names == ["uni-uni", "uni-zipf", "zipf-uni", "zipf-zipf"]

    def test_describe(self):
        spec = WorkloadSpec(name="zipf-uni", graph_distribution="zipf", alpha=2.0)
        description = spec.describe()
        assert description["name"] == "zipf-uni"
        assert description["alpha"] == 2.0
        assert description["query_sizes"] == list(DEFAULT_QUERY_SIZES)


class TestQueryGenerator:
    @pytest.fixture(scope="class")
    def database(self):
        return load_dataset("aids", scale=0.05)

    def test_empty_database_rejected(self):
        from repro.graphs import GraphDatabase

        with pytest.raises(ValueError):
            QueryGenerator(GraphDatabase(), WorkloadSpec(name="uni-uni"))

    def test_query_sizes_come_from_spec(self, database):
        spec = WorkloadSpec(name="uni-uni", query_sizes=(4, 8), seed=1)
        queries = QueryGenerator(database, spec).generate(30)
        assert {query.num_edges for query in queries} <= {4, 8}

    def test_queries_are_connected_and_named(self, database):
        spec = WorkloadSpec(name="zipf-zipf", graph_distribution="zipf", node_distribution="zipf")
        queries = QueryGenerator(database, spec).generate(20)
        for index, query in enumerate(queries):
            assert is_connected(query)
            assert query.name == f"q{index}_e{query.num_edges}"
            assert query.num_edges >= 1

    def test_queries_are_subgraphs_of_some_dataset_graph(self, database):
        from repro.isomorphism import is_subgraph_isomorphic

        spec = WorkloadSpec(name="uni-uni", seed=9, query_sizes=(4, 8))
        queries = QueryGenerator(database, spec).generate(10)
        for query in queries:
            assert any(
                is_subgraph_isomorphic(query, graph) for graph in database.graphs()
            ), query.name

    def test_determinism(self, database):
        spec = WorkloadSpec(name="zipf-uni", graph_distribution="zipf", seed=13)
        first = QueryGenerator(database, spec).generate(15)
        second = QueryGenerator(database, spec).generate(15)
        for a, b in zip(first, second):
            assert a == b

    def test_different_seeds_differ(self, database):
        base = WorkloadSpec(name="uni-uni", seed=1)
        other = WorkloadSpec(name="uni-uni", seed=2)
        first = QueryGenerator(database, base).generate(10)
        second = QueryGenerator(database, other).generate(10)
        assert any(a != b for a, b in zip(first, second))

    def test_zipf_graph_selection_is_skewed(self):
        # With a strongly skewed graph distribution most queries come from a
        # few graphs, which shows up as many repeated (isomorphic) queries.
        database = load_dataset("aids", scale=0.05)
        spec = WorkloadSpec(
            name="zipf-zipf",
            graph_distribution="zipf",
            node_distribution="zipf",
            alpha=2.4,
            query_sizes=(4,),
            seed=3,
        )
        queries = QueryGenerator(database, spec).generate(40)
        signatures = Counter(query.invariant_signature() for query in queries)
        assert signatures.most_common(1)[0][1] >= 3

    def test_tiny_graph_fallback(self):
        from repro.graphs import GraphDatabase

        database = GraphDatabase.from_graphs([make_path_graph("AB", name="tiny")])
        spec = WorkloadSpec(name="uni-uni", query_sizes=(20,), seed=4)
        queries = QueryGenerator(database, spec).generate(3)
        # The single dataset graph has only one edge; the generator falls
        # back to the largest extractable query instead of failing.
        assert all(query.num_edges == 1 for query in queries)
