"""Tests for connected-subset / spanning-tree / tree-subgraph enumeration."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings

from repro.features import (
    enumerate_connected_subsets,
    enumerate_spanning_trees,
    enumerate_tree_subgraphs,
    tree_feature_codes,
    tree_feature_counts,
)
from repro.graphs import LabeledGraph

from .conftest import labeled_graphs, make_clique, make_cycle_graph, make_path_graph, make_star_graph


def brute_force_connected_subsets(graph, max_size, min_size=1):
    """Reference implementation: test connectivity of every vertex subset."""
    vertices = list(graph.vertices())
    found = set()
    for size in range(min_size, max_size + 1):
        for subset in combinations(vertices, size):
            sub = graph.subgraph(subset)
            # connectivity check via BFS on the induced subgraph
            start = subset[0]
            seen = {start}
            stack = [start]
            while stack:
                vertex = stack.pop()
                for neighbor in sub.neighbors(vertex):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            if len(seen) == size:
                found.add(frozenset(subset))
    return found


class TestConnectedSubsets:
    def test_path_graph_subsets(self):
        graph = make_path_graph("ABCD")
        subsets = set(enumerate_connected_subsets(graph, 2))
        assert subsets == {
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
            frozenset({3}),
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        }

    def test_no_duplicates(self):
        graph = make_clique("AAAA")
        subsets = list(enumerate_connected_subsets(graph, 3))
        assert len(subsets) == len(set(subsets))

    def test_invalid_sizes(self):
        graph = make_path_graph("AB")
        with pytest.raises(ValueError):
            list(enumerate_connected_subsets(graph, 0))
        with pytest.raises(ValueError):
            list(enumerate_connected_subsets(graph, 2, min_size=0))

    @settings(max_examples=25, deadline=None)
    @given(labeled_graphs(max_vertices=6))
    def test_matches_brute_force(self, graph):
        enumerated = set(enumerate_connected_subsets(graph, 4))
        assert enumerated == brute_force_connected_subsets(graph, 4)

    @settings(max_examples=25, deadline=None)
    @given(labeled_graphs(max_vertices=7))
    def test_unique_enumeration(self, graph):
        subsets = list(enumerate_connected_subsets(graph, 3))
        assert len(subsets) == len(set(subsets))


class TestSpanningTrees:
    def test_cycle_has_n_spanning_trees(self):
        graph = make_cycle_graph("ABCD")
        trees = list(enumerate_spanning_trees(graph, frozenset(graph.vertices())))
        assert len(trees) == 4  # a cycle of length n has n spanning trees

    def test_tree_has_one_spanning_tree(self):
        graph = make_star_graph("A", "BBB")
        trees = list(enumerate_spanning_trees(graph, frozenset(graph.vertices())))
        assert len(trees) == 1

    def test_single_vertex(self):
        graph = make_path_graph("A")
        assert list(enumerate_spanning_trees(graph, frozenset({0}))) == [()]

    def test_disconnected_subset_has_none(self):
        graph = make_path_graph("ABC")
        assert list(enumerate_spanning_trees(graph, frozenset({0, 2}))) == []

    def test_k4_has_sixteen_spanning_trees(self):
        # Cayley's formula: n^(n-2) = 16 for n=4.
        graph = make_clique("AAAA")
        trees = list(enumerate_spanning_trees(graph, frozenset(graph.vertices())))
        assert len(trees) == 16


class TestTreeSubgraphs:
    def test_every_enumerated_subgraph_is_a_tree(self):
        graph = make_clique("ABCA")
        for tree in enumerate_tree_subgraphs(graph, 4):
            assert tree.num_edges == tree.num_vertices - 1

    def test_counts_on_triangle(self):
        # Triangle tree subgraphs: 3 singletons, 3 edges, 3 two-edge paths.
        counts = tree_feature_counts(make_cycle_graph("AAA"), max_size=3)
        assert sum(counts.values()) == 9

    def test_codes_are_subset_of_counts(self):
        graph = make_cycle_graph("ABCD")
        codes = tree_feature_codes(graph, max_size=3)
        counts = tree_feature_counts(graph, max_size=3)
        assert codes == set(counts)

    @settings(max_examples=20, deadline=None)
    @given(labeled_graphs(max_vertices=6))
    def test_subgraph_feature_containment(self, graph):
        """Non-induced soundness: removing one edge can only shrink features."""
        edges = list(graph.edges())
        if not edges:
            return
        smaller = graph.copy()
        smaller.remove_edge(*edges[0])
        assert tree_feature_codes(smaller, 3) <= tree_feature_codes(graph, 3)

    def test_min_size_two_excludes_singletons(self):
        graph = make_path_graph("AB")
        trees = list(enumerate_tree_subgraphs(graph, 2, min_size=2))
        assert len(trees) == 1
        assert trees[0].num_vertices == 2


class TestLabeledGraphInterop:
    def test_tree_subgraphs_preserve_labels(self):
        graph = LabeledGraph()
        for vertex, label in enumerate("XYZ"):
            graph.add_vertex(vertex, label)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        labels = set()
        for tree in enumerate_tree_subgraphs(graph, 2, min_size=2):
            labels.update(tree.label(v) for v in tree.vertices())
        assert labels == {"X", "Y", "Z"}
