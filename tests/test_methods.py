"""Cross-method tests: the filter-then-verify contract.

For every base method the filtering stage must be complete (no false
negatives: every true answer appears in the candidate set) and the
end-to-end answers must coincide with brute-force verification.  The same is
checked for supergraph queries.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import GraphDatabase
from repro.isomorphism import is_subgraph_isomorphic
from repro.methods import available_methods, create_method

from .conftest import make_cycle_graph, make_path_graph, make_star_graph, random_labeled_graph

METHOD_NAMES = ("scan", "ggsx", "grapes", "grapes6", "ctindex")


def small_database() -> GraphDatabase:
    rng = random.Random(42)
    graphs = [
        random_labeled_graph(rng, rng.randint(4, 9), 0.25, labels="ABC", name=f"g{i}")
        for i in range(12)
    ]
    graphs.append(make_cycle_graph("ABC", name="tri"))
    graphs.append(make_path_graph("ABCA", name="p4"))
    graphs.append(make_star_graph("A", "BBC", name="star"))
    return GraphDatabase.from_graphs(graphs, name="small")


def small_queries() -> list:
    rng = random.Random(7)
    queries = [
        make_path_graph("AB", name="q_ab"),
        make_path_graph("ABC", name="q_abc"),
        make_cycle_graph("ABC", name="q_tri"),
        make_star_graph("A", "BB", name="q_star"),
    ]
    queries.extend(
        random_labeled_graph(rng, rng.randint(2, 5), 0.3, labels="ABC", name=f"q{i}")
        for i in range(6)
    )
    return queries


def brute_force_subgraph_answers(database, query):
    return {gid for gid, graph in database.items() if is_subgraph_isomorphic(query, graph)}


def brute_force_supergraph_answers(database, query):
    return {gid for gid, graph in database.items() if is_subgraph_isomorphic(graph, query)}


@pytest.fixture(scope="module")
def database():
    return small_database()


@pytest.fixture(scope="module", params=METHOD_NAMES)
def built_method(request, database):
    method = create_method(request.param, max_path_length=3) if request.param in (
        "ggsx",
        "grapes",
        "grapes6",
    ) else create_method(request.param)
    method.build_index(database)
    return method


class TestFactory:
    def test_available_methods(self):
        assert set(available_methods()) == set(METHOD_NAMES)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            create_method("gindex")

    def test_query_before_index_fails(self):
        method = create_method("ggsx")
        with pytest.raises(RuntimeError):
            method.query(make_path_graph("AB"))


class TestSubgraphQueries:
    def test_no_false_negatives_in_candidates(self, built_method, database):
        for query in small_queries():
            truth = brute_force_subgraph_answers(database, query)
            candidates = built_method.filter_candidates(query)
            assert truth <= set(candidates), built_method.name

    def test_answers_match_brute_force(self, built_method, database):
        for query in small_queries():
            truth = brute_force_subgraph_answers(database, query)
            result = built_method.query(query)
            assert result.answers == truth, built_method.name

    def test_result_accounting(self, built_method):
        query = make_path_graph("ABC", name="acc")
        result = built_method.query(query)
        assert result.num_candidates >= result.num_answers
        assert result.num_false_positives == result.num_candidates - result.num_answers
        assert result.num_isomorphism_tests <= result.num_candidates
        assert result.total_seconds >= result.verify_seconds

    def test_index_size_reported(self, built_method):
        assert built_method.index_size_bytes() >= 0


class TestSupergraphQueries:
    def test_no_false_negatives_in_candidates(self, built_method, database):
        for query in small_queries():
            truth = brute_force_supergraph_answers(database, query)
            candidates = built_method.filter_supergraph_candidates(query)
            assert truth <= set(candidates), built_method.name

    def test_answers_match_brute_force(self, built_method, database):
        for query in small_queries():
            truth = brute_force_supergraph_answers(database, query)
            result = built_method.supergraph_query(query)
            assert result.answers == truth, built_method.name
