"""Tests for the batched parallel query execution subsystem.

The contract under test: for every backend and worker count the batch
executor must be *indistinguishable* from the sequential engine loop —
same answers, same per-query accounting, same cache and replacement state
afterwards.  Parallelism is an implementation detail of the verification
stage, never of the semantics.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IGQ, BatchExecutor
from repro.core.batch import FeatureMemo, graph_signature
from repro.graphs import GraphDatabase, LabeledGraph
from repro.methods import GGSXMethod, GrapesMethod, ScanMethod

from .conftest import make_cycle_graph, make_path_graph, random_labeled_graph


def build_database(seed=29, count=16) -> GraphDatabase:
    rng = random.Random(seed)
    graphs = [
        random_labeled_graph(rng, rng.randint(5, 10), 0.25, labels="ABC", name=f"g{i}")
        for i in range(count)
    ]
    graphs.append(make_cycle_graph("ABC", name="tri"))
    return GraphDatabase.from_graphs(graphs)


def make_stream(seed=5, distinct=12, total=30):
    """A stream with repeats: the memo and the exact-hit path get exercised."""
    rng = random.Random(seed)
    pool = [
        random_labeled_graph(rng, rng.randint(2, 6), 0.3, labels="ABC", name=f"q{i}")
        for i in range(distinct)
    ]
    return [
        pool[rng.randrange(distinct)].copy(name=f"s{i}") for i in range(total)
    ]


def fresh_engine(database, method_factory=None) -> IGQ:
    method = method_factory() if method_factory else GGSXMethod(max_path_length=3)
    engine = IGQ(method, cache_size=8, window_size=3)
    engine.build_index(database)
    return engine


def cache_state(engine: IGQ):
    """Everything the replacement policy can see, in comparable form."""
    return sorted(
        (
            entry.entry_id,
            entry.graph.name,
            frozenset(entry.answer),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )


class TestConstruction:
    def test_rejects_unknown_backend(self):
        engine = fresh_engine(build_database())
        with pytest.raises(ValueError):
            BatchExecutor(engine, backend="gpu")

    def test_rejects_bad_worker_count(self):
        engine = fresh_engine(build_database())
        with pytest.raises(ValueError):
            BatchExecutor(engine, num_workers=0)

    def test_requires_built_index(self):
        engine = IGQ(GGSXMethod(max_path_length=2))
        with pytest.raises(RuntimeError):
            BatchExecutor(engine)


class TestSequentialEquivalence:
    def test_empty_batch(self):
        engine = fresh_engine(build_database())
        assert engine.run_batch([]) == []

    def test_single_query_batch_matches_query(self):
        database = build_database()
        query = make_path_graph("ABC", name="single")
        loop_engine = fresh_engine(database)
        expected = loop_engine.query(query)
        batch_engine = fresh_engine(database)
        [result] = batch_engine.run_batch([query])
        assert set(result.answers) == set(expected.answers)
        assert result.num_isomorphism_tests == expected.num_isomorphism_tests
        assert cache_state(batch_engine) == cache_state(loop_engine)

    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_backends_identical_to_sequential_loop(self, backend):
        database = build_database()
        stream = make_stream()
        loop_engine = fresh_engine(database)
        expected = [loop_engine.query(query) for query in stream]

        batch_engine = fresh_engine(database)
        results = batch_engine.run_batch(stream, num_workers=2, backend=backend)

        assert len(results) == len(expected)
        for got, want in zip(results, expected):
            assert set(got.answers) == set(want.answers), got.query_name
            assert set(got.candidates) == set(want.candidates)
            assert got.num_isomorphism_tests == want.num_isomorphism_tests
            assert got.exact_hit == want.exact_hit
        assert cache_state(batch_engine) == cache_state(loop_engine)
        assert len(batch_engine.cache) == len(loop_engine.cache)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_verifier_stats_invariant_after_parallel_batch(self, backend):
        """Worker-side tests fold back into the parent verifier completely:
        the per-test sample list stays in sync with the counters."""
        database = build_database()
        engine = fresh_engine(database)
        engine.run_batch(make_stream(total=20), num_workers=2, backend=backend)
        stats = engine.method.verifier.stats
        assert stats.tests == len(stats.per_test_seconds)
        assert stats.positives + stats.negatives == stats.tests
        assert abs(sum(stats.per_test_seconds) - stats.total_seconds) < 1e-9

    def test_grapes_parallel_verification_matches(self):
        """Grapes verifies through location regions; the worker-side snapshot
        must carry them."""
        database = build_database()
        stream = make_stream(total=15)
        loop_engine = fresh_engine(database, lambda: GrapesMethod(max_path_length=3))
        expected = [loop_engine.query(query) for query in stream]
        batch_engine = fresh_engine(database, lambda: GrapesMethod(max_path_length=3))
        results = batch_engine.run_batch(stream, num_workers=2, backend="process")
        for got, want in zip(results, expected):
            assert set(got.answers) == set(want.answers), got.query_name
            assert got.num_isomorphism_tests == want.num_isomorphism_tests

    def test_plain_method_batch(self):
        """The executor also drives a bare method (no iGQ index)."""
        database = build_database()
        stream = make_stream(total=10)
        method = ScanMethod()
        method.build_index(database)
        expected = [method.query(query) for query in stream]
        with BatchExecutor(method, num_workers=2, backend="thread") as executor:
            results = executor.run_batch(stream)
        for got, want in zip(results, expected):
            assert set(got.answers) == set(want.answers)
            assert set(got.candidates) == set(want.candidates)


class TestPipelinedPlanner:
    """The pipelined planner must be invisible: answers, accounting, cache
    and replacement state — and even the containment-test statistics of the
    iGQ verifier — identical to the sequential loop, including across window
    flushes (which force speculative plans to be discarded and redone)."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pipelined_identical_to_sequential_loop(self, backend):
        database = build_database()
        stream = make_stream(total=40)
        loop_engine = fresh_engine(database)
        expected = [loop_engine.query(query) for query in stream]

        engine = fresh_engine(database)
        with BatchExecutor(engine, num_workers=2, backend=backend, pipeline=True) as executor:
            results = executor.run_batch(stream)
            # The small window (3) flushes repeatedly mid-batch, so the
            # replan path must actually have been exercised.
            assert executor.stats.pipelined_plans > 0
            assert executor.stats.pipeline_replans > 0

        for got, want in zip(results, expected):
            assert set(got.answers) == set(want.answers), got.query_name
            assert set(got.candidates) == set(want.candidates)
            assert got.num_isomorphism_tests == want.num_isomorphism_tests
            assert got.exact_hit == want.exact_hit
            assert got.verification_skipped == want.verification_skipped
        assert cache_state(engine) == cache_state(loop_engine)
        got_stats = engine.igq_verifier.stats
        want_stats = loop_engine.igq_verifier.stats
        assert got_stats.tests == want_stats.tests
        assert got_stats.positives == want_stats.positives
        assert got_stats.negatives == want_stats.negatives
        assert len(got_stats.per_test_seconds) == got_stats.tests

    def test_pipeline_flag_off_matches_on(self):
        database = build_database()
        stream = make_stream(total=25)
        engines = {}
        for pipeline in (False, True):
            engine = fresh_engine(database)
            with BatchExecutor(
                engine, num_workers=2, backend="thread", pipeline=pipeline
            ) as executor:
                engines[pipeline] = (engine, executor.run_batch(stream))
        engine_off, results_off = engines[False]
        engine_on, results_on = engines[True]
        for got, want in zip(results_on, results_off):
            assert set(got.answers) == set(want.answers)
            assert got.num_isomorphism_tests == want.num_isomorphism_tests
        assert cache_state(engine_on) == cache_state(engine_off)

    def test_pipeline_inactive_without_pool(self):
        """With one worker the stream takes the plain path; results and
        state still match the sequential loop."""
        database = build_database()
        stream = make_stream(total=10)
        loop_engine = fresh_engine(database)
        expected = [loop_engine.query(query) for query in stream]
        engine = fresh_engine(database)
        with BatchExecutor(engine, num_workers=1, pipeline=True) as executor:
            assert executor.stats.pipelined_plans == 0
            results = executor.run_batch(stream)
        for got, want in zip(results, expected):
            assert set(got.answers) == set(want.answers)
        assert cache_state(engine) == cache_state(loop_engine)

    def test_pipelined_stream_yields_in_order(self):
        database = build_database()
        stream = make_stream(total=12)
        engine = fresh_engine(database)
        with BatchExecutor(engine, num_workers=2, backend="thread") as executor:
            names = [result.query_name for result in executor.run_stream(stream)]
        assert names == [query.name for query in stream]


class TestStreaming:
    def test_run_stream_yields_in_order(self):
        database = build_database()
        stream = make_stream(total=8)
        engine = fresh_engine(database)
        with BatchExecutor(engine) as executor:
            names = [result.query_name for result in executor.run_stream(stream)]
        assert names == [query.name for query in stream]


class TestFeatureMemo:
    def test_signature_detects_structural_copies(self):
        a = make_path_graph("ABC", name="one")
        b = make_path_graph("ABC", name="two")
        c = make_path_graph("ACB", name="three")
        assert graph_signature(a) == graph_signature(b)
        assert graph_signature(a) != graph_signature(c)

    def test_memo_hits_on_repeats(self):
        method = GGSXMethod(max_path_length=3)
        memo = FeatureMemo(method.extractor)
        query = make_path_graph("ABCA")
        first = memo.extract(query)
        second = memo.extract(query.copy(name="again"))
        assert first is second
        assert memo.hits == 1 and memo.misses == 1

    def test_canonical_key_catches_isomorphic_relabelings(self):
        """A relabeled (isomorphic, different vertex ids) repeat misses the
        exact-signature level but hits the canonical level (ROADMAP item)."""
        method = GGSXMethod(max_path_length=3)
        memo = FeatureMemo(method.extractor)
        query = make_path_graph("ABCA", name="orig")
        twin = query.relabeled()
        remapped = LabeledGraph(name="shifted")
        for vertex in twin.vertices():
            remapped.add_vertex(vertex + 100, twin.label(vertex))
        for u, v in twin.edges():
            remapped.add_edge(u + 100, v + 100)
        assert graph_signature(query) != graph_signature(remapped)
        first = memo.extract(query)
        second = memo.extract(remapped)
        assert first is second
        assert memo.hits == 1 and memo.canonical_hits == 1 and memo.misses == 1

    def test_canonical_twins_do_not_collide_with_distinct_graphs(self):
        method = GGSXMethod(max_path_length=3)
        memo = FeatureMemo(method.extractor)
        memo.extract(make_path_graph("ABC"))
        memo.extract(make_path_graph("ACB"))
        assert memo.misses == 2 and memo.hits == 0

    def test_executor_counts_memo_hits(self):
        database = build_database()
        stream = make_stream(distinct=4, total=12)
        engine = fresh_engine(database)
        with BatchExecutor(engine) as executor:
            executor.run_batch(stream)
            assert executor.stats.feature_memo_hits >= 8
            assert executor.stats.feature_memo_misses <= 4
