"""Tests for the :class:`~repro.service.GraphQueryService` session façade.

Four contracts:

* **Equivalence** — a mixed subgraph+supergraph stream through
  ``submit()``/``stream()`` yields byte-identical answers, hit/miss
  accounting, cache contents and replacement state to the legacy
  sequential ``engine.query()`` loop, across sequential, pipelined and
  ``shards=4`` inline/process configurations.
* **Lifecycle** — ``close()`` verifiably terminates the batch executor's
  verification pool and the engine's shard worker processes; the service
  and the standalone engine are context managers.
* **Semantics of mixed mode** — subgraph- and supergraph-typed cached
  answers never cross-pollinate (a cached subgraph answer set is not used
  to prune a supergraph query), while both types share one cache.
* **Accounting** — per-session stats partition the totals; ``stats()``
  reports cache occupancy, shard balance and executor counters, and its
  ``as_dict()`` form is JSON-serialisable.

This module runs with ``DeprecationWarning`` as error: the new API must
not touch any deprecated path.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import (
    IGQ,
    BatchConfig,
    CacheConfig,
    EngineConfig,
    ShardConfig,
    ShardedIGQ,
)
from repro.datasets.registry import load_dataset
from repro.methods import create_method
from repro.service import GraphQueryService, ServiceClosed, ServiceReport
from repro.workloads.generator import QueryGenerator, WorkloadSpec

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

CACHE = CacheConfig(size=10, window=3)


@pytest.fixture(scope="module")
def database():
    return load_dataset("synthetic", scale=0.12)


@pytest.fixture(scope="module")
def mixed_stream(database):
    """A Zipf-skewed stream of (query, mode) tasks mixing both query types."""
    spec = WorkloadSpec(
        name="zipf", graph_distribution="zipf", node_distribution="zipf",
        alpha=1.2, seed=9,
    )
    pool = QueryGenerator(database, spec).generate(12)
    rng = random.Random(17)
    tasks = []
    for _ in range(36):
        query = pool[min(int(rng.paretovariate(1.2)) - 1, len(pool) - 1)]
        mode = "supergraph" if rng.random() < 0.4 else "subgraph"
        tasks.append((query, mode))
    return tasks


def engine_fingerprint(engine, results):
    """Everything the equivalence contract compares, as one tuple."""
    answers = [tuple(sorted(map(repr, result.answers))) for result in results]
    accounting = [
        (
            result.num_isomorphism_tests,
            result.num_sub_hits,
            result.num_super_hits,
            result.exact_hit,
            result.verification_skipped,
        )
        for result in results
    ]
    cache_state = sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
            entry.tags.get("mode"),
        )
        for entry in engine.cache.entries()
    )
    igq_stats = engine.igq_verifier.stats
    method_stats = engine.method.verifier.stats
    return (
        answers,
        accounting,
        cache_state,
        (igq_stats.tests, igq_stats.positives, igq_stats.negatives),
        (method_stats.tests, method_stats.positives, method_stats.negatives),
    )


def mixed_config(**overrides):
    return EngineConfig(mode="mixed", cache=CACHE, **overrides)


def sequential_baseline(database, tasks):
    """The legacy path: one engine, a plain per-mode query() loop."""
    method = create_method("ggsx", max_path_length=3)
    engine = IGQ.from_config(method, mixed_config())
    engine.build_index(database)
    results = [engine.query(query, mode) for query, mode in tasks]
    return engine_fingerprint(engine, results)


# ----------------------------------------------------------------------
# Equivalence (the acceptance criterion)
# ----------------------------------------------------------------------
class TestMixedStreamEquivalence:
    @pytest.mark.parametrize(
        "batch,shard",
        [
            pytest.param(BatchConfig(), ShardConfig(), id="sequential"),
            pytest.param(
                BatchConfig(num_workers=2, backend="thread", pipeline=True),
                ShardConfig(),
                id="pipelined-threads",
            ),
            pytest.param(
                BatchConfig(),
                ShardConfig(shards=4, backend="inline"),
                id="shards4-inline",
            ),
            pytest.param(
                BatchConfig(),
                ShardConfig(shards=4, backend="process"),
                id="shards4-process",
            ),
        ],
    )
    def test_stream_matches_sequential_loop(self, database, mixed_stream, batch, shard):
        baseline = sequential_baseline(database, mixed_stream)
        method = create_method("ggsx", max_path_length=3)
        config = mixed_config(batch=batch, shard=shard)
        with GraphQueryService(method, config, database=database) as service:
            results = list(service.stream(mixed_stream, max_in_flight=5))
            fingerprint = engine_fingerprint(service.engine, results)
        assert fingerprint == baseline

    def test_submit_futures_match_sequential_loop(self, database, mixed_stream):
        baseline = sequential_baseline(database, mixed_stream)
        method = create_method("ggsx", max_path_length=3)
        config = mixed_config(batch=BatchConfig(num_workers=2, backend="thread"))
        with GraphQueryService(method, config, database=database, max_in_flight=8) as service:
            futures = [service.submit(query, mode) for query, mode in mixed_stream[:8]]
            futures += [service.submit(query, mode) for query, mode in mixed_stream[8:]]
            results = [future.result() for future in futures]
            fingerprint = engine_fingerprint(service.engine, results)
        assert fingerprint == baseline

    def test_results_arrive_in_submission_order(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        with GraphQueryService(method, mixed_config(), database=database) as service:
            results = list(service.stream(mixed_stream, max_in_flight=3))
        assert [r.query_name for r in results] == [q.name for q, _ in mixed_stream]


# ----------------------------------------------------------------------
# Mixed-mode semantics
# ----------------------------------------------------------------------
class TestMixedModeSemantics:
    def test_cached_answers_never_cross_modes(self, database):
        """The same query graph issued as both types: the second type must
        not see the first type's cached entry as a component hit."""
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ.from_config(
            method, EngineConfig(mode="mixed", cache=CacheConfig(size=6, window=1))
        )
        engine.build_index(database)
        query = QueryGenerator(database, WorkloadSpec(name="uni", seed=21)).generate(1)[0]
        first = engine.query(query, "subgraph")
        assert not first.exact_hit
        # The subgraph answer is cached (window=1 flushes immediately); the
        # supergraph issue of the *same graph* must not treat it as a repeat.
        second = engine.query(query, "supergraph")
        assert not second.exact_hit
        assert second.num_sub_hits == 0 and second.num_super_hits == 0
        # Same type again: now it is an exact repeat.
        third = engine.query(query, "supergraph")
        assert third.exact_hit and third.verification_skipped
        modes = sorted(entry.tags["mode"] for entry in engine.cache.entries()
                       if entry.graph.name == query.name)
        # Both flavours of the same graph coexist in the one cache (the
        # repeat is re-cached too — every processed query enters the window).
        assert set(modes) == {"subgraph", "supergraph"}

    def test_fixed_mode_engine_rejects_other_mode(self, database):
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ.from_config(method, EngineConfig(cache=CACHE))
        engine.build_index(database)
        query = QueryGenerator(database, WorkloadSpec(name="uni", seed=5)).generate(1)[0]
        with pytest.raises(RuntimeError, match="configured for 'subgraph'"):
            engine.query(query, "supergraph")

    def test_mixed_engine_requires_explicit_mode(self, database):
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ.from_config(method, mixed_config())
        engine.build_index(database)
        query = QueryGenerator(database, WorkloadSpec(name="uni", seed=5)).generate(1)[0]
        with pytest.raises(ValueError, match="mixed-mode"):
            engine.query(query)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_terminates_shard_worker_pools(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        config = mixed_config(shard=ShardConfig(shards=2, backend="process"))
        service = GraphQueryService(method, config, database=database).open()
        list(service.stream(mixed_stream[:8]))
        runtime = service.engine.shard_runtime
        pools = runtime._pools
        assert pools is not None
        workers = [proc for pool in pools for proc in pool._processes.values()]
        assert workers and all(proc.is_alive() for proc in workers)
        service.close()
        assert runtime._pools is None
        for proc in workers:
            proc.join(timeout=10)
        assert all(not proc.is_alive() for proc in workers)

    def test_close_terminates_executor_pool(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        config = mixed_config(batch=BatchConfig(num_workers=2, backend="thread"))
        service = GraphQueryService(method, config, database=database).open()
        list(service.stream(mixed_stream[:6]))
        executor = service._executor
        service.close()
        assert executor._pool is None

    def test_standalone_engine_context_manager_closes_pools(self, database):
        method = create_method("ggsx", max_path_length=3)
        config = EngineConfig(cache=CACHE, shard=ShardConfig(shards=2, backend="process"))
        queries = QueryGenerator(database, WorkloadSpec(name="uni", seed=7)).generate(6)
        with IGQ.from_config(method, config) as engine:
            assert isinstance(engine, ShardedIGQ)
            engine.build_index(database)
            for query in queries:
                engine.query(query)
            pools = engine.shard_runtime._pools
            workers = [proc for pool in pools for proc in pool._processes.values()]
            assert workers
        assert engine.shard_runtime._pools is None
        for proc in workers:
            proc.join(timeout=10)
        assert all(not proc.is_alive() for proc in workers)

    def test_plain_engine_close_is_noop_and_idempotent(self, database):
        method = create_method("ggsx", max_path_length=3)
        with IGQ.from_config(method) as engine:
            engine.close()
        engine.close()

    def test_submit_after_close_raises(self, database):
        method = create_method("ggsx", max_path_length=3)
        service = GraphQueryService(method, EngineConfig(cache=CACHE), database=database)
        service.open()
        service.close()
        query = QueryGenerator(database, WorkloadSpec(name="uni", seed=5)).generate(1)[0]
        with pytest.raises(ServiceClosed):
            service.submit(query)

    def test_submit_before_open_raises(self, database):
        method = create_method("ggsx", max_path_length=3)
        service = GraphQueryService(method, EngineConfig(cache=CACHE), database=database)
        query = QueryGenerator(database, WorkloadSpec(name="uni", seed=5)).generate(1)[0]
        with pytest.raises(ServiceClosed, match="not open"):
            service.submit(query)

    def test_close_drains_submitted_work(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        service = GraphQueryService(
            method, mixed_config(), database=database, max_in_flight=len(mixed_stream)
        ).open()
        futures = [service.submit(query, mode) for query, mode in mixed_stream[:10]]
        service.close()
        assert all(future.done() for future in futures)
        assert [f.result().query_name for f in futures] == [
            q.name for q, _ in mixed_stream[:10]
        ]

    def test_close_is_idempotent_and_reopen_rejected(self, database):
        method = create_method("ggsx", max_path_length=3)
        service = GraphQueryService(method, EngineConfig(cache=CACHE), database=database)
        service.open()
        service.close()
        service.close()
        with pytest.raises(ServiceClosed, match="reopen"):
            service.open()


# ----------------------------------------------------------------------
# Sessions and introspection
# ----------------------------------------------------------------------
class TestSessionsAndStats:
    def test_sessions_partition_the_totals(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        with GraphQueryService(method, mixed_config(), database=database) as service:
            alice = service.session("alice")
            bob = service.session("bob")
            for query, mode in mixed_stream[:10]:
                alice.query(query, mode)
            for query, mode in mixed_stream[10:16]:
                bob.query(query, mode)
            report = service.stats()
        assert report.sessions["alice"].queries == 10
        assert report.sessions["bob"].queries == 6
        assert report.totals.queries == 16
        for field in ("subgraph_queries", "supergraph_queries", "isomorphism_tests",
                      "sub_hits", "super_hits", "exact_hits"):
            assert getattr(report.totals, field) == (
                getattr(report.sessions["alice"], field)
                + getattr(report.sessions["bob"], field)
            )

    def test_session_names_are_unique(self, database):
        method = create_method("ggsx", max_path_length=3)
        with GraphQueryService(method, EngineConfig(cache=CACHE), database=database) as service:
            service.session("dup")
            with pytest.raises(ValueError, match="already exists"):
                service.session("dup")
            auto = service.session()
            assert auto.name.startswith("session-")

    def test_stats_report_shape(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        config = mixed_config(shard=ShardConfig(shards=3, backend="inline"))
        with GraphQueryService(method, config, database=database) as service:
            list(service.stream(mixed_stream))
            report = service.stats()
        assert isinstance(report, ServiceReport)
        assert report.totals.queries == len(mixed_stream)
        assert report.cache_capacity == CACHE.size
        assert report.cache_size == len(service.engine.cache)
        assert report.shards == 3
        assert sum(report.shard_balance) == report.cache_size
        assert 0.0 < report.totals.hit_rate <= 1.0
        payload = json.dumps(report.as_dict())
        restored = json.loads(payload)
        assert restored["config"]["shard"]["shards"] == 3
        assert restored["cache"]["capacity"] == CACHE.size
        assert restored["totals"]["queries"] == len(mixed_stream)

    def test_stats_report_hot_key_and_delta_log_health(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        config = mixed_config(
            shard=ShardConfig(
                shards=3, backend="inline", hot_threshold=1, rebalance_interval=2
            )
        )
        with GraphQueryService(method, config, database=database) as service:
            list(service.stream(mixed_stream))
            report = service.stats()
        assert len(report.shard_probe_load) == 3
        assert sum(report.shard_probe_load) > 0
        assert len(report.replica_counts) == 3
        assert report.replicas_live > 0
        # Delta-log health: the log advanced and reports its four fields.
        assert report.delta_log["version"] > 0
        assert report.delta_log["length"] > 0
        assert report.delta_log["floor_version"] >= 0
        assert report.delta_log["records_folded"] >= 0
        restored = json.loads(json.dumps(report.as_dict()))
        assert restored["shards"]["replica_counts"] == report.replica_counts
        assert restored["shards"]["probe_load"] == report.shard_probe_load
        assert restored["shards"]["replicas_live"] == report.replicas_live
        assert restored["shards"]["moves_applied"] == report.moves_applied
        assert restored["delta_log"] == report.delta_log

    def test_single_shard_report_has_zeroed_hot_key_fields(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        with GraphQueryService(method, mixed_config(), database=database) as service:
            list(service.stream(mixed_stream[:6]))
            service.reset_engine_stats()  # no-op on a plain engine
            report = service.stats()
        assert report.shard_probe_load == [0]
        assert report.replica_counts == [0]
        assert report.replicas_live == 0
        assert report.delta_log == {
            "length": 0, "version": 0, "floor_version": 0, "records_folded": 0,
            "bytes_reclaimed": 0,
        }

    def test_reset_engine_stats_keeps_placement(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        config = mixed_config(
            shard=ShardConfig(
                shards=3, backend="inline", hot_threshold=1, rebalance_interval=2
            )
        )
        with GraphQueryService(method, config, database=database) as service:
            list(service.stream(mixed_stream))
            before = service.stats()
            assert before.replicas_live > 0
            service.reset_engine_stats()
            after = service.stats()
        assert after.shard_probe_load == [0, 0, 0]
        assert after.moves_applied == 0
        # Replication and placement survive the counter reset.
        assert after.replicas_live == before.replicas_live
        assert after.replica_counts == before.replica_counts
        # Session accounting belongs to the service layer and is untouched.
        assert after.totals.queries == before.totals.queries

    def test_service_rejects_wrong_mode(self, database):
        method = create_method("ggsx", max_path_length=3)
        with GraphQueryService(method, EngineConfig(cache=CACHE), database=database) as service:
            query = QueryGenerator(database, WorkloadSpec(name="uni", seed=5)).generate(1)[0]
            with pytest.raises(ValueError, match="mode='mixed'"):
                service.query(query, "supergraph")

    def test_service_from_prebuilt_engine(self, database, mixed_stream):
        method = create_method("ggsx", max_path_length=3)
        engine = IGQ.from_config(method, mixed_config())
        engine.build_index(database)
        with GraphQueryService(engine=engine) as service:
            results = list(service.stream(mixed_stream[:6]))
        assert len(results) == 6
