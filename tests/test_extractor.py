"""Tests for the feature-extraction facade.

The load-bearing property for the whole filter-then-verify stack is
*anti-monotonicity*: if ``q ⊆ G`` then every feature of ``q`` appears in
``G`` at least as often.  This is what guarantees no false negatives in the
filtering stage (for the dataset index, for Isub, and for Isuper's Algorithm
2 alike), so it is tested property-based for both feature families.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.features import FeatureExtractor

from .conftest import graph_and_subgraph, make_cycle_graph, make_path_graph, make_star_graph


class TestConfiguration:
    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            FeatureExtractor(kind="wavelets")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FeatureExtractor(max_path_length=0)
        with pytest.raises(ValueError):
            FeatureExtractor(tree_max_size=0)
        with pytest.raises(ValueError):
            FeatureExtractor(cycle_max_length=2)

    def test_describe(self):
        assert FeatureExtractor(max_path_length=3).describe() == {
            "kind": "paths",
            "max_path_length": 3,
        }
        described = FeatureExtractor(
            kind=FeatureExtractor.TREES_CYCLES, tree_max_size=5, cycle_max_length=7
        ).describe()
        assert described["tree_max_size"] == 5
        assert described["cycle_max_length"] == 7


class TestPathFeatures:
    def test_counts_and_locations(self):
        extractor = FeatureExtractor(max_path_length=2)
        features = extractor.extract(make_star_graph("A", "BB"))
        assert features.counts[("A",)] == 1
        assert features.counts[("B",)] == 2
        assert features.counts[("A", "B")] == 2
        assert features.counts[("B", "A", "B")] == 1
        assert features.locations[("A", "B")] == frozenset({0, 1, 2})
        assert features.num_distinct == 4

    def test_keys_helper(self):
        extractor = FeatureExtractor(max_path_length=1)
        features = extractor.extract(make_path_graph("AB"))
        assert features.keys() == {("A",), ("B",), ("A", "B")}


class TestTreeCycleFeatures:
    def test_cycle_feature_present(self):
        extractor = FeatureExtractor(kind=FeatureExtractor.TREES_CYCLES, cycle_max_length=4)
        features = extractor.extract(make_cycle_graph("ABC"))
        cycle_keys = [key for key in features.counts if key[0].startswith("cycle:")]
        assert len(cycle_keys) == 1

    def test_tree_features_present(self):
        extractor = FeatureExtractor(kind=FeatureExtractor.TREES_CYCLES, tree_max_size=3)
        features = extractor.extract(make_path_graph("ABC"))
        tree_keys = [key for key in features.counts if key[0].startswith("tree:")]
        assert len(tree_keys) >= 3  # singletons and edges at minimum

    def test_locations_populated(self):
        extractor = FeatureExtractor(kind=FeatureExtractor.TREES_CYCLES, tree_max_size=2)
        features = extractor.extract(make_path_graph("AB"))
        for vertices in features.locations.values():
            assert vertices <= {0, 1}


class TestContainmentHelpers:
    def test_contains_all_of_and_covers_counts(self):
        extractor = FeatureExtractor(max_path_length=2)
        small = extractor.extract(make_path_graph("AB"))
        large = extractor.extract(make_star_graph("A", "BB"))
        assert large.contains_all_of(small)
        assert large.covers_counts_of(small)
        assert not small.contains_all_of(large)
        assert not small.covers_counts_of(large)


class TestAntiMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(graph_and_subgraph(max_vertices=7))
    def test_path_features_are_anti_monotone(self, pair):
        graph, subgraph = pair
        extractor = FeatureExtractor(max_path_length=3)
        assert extractor.extract(graph).covers_counts_of(extractor.extract(subgraph))

    @settings(max_examples=25, deadline=None)
    @given(graph_and_subgraph(max_vertices=6))
    def test_tree_cycle_features_are_anti_monotone(self, pair):
        graph, subgraph = pair
        extractor = FeatureExtractor(
            kind=FeatureExtractor.TREES_CYCLES, tree_max_size=3, cycle_max_length=4
        )
        assert extractor.extract(graph).covers_counts_of(extractor.extract(subgraph))
