"""Test package marker: makes ``from .conftest import ...`` resolve when
pytest is invoked from the repository root (no ``PYTHONPATH`` juggling)."""
