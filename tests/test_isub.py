"""Tests for the Isub component (finding cached supergraphs of a new query)."""

from __future__ import annotations

import random

from hypothesis import given, settings

from repro.core import QueryCache, SubgraphQueryIndex
from repro.features import FeatureExtractor
from repro.isomorphism import is_subgraph_isomorphic

from .conftest import (
    labeled_graphs,
    make_cycle_graph,
    make_path_graph,
    make_star_graph,
    random_labeled_graph,
)

EXTRACTOR = FeatureExtractor(max_path_length=3)


def build_index(graphs, answers=None):
    cache = QueryCache()
    index = SubgraphQueryIndex()
    for position, graph in enumerate(graphs):
        answer = frozenset() if answers is None else frozenset(answers[position])
        entry = cache.add(graph, EXTRACTOR.extract(graph), answer)
        index.add(entry)
    return cache, index


class TestFindSupergraphs:
    def test_finds_containing_cached_query(self):
        cache, index = build_index([make_cycle_graph("ABCD"), make_path_graph("XY")])
        query = make_path_graph("ABC")
        hits = index.find_supergraphs(query, EXTRACTOR.extract(query))
        assert len(hits) == 1
        assert hits[0].graph.num_vertices == 4

    def test_no_hits_for_unrelated_query(self):
        cache, index = build_index([make_path_graph("AB")])
        query = make_star_graph("Z", "ZZ")
        assert index.find_supergraphs(query, EXTRACTOR.extract(query)) == []

    def test_empty_index(self):
        index = SubgraphQueryIndex()
        query = make_path_graph("AB")
        assert index.find_supergraphs(query, EXTRACTOR.extract(query)) == []

    def test_no_false_positives_guarantee(self):
        rng = random.Random(3)
        cached = [
            random_labeled_graph(rng, rng.randint(3, 7), 0.3, name=f"c{i}") for i in range(15)
        ]
        cache, index = build_index(cached)
        for _ in range(10):
            query = random_labeled_graph(rng, rng.randint(2, 5), 0.3)
            features = EXTRACTOR.extract(query)
            for entry in index.find_supergraphs(query, features):
                assert is_subgraph_isomorphic(query, entry.graph)

    def test_no_false_negatives(self):
        rng = random.Random(11)
        cached = [
            random_labeled_graph(rng, rng.randint(3, 7), 0.3, name=f"c{i}") for i in range(15)
        ]
        cache, index = build_index(cached)
        for _ in range(10):
            query = random_labeled_graph(rng, rng.randint(2, 4), 0.4)
            features = EXTRACTOR.extract(query)
            found = {id(entry.graph) for entry in index.find_supergraphs(query, features)}
            expected = {
                id(graph) for graph in cached if is_subgraph_isomorphic(query, graph)
            }
            assert found == expected

    @settings(max_examples=25, deadline=None)
    @given(labeled_graphs(max_vertices=5), labeled_graphs(max_vertices=6))
    def test_agrees_with_direct_isomorphism(self, query, cached_graph):
        cache, index = build_index([cached_graph])
        hits = index.find_supergraphs(query, EXTRACTOR.extract(query))
        assert bool(hits) == is_subgraph_isomorphic(query, cached_graph)


class TestMaintenance:
    def test_remove_entry(self):
        cache, index = build_index([make_cycle_graph("ABC"), make_cycle_graph("ABCD")])
        entry_id = cache.entry_ids()[0]
        index.remove(entry_id)
        assert len(index) == 1
        query = make_cycle_graph("ABC")
        hits = index.find_supergraphs(query, EXTRACTOR.extract(query))
        assert all(entry.entry_id != entry_id for entry in hits)

    def test_remove_unknown_is_noop(self):
        cache, index = build_index([make_path_graph("AB")])
        index.remove(999)
        assert len(index) == 1

    def test_rebuild_reflects_cache_contents(self):
        cache, index = build_index([make_path_graph("AB"), make_path_graph("ABC")])
        cache.remove(cache.entry_ids()[0])
        index.rebuild(cache)
        assert len(index) == 1

    def test_size_estimate(self):
        cache, index = build_index([make_path_graph("ABCD")])
        assert index.estimated_size_bytes() > 0
