"""Tests for the synthetic dataset generators and the registry."""

from __future__ import annotations

import random

import pytest

from repro.datasets import (
    available_datasets,
    dataset_spec,
    generate_molecule_like,
    load_dataset,
    random_connected_graph,
    table1_row,
)
from repro.datasets.synthetic import MotifPool, generate_motif_collection
from repro.graphs import is_connected, summarize_dataset


class TestRandomConnectedGraph:
    def test_connected_and_sized(self):
        rng = random.Random(1)
        graph = random_connected_graph(rng, 30, 2.5, ["A", "B", "C"])
        assert graph.num_vertices == 30
        assert is_connected(graph)
        assert graph.num_edges >= 29

    def test_degree_targeting(self):
        rng = random.Random(2)
        sparse = random_connected_graph(rng, 40, 2.0, ["A"])
        dense = random_connected_graph(rng, 40, 6.0, ["A"])
        assert dense.num_edges > sparse.num_edges

    def test_invalid_arguments(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            random_connected_graph(rng, 0, 2.0, ["A"])
        with pytest.raises(ValueError):
            random_connected_graph(rng, 5, -1.0, ["A"])

    def test_single_vertex(self):
        rng = random.Random(4)
        graph = random_connected_graph(rng, 1, 2.0, ["A"])
        assert graph.num_vertices == 1
        assert graph.num_edges == 0


class TestMotifGeneration:
    def test_motif_pool_sampling_is_skewed(self):
        rng = random.Random(5)
        pool = MotifPool(rng, 10, (3, 5), 2.0, ["A", "B"], label_skew=1.0)
        sampled = pool.sample(rng, 500)
        counts = {}
        for motif in sampled:
            counts[motif.name] = counts.get(motif.name, 0) + 1
        assert counts.get("motif0", 0) > counts.get("motif9", 0)

    def test_collection_shapes(self):
        graphs = generate_motif_collection(
            num_graphs=10,
            num_labels=5,
            num_motifs=4,
            motif_size_range=(3, 5),
            motifs_per_graph=(2, 3),
            average_degree=2.0,
            label_skew=1.0,
            extra_edge_fraction=0.0,
            seed=7,
            prefix="t",
        )
        assert len(graphs) == 10
        for graph in graphs:
            assert is_connected(graph)
            assert graph.name.startswith("t")

    def test_invalid_num_graphs(self):
        with pytest.raises(ValueError):
            generate_motif_collection(
                num_graphs=0,
                num_labels=3,
                num_motifs=2,
                motif_size_range=(3, 4),
                motifs_per_graph=(1, 2),
                average_degree=2.0,
                label_skew=1.0,
                extra_edge_fraction=0.0,
                seed=1,
                prefix="x",
            )

    def test_determinism(self):
        first = generate_molecule_like(num_graphs=5, seed=33)
        second = generate_molecule_like(num_graphs=5, seed=33)
        for a, b in zip(first, second):
            assert a == b
        third = generate_molecule_like(num_graphs=5, seed=34)
        assert any(a != b for a, b in zip(first, third))


class TestRegistry:
    def test_available_datasets(self):
        assert set(available_datasets()) == {"aids", "pdbs", "ppi", "synthetic"}

    def test_dataset_spec_lookup(self):
        spec = dataset_spec("aids")
        assert spec.paper_num_graphs == 40000
        with pytest.raises(ValueError):
            dataset_spec("chembl")

    def test_load_dataset_scaling(self):
        small = load_dataset("pdbs", scale=0.1)
        larger = load_dataset("pdbs", scale=0.3)
        assert len(larger) > len(small)

    def test_load_dataset_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("aids", scale=0)

    def test_generated_shapes_follow_spec(self):
        for name in available_datasets():
            spec = dataset_spec(name)
            database = load_dataset(name, scale=0.2)
            stats = summarize_dataset(database.graphs())
            assert stats.num_labels <= spec.default_num_labels
            low, high = spec.default_node_range
            # Assembled graphs are unions of motifs; sizes stay in the same
            # order of magnitude as the configured node range.
            assert stats.nodes_avg <= high * 2.5
            assert stats.nodes_avg >= low * 0.3

    def test_sparse_vs_dense_datasets(self):
        sparse = summarize_dataset(load_dataset("aids", scale=0.2).graphs())
        dense = summarize_dataset(load_dataset("ppi", scale=0.5).graphs())
        assert dense.average_degree > sparse.average_degree

    def test_table1_row_structure(self):
        row = table1_row("aids", scale=0.1)
        assert row["dataset"] == "aids"
        assert row["paper"]["num_graphs"] == 40000
        assert row["generated"]["num_graphs"] > 0
