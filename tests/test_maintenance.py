"""Tests for the windowed maintenance scheme of §5.2."""

from __future__ import annotations

import pytest

from repro.core import (
    IndexMaintenance,
    PendingQuery,
    QueryCache,
    SubgraphQueryIndex,
    SupergraphQueryIndex,
    UtilityReplacementPolicy,
)
from repro.features import FeatureExtractor

from .conftest import make_path_graph

EXTRACTOR = FeatureExtractor(max_path_length=2)


def pending(label: str, answer=()):
    graph = make_path_graph(label)
    return PendingQuery(graph=graph, features=EXTRACTOR.extract(graph), answer=frozenset(answer))


class TestConfiguration:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            IndexMaintenance(cache_size=0)
        with pytest.raises(ValueError):
            IndexMaintenance(cache_size=10, window_size=0)
        with pytest.raises(ValueError):
            IndexMaintenance(cache_size=5, window_size=6)

    def test_default_policy_is_utility(self):
        maintenance = IndexMaintenance(cache_size=10, window_size=2)
        assert isinstance(maintenance.policy, UtilityReplacementPolicy)


class TestWindow:
    def test_submit_reports_full_window(self):
        maintenance = IndexMaintenance(cache_size=10, window_size=2)
        assert maintenance.submit(pending("AB")) is False
        assert maintenance.window_fill == 1
        assert maintenance.submit(pending("BC")) is True

    def test_flush_empty_window_is_noop(self):
        maintenance = IndexMaintenance(cache_size=4, window_size=2)
        cache = QueryCache()
        report = maintenance.flush(cache, None, None)
        assert report.inserted == 0
        assert report.evicted == 0

    def test_flush_inserts_and_empties_window(self):
        maintenance = IndexMaintenance(cache_size=10, window_size=2)
        cache = QueryCache()
        maintenance.submit(pending("AB"))
        maintenance.submit(pending("BC"))
        report = maintenance.flush(cache, None, None)
        assert report.inserted == 2
        assert report.evicted == 0
        assert report.cache_size_after == 2
        assert maintenance.window_fill == 0

    def test_no_eviction_during_warmup(self):
        maintenance = IndexMaintenance(cache_size=6, window_size=2)
        cache = QueryCache()
        for labels in ("AB", "BC"):
            maintenance.submit(pending(labels))
        report = maintenance.flush(cache, None, None)
        assert report.evicted == 0

    def test_eviction_when_capacity_exceeded(self):
        maintenance = IndexMaintenance(cache_size=3, window_size=2)
        cache = QueryCache()
        # Pre-fill the cache to capacity.
        for labels in ("AB", "BC", "CA"):
            entry = cache.add(
                make_path_graph(labels), EXTRACTOR.extract(make_path_graph(labels)), frozenset()
            )
            entry.alleviated_cost = 100.0  # old entries look valuable
        cache.query_counter = 10
        maintenance.submit(pending("AA"))
        maintenance.submit(pending("CC"))
        report = maintenance.flush(cache, None, None)
        assert report.inserted == 2
        assert report.evicted == 2
        assert len(cache) == 3
        assert report.cache_size_after == 3

    def test_flush_rebuilds_component_indexes(self):
        maintenance = IndexMaintenance(cache_size=5, window_size=1)
        cache = QueryCache()
        isub = SubgraphQueryIndex()
        isuper = SupergraphQueryIndex()
        maintenance.submit(pending("ABC"))
        maintenance.flush(cache, isub, isuper)
        assert len(isub) == 1
        assert len(isuper) == 1
        maintenance.submit(pending("BCD"))
        maintenance.flush(cache, isub, isuper)
        assert len(isub) == 2
        assert len(isuper) == 2

    def test_evicted_entries_leave_indexes_after_rebuild(self):
        maintenance = IndexMaintenance(cache_size=1, window_size=1)
        cache = QueryCache()
        isub = SubgraphQueryIndex()
        isuper = SupergraphQueryIndex()
        maintenance.submit(pending("AB"))
        maintenance.flush(cache, isub, isuper)
        cache.query_counter = 5
        maintenance.submit(pending("CD"))
        report = maintenance.flush(cache, isub, isuper)
        assert report.evicted == 1
        assert len(cache) == 1
        assert len(isub) == 1
        assert next(cache.entries()).graph.label(0) == "C"
