"""Round-trip and error-handling tests for graph serialization."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.graphs import (
    GraphError,
    graph_from_dict,
    graph_to_dict,
    graphs_from_gfu,
    graphs_to_gfu,
    read_gfu,
    read_jsonl,
    write_gfu,
    write_jsonl,
)

from .conftest import labeled_graphs, make_cycle_graph, make_path_graph, make_star_graph


def sample_graphs():
    return [
        make_path_graph("ABC", name="p3"),
        make_cycle_graph("ABCD", name="c4"),
        make_star_graph("A", "BBC", name="s3"),
    ]


class TestGFU:
    def test_round_trip_string(self):
        originals = sample_graphs()
        text = graphs_to_gfu(originals)
        restored = graphs_from_gfu(text)
        assert len(restored) == len(originals)
        for original, copy in zip(originals, restored):
            assert copy.name == original.name
            assert copy.num_vertices == original.num_vertices
            assert copy.num_edges == original.num_edges
            assert copy.label_histogram() == {
                str(k): v for k, v in original.label_histogram().items()
            }

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "graphs.gfu"
        write_gfu(sample_graphs(), path)
        assert len(read_gfu(path)) == 3

    def test_empty_collection(self):
        assert graphs_to_gfu([]) == ""
        assert graphs_from_gfu("") == []

    def test_missing_header(self):
        with pytest.raises(GraphError):
            graphs_from_gfu("3\nA\nB\nC\n0\n")

    def test_bad_vertex_count(self):
        with pytest.raises(GraphError):
            graphs_from_gfu("#g\nnot-a-number\n")

    def test_truncated_labels(self):
        with pytest.raises(GraphError):
            graphs_from_gfu("#g\n3\nA\nB\n")

    def test_bad_edge_line(self):
        with pytest.raises(GraphError):
            graphs_from_gfu("#g\n2\nA\nB\n1\n0\n")

    @given(labeled_graphs(max_vertices=6))
    def test_gfu_round_trip_preserves_structure(self, graph):
        restored = graphs_from_gfu(graphs_to_gfu([graph]))[0]
        assert restored.num_vertices == graph.num_vertices
        assert restored.num_edges == graph.num_edges
        assert restored.degree_sequence() == graph.degree_sequence()


class TestJSONL:
    def test_dict_round_trip(self):
        graph = make_cycle_graph("ABC", name="tri")
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored == graph

    def test_dict_round_trip_with_edge_labels(self):
        graph = make_path_graph("AB", name="e")
        labeled = graph.copy()
        labeled.remove_edge(0, 1)
        labeled.add_edge(0, 1, label="double")
        restored = graph_from_dict(graph_to_dict(labeled))
        assert restored.edge_label(0, 1) == "double"

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "graphs.jsonl"
        originals = sample_graphs()
        write_jsonl(originals, path)
        restored = read_jsonl(path)
        assert [g.name for g in restored] == [g.name for g in originals]
        assert all(a == b for a, b in zip(restored, originals))

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "graphs.jsonl"
        write_jsonl(sample_graphs(), path)
        content = path.read_text() + "\n\n"
        path.write_text(content)
        assert len(read_jsonl(path)) == 3

    @given(labeled_graphs(max_vertices=6))
    def test_jsonl_round_trip_is_exact(self, graph):
        assert graph_from_dict(graph_to_dict(graph)) == graph
