"""Property-based end-to-end tests of the iGQ theorems (Lemmas 1–4).

Hypothesis drives randomized graph databases and query streams through an
iGQ engine stacked on a base method, and the answers are compared against
brute-force subgraph isomorphism over the whole database: Theorem 1/2 say
the two must always coincide, regardless of cache contents, window timing or
replacement decisions.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IGQ
from repro.graphs import GraphDatabase
from repro.isomorphism import is_subgraph_isomorphic
from repro.methods import GGSXMethod, GrapesMethod

from .conftest import labeled_graphs


@st.composite
def database_and_queries(draw):
    graphs = draw(
        st.lists(labeled_graphs(max_vertices=6), min_size=2, max_size=6)
    )
    queries = draw(
        st.lists(labeled_graphs(max_vertices=4), min_size=1, max_size=8)
    )
    database = GraphDatabase.from_graphs(
        [graph.relabeled(name=f"g{index}") for index, graph in enumerate(graphs)]
    )
    return database, [query.relabeled(name=f"q{index}") for index, query in enumerate(queries)]


def brute_force(database, query):
    return {gid for gid, graph in database.items() if is_subgraph_isomorphic(query, graph)}


def brute_force_super(database, query):
    return {gid for gid, graph in database.items() if is_subgraph_isomorphic(graph, query)}


class TestSubgraphTheorems:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(database_and_queries())
    def test_igq_ggsx_answers_equal_brute_force(self, payload):
        database, queries = payload
        engine = IGQ(GGSXMethod(max_path_length=2), cache_size=4, window_size=2)
        engine.build_index(database)
        for query in queries:
            result = engine.query(query)
            truth = brute_force(database, query)
            # Lemma 1: no false positives.
            assert result.answers <= truth
            # Lemma 2: no false negatives.
            assert truth <= result.answers

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(database_and_queries())
    def test_igq_grapes_answers_equal_brute_force(self, payload):
        database, queries = payload
        engine = IGQ(GrapesMethod(max_path_length=2), cache_size=4, window_size=2)
        engine.build_index(database)
        for query in queries:
            assert engine.query(query).answers == brute_force(database, query)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(database_and_queries())
    def test_guaranteed_answers_are_true_answers(self, payload):
        """The graphs iGQ adds without verification (formula (4)) are correct."""
        database, queries = payload
        engine = IGQ(GGSXMethod(max_path_length=2), cache_size=4, window_size=1)
        engine.build_index(database)
        for query in queries:
            result = engine.query(query)
            truth = brute_force(database, query)
            assert result.guaranteed_answers <= truth


class TestSupergraphTheorems:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(database_and_queries())
    def test_supergraph_mode_equals_brute_force(self, payload):
        database, queries = payload
        engine = IGQ(
            GGSXMethod(max_path_length=2), cache_size=4, window_size=2, mode="supergraph"
        )
        engine.build_index(database)
        for query in queries:
            assert engine.query(query).answers == brute_force_super(database, query)
