"""Tests for the subgraph-isomorphism cost model of §5.1."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import LabeledGraph
from repro.isomorphism import (
    falling_factorial,
    graph_pair_cost,
    isomorphism_test_cost,
    log_isomorphism_test_cost,
)


class TestFallingFactorial:
    def test_basic_values(self):
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(5, 1) == 5
        assert falling_factorial(5, 3) == 60
        assert falling_factorial(5, 5) == math.factorial(5)

    def test_k_larger_than_n(self):
        assert falling_factorial(3, 5) == 0

    def test_negative_k(self):
        with pytest.raises(ValueError):
            falling_factorial(3, -1)

    @given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=12))
    def test_matches_factorial_ratio(self, n, k):
        if k <= n:
            assert falling_factorial(n, k) == math.factorial(n) // math.factorial(n - k)


class TestCostFormula:
    def test_exact_matches_paper_formula(self):
        # c(g', Gi) = Ni * Ni! / (L^(n+1) * (Ni - n)!) with n=3, Ni=5, L=2
        expected = 5 * math.factorial(5) / (2 ** 4 * math.factorial(2))
        assert isomorphism_test_cost(3, 5, 2, exact=True) == pytest.approx(expected)

    def test_log_and_exact_agree_for_small_inputs(self):
        for n, big_n, labels in [(2, 4, 3), (3, 6, 2), (5, 9, 4), (1, 1, 1)]:
            exact = isomorphism_test_cost(n, big_n, labels, exact=True)
            approx = isomorphism_test_cost(n, big_n, labels)
            assert approx == pytest.approx(exact, rel=1e-9)

    def test_large_graphs_do_not_overflow(self):
        cost = isomorphism_test_cost(20, 3000, 10)
        assert math.isfinite(cost) or cost == math.inf
        log_cost = log_isomorphism_test_cost(20, 3000, 10)
        assert math.isfinite(log_cost)

    def test_cost_grows_with_target_size(self):
        small = isomorphism_test_cost(5, 10, 3)
        large = isomorphism_test_cost(5, 20, 3)
        assert large > small

    def test_cost_decreases_with_more_labels(self):
        few = isomorphism_test_cost(5, 10, 2)
        many = isomorphism_test_cost(5, 10, 20)
        assert many < few

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            isomorphism_test_cost(3, 5, 0)
        with pytest.raises(ValueError):
            log_isomorphism_test_cost(3, 0, 2)

    @settings(max_examples=50)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=6),
    )
    def test_log_is_log_of_exact(self, n, big_n, labels):
        exact = isomorphism_test_cost(n, big_n, labels, exact=True)
        if exact > 0:
            assert log_isomorphism_test_cost(n, big_n, labels) == pytest.approx(
                math.log(exact), rel=1e-9
            )


class TestGraphPairCost:
    def test_uses_vertex_counts(self):
        query = LabeledGraph()
        query.add_vertex(0, "A")
        query.add_vertex(1, "B")
        query.add_edge(0, 1)
        target = LabeledGraph()
        for vertex, label in enumerate("ABCD"):
            target.add_vertex(vertex, label)
        assert graph_pair_cost(query, target, num_labels=4) == pytest.approx(
            isomorphism_test_cost(2, 4, 4)
        )
