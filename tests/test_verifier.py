"""Tests for the instrumented verification engine."""

from __future__ import annotations

import pytest

from repro.isomorphism import Verifier

from .conftest import make_cycle_graph, make_path_graph


class TestVerifier:
    def test_counts_tests_and_outcomes(self):
        verifier = Verifier()
        assert verifier.is_subgraph(make_path_graph("ABC"), make_cycle_graph("ABC"))
        assert not verifier.is_subgraph(make_cycle_graph("ABC"), make_path_graph("ABC"))
        stats = verifier.stats
        assert stats.tests == 2
        assert stats.positives == 1
        assert stats.negatives == 1
        assert stats.total_seconds >= 0.0
        assert len(stats.per_test_seconds) == 2

    def test_is_supergraph_swaps_arguments(self):
        verifier = Verifier()
        assert verifier.is_supergraph(make_cycle_graph("ABC"), make_path_graph("ABC"))
        assert verifier.stats.tests == 1

    def test_reset(self):
        verifier = Verifier()
        verifier.is_subgraph(make_path_graph("AB"), make_path_graph("AB"))
        verifier.reset()
        assert verifier.stats.tests == 0
        assert verifier.stats.per_test_seconds == []

    def test_ullmann_backend(self):
        verifier = Verifier(algorithm="ullmann")
        assert verifier.is_subgraph(make_path_graph("ABC"), make_cycle_graph("ABC"))
        assert not verifier.is_subgraph(make_cycle_graph("ABC"), make_path_graph("ABC"))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            Verifier(algorithm="magic")

    def test_backends_agree(self):
        cases = [
            (make_path_graph("ABC"), make_cycle_graph("ABC")),
            (make_cycle_graph("ABC"), make_path_graph("ABC")),
            (make_path_graph("AAB"), make_cycle_graph("ABAB")),
        ]
        vf2 = Verifier(algorithm="vf2")
        ullmann = Verifier(algorithm="ullmann")
        for pattern, target in cases:
            assert vf2.is_subgraph(pattern, target) == ullmann.is_subgraph(pattern, target)
