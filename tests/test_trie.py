"""Tests for the feature trie with per-graph postings."""

from __future__ import annotations

import pytest

from repro.features import FeatureTrie


def build_sample_trie() -> FeatureTrie:
    trie = FeatureTrie()
    trie.insert(("A", "B"), "g1", 2)
    trie.insert(("A", "B"), "g2", 1)
    trie.insert(("A", "B", "C"), "g1", 1)
    trie.insert(("X",), "g3", 5)
    return trie


class TestInsertAndGet:
    def test_postings(self):
        trie = build_sample_trie()
        assert trie.get(("A", "B")) == {"g1": 2, "g2": 1}
        assert trie.get(("A", "B", "C")) == {"g1": 1}
        assert trie.get(("X",)) == {"g3": 5}

    def test_missing_key(self):
        trie = build_sample_trie()
        assert trie.get(("Z",)) == {}
        assert ("Z",) not in trie

    def test_contains_requires_postings(self):
        trie = build_sample_trie()
        assert ("A", "B") in trie
        # ("A",) is an internal node without postings of its own.
        assert ("A",) not in trie

    def test_reinsert_overwrites_count(self):
        trie = build_sample_trie()
        trie.insert(("A", "B"), "g1", 7)
        assert trie.get(("A", "B"))["g1"] == 7
        assert trie.num_features == 3

    def test_invalid_occurrences(self):
        trie = FeatureTrie()
        with pytest.raises(ValueError):
            trie.insert(("A",), "g", 0)

    def test_num_features(self):
        assert build_sample_trie().num_features == 3


class TestRemoveGraph:
    def test_remove_graph_postings(self):
        trie = build_sample_trie()
        trie.remove_graph("g1")
        assert trie.get(("A", "B")) == {"g2": 1}
        assert trie.get(("A", "B", "C")) == {}
        assert trie.num_features == 2

    def test_remove_prunes_empty_branches(self):
        trie = build_sample_trie()
        nodes_before = trie.num_nodes()
        trie.remove_graph("g3")
        assert trie.num_nodes() < nodes_before
        assert ("X",) not in trie

    def test_remove_unknown_graph_is_noop(self):
        trie = build_sample_trie()
        trie.remove_graph("ghost")
        assert trie.num_features == 3

    def test_graph_ids(self):
        trie = build_sample_trie()
        assert trie.graph_ids() == {"g1", "g2", "g3"}
        trie.remove_graph("g2")
        assert trie.graph_ids() == {"g1", "g3"}


class TestIntrospection:
    def test_items_round_trip(self):
        trie = build_sample_trie()
        items = dict(trie.items())
        assert items[("A", "B")] == {"g1": 2, "g2": 1}
        assert len(items) == 3

    def test_num_postings(self):
        assert build_sample_trie().num_postings() == 4

    def test_estimated_size_grows_with_content(self):
        small = FeatureTrie()
        small.insert(("A",), "g", 1)
        large = build_sample_trie()
        assert large.estimated_size_bytes() > small.estimated_size_bytes()

    def test_empty_trie(self):
        trie = FeatureTrie()
        assert trie.num_features == 0
        assert trie.num_postings() == 0
        assert list(trie.items()) == []
