"""Package marker so the figure benchmarks' ``from .conftest import ...``
resolves when pytest is invoked from the repository root."""
