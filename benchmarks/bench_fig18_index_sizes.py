"""Figure 18: absolute index sizes — base methods vs the iGQ space overhead."""

from repro.experiments import figure18_index_sizes

from .conftest import QUICK_SPARSE, run_figure


def test_fig18_index_sizes(benchmark):
    result = run_figure(benchmark, figure18_index_sizes, dataset="aids", **QUICK_SPARSE)
    sizes = {row["index"]: row["size_bytes"] for row in result["rows"]}
    igq_size = sizes["iGQ query index (after zipf-zipf run)"]
    assert igq_size > 0
    # The paper's point: enlarging the base index (one extra unit of feature
    # size) costs substantially more space, while the iGQ query index is a
    # small add-on compared to the path-based dataset indexes.
    for method in ("ggsx", "grapes", "ctindex"):
        assert sizes[f"{method} (larger config)"] > sizes[f"{method} (default)"]
    assert igq_size < sizes["grapes (larger config)"]
