"""Figure 1: filtering vs verification share of query processing time."""

from repro.experiments import figure1_time_breakdown

from .conftest import QUICK_SPARSE, run_figure


def test_fig1_time_breakdown(benchmark):
    result = run_figure(
        benchmark,
        figure1_time_breakdown,
        datasets=("aids", "pdbs"),
        methods=("ggsx", "grapes", "ctindex"),
        **QUICK_SPARSE,
    )
    assert len(result["rows"]) == 6
    # The paper's point: verification dominates the total query time.
    for row in result["rows"]:
        assert row["verify_time_pct"] >= row["filter_time_pct"] * 0.5
