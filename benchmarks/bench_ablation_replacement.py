"""Ablation: utility-based replacement vs popularity-only vs FIFO (§5.1)."""

from repro.experiments import ablation_replacement_policies

from .conftest import QUICK_SPARSE, run_figure


def test_ablation_replacement_policies(benchmark):
    result = run_figure(
        benchmark,
        ablation_replacement_policies,
        dataset="pdbs",
        method="grapes",
        cache_size=20,
        **QUICK_SPARSE,
    )
    policies = {row["policy"] for row in result["rows"]}
    assert policies == {"utility", "hit_rate", "fifo"}
    assert all(row["iso_test_speedup"] >= 1.0 for row in result["rows"])
