"""Figure 15: query-time speedup vs Zipf skew α (PDBS-like, Grapes(6))."""

from repro.experiments import figure15_zipf_alpha_time

from .conftest import QUICK_SPARSE, run_figure


def test_fig15_zipf_alpha_time_speedup(benchmark):
    result = run_figure(
        benchmark, figure15_zipf_alpha_time, alphas=(1.1, 1.4, 2.0), **QUICK_SPARSE
    )
    speedups = {row["alpha"]: row["speedup"] for row in result["rows"]}
    assert set(speedups) == {1.1, 1.4, 2.0}
