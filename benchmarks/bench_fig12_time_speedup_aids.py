"""Figure 12: speedup in query processing time, AIDS-like dataset."""

from repro.experiments import figure12_time_speedup_aids

from .conftest import QUICK_SPARSE, run_figure


def test_fig12_time_speedup_aids(benchmark):
    result = run_figure(benchmark, figure12_time_speedup_aids, **QUICK_SPARSE)
    assert len(result["rows"]) == 16
    # Query-time speedups are smaller than iso-test speedups (the paper makes
    # the same observation for AIDS); they should still be positive overall.
    assert sum(row["speedup"] for row in result["rows"]) / len(result["rows"]) > 0.8
