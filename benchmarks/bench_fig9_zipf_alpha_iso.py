"""Figure 9: iso-test speedup vs Zipf skew α (PDBS-like, Grapes(6))."""

from repro.experiments import figure9_zipf_alpha_iso

from .conftest import QUICK_SPARSE, run_figure


def test_fig9_zipf_alpha_iso_speedup(benchmark):
    result = run_figure(
        benchmark, figure9_zipf_alpha_iso, alphas=(1.1, 1.4, 2.0), **QUICK_SPARSE
    )
    speedups = {row["alpha"]: row["speedup"] for row in result["rows"]}
    assert set(speedups) == {1.1, 1.4, 2.0}
    # The paper's trend: more skew brings more benefit.
    assert speedups[2.0] >= speedups[1.1]
