"""Ablation: Isub-only vs Isuper-only vs both components (§4.2)."""

from repro.experiments import ablation_components

from .conftest import QUICK_SPARSE, run_figure


def test_ablation_igq_components(benchmark):
    result = run_figure(
        benchmark, ablation_components, dataset="aids", method="ggsx", **QUICK_SPARSE
    )
    rows = {row["components"]: row for row in result["rows"]}
    assert set(rows) == {"isub+isuper", "isub only", "isuper only"}
    # Each single component is at most as effective (in pruning) as both.
    assert rows["isub+isuper"]["iso_test_speedup"] >= rows["isub only"]["iso_test_speedup"] - 1e-9
    assert rows["isub+isuper"]["iso_test_speedup"] >= rows["isuper only"]["iso_test_speedup"] - 1e-9
