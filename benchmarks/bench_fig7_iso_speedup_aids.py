"""Figure 7: speedup in number of isomorphism tests, AIDS-like dataset."""

from repro.experiments import figure7_iso_speedup_aids

from .conftest import QUICK_SPARSE, run_figure


def test_fig7_iso_test_speedup_aids(benchmark):
    result = run_figure(benchmark, figure7_iso_speedup_aids, **QUICK_SPARSE)
    assert len(result["rows"]) == 16  # 4 workloads x 4 methods
    # iGQ never increases the number of isomorphism tests and should reduce
    # it on every workload/method combination.
    assert all(row["speedup"] >= 1.0 for row in result["rows"])
    assert any(row["speedup"] > 1.2 for row in result["rows"])
