"""Benchmark: hot-key replication + probe pruning vs static sharding, CI-gated.

End-to-end throughput of :class:`ShardedIGQ` on a *drifting* Zipf stream —
the hot set rotates while the stream runs, so no static placement stays
optimal — in three configurations over the same queries:

* ``shards=1`` — the byte-identity reference;
* ``shards=N`` static — the plain delta-fed sharding (PR 4 behaviour);
* ``shards=N`` hot — ``hot_threshold`` replication plus adaptive
  rebalancing, which also switches on probe-side pruning: per-shard
  feature-bitmask summaries let the fan-out skip shards whose partition
  cannot contain a hit, and replicated hot entries are answered by a single
  covering shard.

The run **fails** if any configuration diverges from the single-shard
fingerprint anywhere — answers, per-query accounting, containment-test
statistics, final cache contents or replacement metadata — or if the hot
configuration's throughput falls below the gate (default 1.2x) over static
sharding.  The pruning gain is pure CPU work (skipped trie walks and
tallies), so the gate holds on single-core runners; multi-core runners get
the skipped worker round-trips on top.

Run directly::

    python benchmarks/bench_hotkey.py --shards 4
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import CacheConfig, EngineConfig, ShardConfig, ShardedIGQ  # noqa: E402
from repro.core.batch import effective_cpu_count  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.methods import create_method  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec, drifting_stream  # noqa: E402


def build_stream(database, args) -> list:
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=args.alpha,
        seed=args.seed,
    )
    pool = QueryGenerator(database, spec).generate(args.distinct)
    return drifting_stream(
        pool,
        args.num_queries,
        alpha=args.alpha,
        alpha_end=args.alpha_end,
        rotate_every=args.rotate_every,
        rotate_stride=args.rotate_stride,
        seed=args.seed + 1,
    )


def fingerprint(engine, results) -> tuple:
    """Everything the byte-identical gate compares."""
    answers = [tuple(sorted(map(repr, result.answers))) for result in results]
    accounting = [
        (
            result.num_isomorphism_tests,
            result.num_sub_hits,
            result.num_super_hits,
            result.exact_hit,
            result.verification_skipped,
        )
        for result in results
    ]
    cache_state = sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )
    igq_stats = engine.igq_verifier.stats
    return (
        answers,
        accounting,
        cache_state,
        (igq_stats.tests, igq_stats.positives, igq_stats.negatives),
    )


def run_config(
    database, stream, args, shards: int, backend: str, hot: bool
) -> dict:
    method = create_method("ggsx", max_path_length=args.max_path_length)
    engine = ShardedIGQ.from_config(
        method,
        EngineConfig(
            cache=CacheConfig(size=args.cache_size, window=args.window_size),
            shard=ShardConfig(
                shards=shards,
                backend=backend,
                hot_threshold=args.hot_threshold if hot else None,
                rebalance_interval=args.rebalance_interval if hot else None,
            ),
        ),
    )
    engine.build_index(database)
    if backend == "process":
        # Spin the shard workers up (and replay the empty log) before the
        # clock starts, mirroring an already-running deployed pool.
        engine.shard_runtime.probe(
            stream[0], method.extract_query_features(stream[0]), False, False
        )
    # Collector pauses are the dominant noise source on a ratio of two
    # sub-second runs; keep them out of the timed region.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        results = [engine.query(query) for query in stream]
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    shard_stats = engine.shard_stats()
    outcome = {
        "shards": shards,
        "backend": engine.shard_backend,
        "hot": hot,
        "seconds": round(elapsed, 4),
        "queries_per_second": round(len(stream) / elapsed, 2),
        "fingerprint": fingerprint(engine, results),
        "cache_entries": len(engine.cache),
        "replicas_live": shard_stats["replicas_live"],
        "moves_applied": shard_stats["moves_applied"],
        "delta_log": shard_stats["delta_log"],
    }
    engine.close()
    return outcome


def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    stream = build_stream(database, args)
    cpus = effective_cpu_count()

    specs = [
        ("single", 1, "inline", False),
        ("static", args.shards, "inline", False),
        ("hot", args.shards, "inline", True),
    ]
    if cpus > 1:
        specs.append(("hot_process", args.shards, "process", True))

    # The gate is a ratio of two sub-second measurements, so each config is
    # measured ``--repeats`` times and the fastest run wins — with the
    # rounds *interleaved* across configs and the order rotated per round,
    # so neither a slow stretch of the machine nor the growing heap of a
    # long-lived process can systematically penalise one config.  The
    # engines are deterministic; mismatching fingerprints across
    # repetitions would be a real bug.
    best: dict[str, dict] = {}
    for round_index in range(max(args.repeats, 1)):
        offset = round_index % len(specs)
        for name, shards, backend, hot_flag in specs[offset:] + specs[:offset]:
            outcome = run_config(database, stream, args, shards, backend, hot_flag)
            previous = best.get(name)
            if previous is not None and previous["fingerprint"] != outcome["fingerprint"]:
                raise AssertionError(f"non-deterministic run for config {name!r}")
            if previous is None or outcome["seconds"] < previous["seconds"]:
                best[name] = outcome

    single = best["single"]
    static = best["static"]
    configs = [best[name] for name, *_ in specs if name != "single"]
    hot = max((c for c in configs if c["hot"]), key=lambda c: c["queries_per_second"])

    identical = all(c["fingerprint"] == single["fingerprint"] for c in configs)
    speedup = hot["queries_per_second"] / static["queries_per_second"]

    def public(config: dict) -> dict:
        return {k: v for k, v in config.items() if k != "fingerprint"}

    return {
        "dataset": args.dataset,
        "num_queries": len(stream),
        "distinct_queries": args.distinct,
        "cache_size": args.cache_size,
        "window_size": args.window_size,
        "alpha": args.alpha,
        "alpha_end": args.alpha_end,
        "rotate_every": args.rotate_every,
        "rotate_stride": args.rotate_stride,
        "hot_threshold": args.hot_threshold,
        "rebalance_interval": args.rebalance_interval,
        "effective_cpus": cpus,
        "min_speedup_gate": args.min_speedup,
        "single_shard": public(single),
        "static": public(static),
        "hot_configs": [public(c) for c in configs if c["hot"]],
        "best_hot_backend": hot["backend"],
        "hotkey_speedup": round(speedup, 3),
        "answers_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--max-path-length", type=int, default=3)
    parser.add_argument("--num-queries", type=int, default=800)
    parser.add_argument("--distinct", type=int, default=200)
    parser.add_argument("--cache-size", type=int, default=300)
    parser.add_argument("--window-size", type=int, default=40)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--alpha", type=float, default=1.4)
    parser.add_argument("--alpha-end", type=float, default=2.0)
    parser.add_argument("--rotate-every", type=int, default=50)
    parser.add_argument("--rotate-stride", type=int, default=25)
    parser.add_argument("--hot-threshold", type=int, default=2)
    parser.add_argument("--rebalance-interval", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--min-speedup", type=float, default=1.2)
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    failed = False
    if not result["answers_identical"]:
        print(
            "FAIL: a configuration diverges from the single-shard engine",
            file=sys.stderr,
        )
        failed = True
    if result["hotkey_speedup"] < args.min_speedup:
        print(
            f"FAIL: hot-key speedup {result['hotkey_speedup']}x over static "
            f"sharding is below the {args.min_speedup}x gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
