"""Figure 8: speedup in number of isomorphism tests, PDBS-like dataset."""

from repro.experiments import figure8_iso_speedup_pdbs

from .conftest import QUICK_SPARSE, run_figure


def test_fig8_iso_test_speedup_pdbs(benchmark):
    result = run_figure(benchmark, figure8_iso_speedup_pdbs, **QUICK_SPARSE)
    assert len(result["rows"]) == 16
    assert all(row["speedup"] >= 1.0 for row in result["rows"])
    assert any(row["speedup"] > 1.5 for row in result["rows"])
