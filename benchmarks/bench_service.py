"""Benchmark: the network front door under multi-tenant contention, CI-gated.

Stands up the asyncio socket server (``repro.service.server``) over a real
engine and measures a *fast* tenant's per-query latency in two regimes:

* **uncontended** — the fast tenant alone, blocking ``query()`` over its
  own connection;
* **contended** — the same queries while a *hog* tenant keeps a deep
  backlog of cheap exact-repeat queries flooding the server on a second
  connection.

With the deficit-round-robin scheduler the fast tenant's submissions jump
(almost) to the front of the dispatch order instead of queueing behind
the hog's backlog, so contended latency stays within a small factor of
the uncontended baseline.  The run **fails** if

* the fast tenant's contended p95 latency exceeds ``--max-slowdown``
  (default 2.0) times its uncontended p95, or
* the answers and accounting returned over the wire diverge anywhere from
  the embedded single-session path (byte-identity leg).

Run directly::

    python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import IGQ, CacheConfig, EngineConfig  # noqa: E402
from repro.core.config import ServiceConfig, TenantConfig  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.methods import create_method  # noqa: E402
from repro.service import GraphQueryService, connect, serve  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec  # noqa: E402


def build_queries(database, args) -> list:
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=args.alpha,
        seed=args.seed,
    )
    return QueryGenerator(database, spec).generate(args.distinct)


def make_service(database, args) -> GraphQueryService:
    config = EngineConfig(
        cache=CacheConfig(size=args.cache_size, window=args.window_size),
        service=ServiceConfig(
            tenants=(
                TenantConfig(name="fast", weight=args.fast_weight),
                TenantConfig(name="hog", weight=1, max_in_flight=args.hog_backlog + 1),
            ),
        ),
    )
    method = create_method("ggsx", max_path_length=args.max_path_length)
    return GraphQueryService(method, config, database=database)


def fingerprint(engine, results) -> tuple:
    """Everything the byte-identity gate compares."""
    answers = [tuple(sorted(map(repr, result.answers))) for result in results]
    accounting = [
        (
            result.num_isomorphism_tests,
            result.num_sub_hits,
            result.num_super_hits,
            result.exact_hit,
            result.verification_skipped,
        )
        for result in results
    ]
    cache_state = sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )
    igq_stats = engine.igq_verifier.stats
    return (
        answers,
        accounting,
        cache_state,
        (igq_stats.tests, igq_stats.positives, igq_stats.negatives),
    )


def check_byte_identity(database, queries, args) -> bool:
    """The same stream over the wire and through a plain engine loop."""
    method = create_method("ggsx", max_path_length=args.max_path_length)
    engine = IGQ.from_config(
        method,
        EngineConfig(cache=CacheConfig(size=args.cache_size, window=args.window_size)),
    )
    engine.build_index(database)
    baseline = fingerprint(engine, [engine.query(query) for query in queries])

    service = make_service(database, args)
    with service, serve(service) as server:
        with connect(server.host, server.port, tenant="fast") as client:
            results = [client.query(query) for query in queries]
        remote = fingerprint(service.engine, results)
    return remote == baseline


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(int(fraction * len(ordered)), len(ordered) - 1)]


def timed_queries(client, queries) -> list[float]:
    latencies = []
    for query in queries:
        start = time.perf_counter()
        client.query(query)
        latencies.append(time.perf_counter() - start)
    return latencies


def measure_round(database, queries, args) -> dict:
    """One uncontended + contended measurement pair on a fresh service."""
    fast_queries = queries * args.fast_passes
    hog_query = queries[0]

    service = make_service(database, args)
    with service, serve(service) as server:
        with connect(server.host, server.port, tenant="fast") as fast:
            # Warm the engine (index structures, first-seen query costs) so
            # both regimes measure steady-state service, then time the
            # uncontended baseline.
            timed_queries(fast, queries)
            gc.collect()
            uncontended = timed_queries(fast, fast_queries)

            with connect(server.host, server.port, tenant="hog") as hog:
                # A deep standing backlog of cheap exact-repeat queries;
                # each completion refills the queue, so the hog stays
                # backlogged for the whole measured window.
                outstanding = []
                flooding = True

                def refill(done) -> None:
                    if not flooding or done.cancelled() or done.exception() is not None:
                        return
                    try:
                        follow_up = hog.submit(hog_query)
                    except OSError:
                        return
                    follow_up.add_done_callback(refill)
                    outstanding.append(follow_up)

                for _ in range(args.hog_backlog):
                    future = hog.submit(hog_query)
                    future.add_done_callback(refill)
                    outstanding.append(future)
                gc.collect()
                contended = timed_queries(fast, fast_queries)
                flooding = False
                served_during = len([f for f in outstanding if f.done()])
        report = service.stats()
    return {
        "uncontended_p95_ms": round(percentile(uncontended, 0.95) * 1000, 3),
        "contended_p95_ms": round(percentile(contended, 0.95) * 1000, 3),
        "uncontended_mean_ms": round(sum(uncontended) / len(uncontended) * 1000, 3),
        "contended_mean_ms": round(sum(contended) / len(contended) * 1000, 3),
        "hog_queries_served": served_during,
        "fast_queries_timed": len(fast_queries),
        "fast_stats_queries": report.sessions["fast"].queries,
        "hog_stats_queries": report.sessions["hog"].queries,
    }


def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    queries = build_queries(database, args)

    identical = check_byte_identity(database, queries, args)

    # A ratio of two sub-second p95s is noisy; measure ``--repeats``
    # fresh-service rounds and gate on the best (smallest) slowdown.
    rounds = [measure_round(database, queries, args) for _ in range(max(args.repeats, 1))]
    best = min(
        rounds, key=lambda r: r["contended_p95_ms"] / r["uncontended_p95_ms"]
    )
    slowdown = best["contended_p95_ms"] / best["uncontended_p95_ms"]

    return {
        "dataset": args.dataset,
        "distinct_queries": args.distinct,
        "fast_passes": args.fast_passes,
        "hog_backlog": args.hog_backlog,
        "fast_weight": args.fast_weight,
        "cache_size": args.cache_size,
        "window_size": args.window_size,
        "repeats": args.repeats,
        "max_slowdown_gate": args.max_slowdown,
        "rounds": rounds,
        "best_round": best,
        "contended_slowdown": round(slowdown, 3),
        "answers_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--max-path-length", type=int, default=3)
    parser.add_argument("--distinct", type=int, default=15)
    parser.add_argument("--fast-passes", type=int, default=3,
                        help="timed passes of the fast tenant over the query pool")
    parser.add_argument("--hog-backlog", type=int, default=150,
                        help="standing queue depth of the hog tenant")
    parser.add_argument("--fast-weight", type=int, default=4)
    parser.add_argument("--cache-size", type=int, default=50)
    parser.add_argument("--window-size", type=int, default=10)
    parser.add_argument("--alpha", type=float, default=1.4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--max-slowdown", type=float, default=2.0)
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    failed = False
    if not result["answers_identical"]:
        print(
            "FAIL: wire-protocol answers diverge from the embedded engine path",
            file=sys.stderr,
        )
        failed = True
    if result["contended_slowdown"] > args.max_slowdown:
        print(
            f"FAIL: fast-tenant contended p95 is {result['contended_slowdown']}x "
            f"its uncontended baseline, above the {args.max_slowdown}x gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
