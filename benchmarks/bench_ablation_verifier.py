"""Ablation: VF2 vs Ullmann as the verification algorithm."""

import time

from repro.experiments import ExperimentConfig, get_database, get_queries
from repro.isomorphism import Verifier
from repro.methods import GGSXMethod


def run_verifier(algorithm: str) -> dict:
    config = ExperimentConfig(dataset="aids", method="ggsx", num_queries=40).resolved()
    database = get_database(config.dataset, config.scale, config.dataset_seed)
    queries = get_queries(config)[: config.num_queries]
    method = GGSXMethod(max_path_length=config.max_path_length, verifier=Verifier(algorithm))
    method.build_index(database)
    start = time.perf_counter()
    answers = 0
    for query in queries:
        answers += len(method.query(query).answers)
    return {
        "algorithm": algorithm,
        "answers": answers,
        "seconds": round(time.perf_counter() - start, 3),
        "tests": method.verifier.stats.tests,
    }


def test_ablation_verifier_backends(benchmark):
    results = benchmark.pedantic(
        lambda: [run_verifier("vf2"), run_verifier("ullmann")],
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    for row in results:
        print(row)
    vf2, ullmann = results
    # Both verifiers must agree on the answers; VF2 is the faster default.
    assert vf2["answers"] == ullmann["answers"]
    assert vf2["tests"] == ullmann["tests"]
