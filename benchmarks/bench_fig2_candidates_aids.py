"""Figure 2: candidates / answers / false positives on the AIDS-like dataset."""

from repro.experiments import figure2_filtering_aids

from .conftest import QUICK_SPARSE, run_figure


def test_fig2_filtering_power_aids(benchmark):
    result = run_figure(benchmark, figure2_filtering_aids, **QUICK_SPARSE)
    for row in result["rows"]:
        assert row["avg_candidates"] >= row["avg_answers"]
        assert row["avg_false_positives"] >= 0
