"""Figure 16: query-time speedup per query-size group (PPI-like, Grapes(6))."""

from repro.experiments import figure16_query_groups_ppi_time

from .conftest import GROUP_CACHE_SIZES, QUICK_DENSE, run_figure


def test_fig16_query_group_time_speedup_ppi(benchmark):
    result = run_figure(
        benchmark,
        figure16_query_groups_ppi_time,
        cache_sizes=GROUP_CACHE_SIZES,
        **QUICK_DENSE,
    )
    assert any(row["query_group"] == "all" for row in result["rows"])
