"""Figure 14: query-time speedup vs iGQ cache size (PDBS-like, Grapes(6))."""

from repro.experiments import figure14_cache_size_time

from .conftest import QUICK_SPARSE, run_figure


def test_fig14_cache_size_time_speedup(benchmark):
    result = run_figure(
        benchmark, figure14_cache_size_time, cache_sizes=(30, 60, 90), **QUICK_SPARSE
    )
    assert [row["cache_size"] for row in result["rows"]] == [30, 60, 90]
    assert all(row["iso_test_speedup"] >= 1.0 for row in result["rows"])
