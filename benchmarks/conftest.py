"""Shared configuration for the figure-regeneration benchmarks.

Each benchmark runs one figure driver exactly once (``benchmark.pedantic``
with a single round): the interesting output is the figure's data series —
printed to stdout in the same shape the paper reports — with the wall-clock
time of the whole experiment as the benchmarked quantity.

The ``QUICK`` overrides keep the full suite to a few minutes on a laptop;
pass larger values through the figure functions (see EXPERIMENTS.md) for
closer-to-paper runs.
"""

from __future__ import annotations

from repro.experiments import format_figure

#: reduced query-stream sizes for the benchmark suite (the experiment layer's
#: own defaults are larger; the paper uses 3 000 / 500 queries)
QUICK_SPARSE = {"num_queries": 120}
QUICK_DENSE = {"num_queries": 100}
#: cache sizes for the query-group figures (paper: 100/200/300 on PPI-scale)
GROUP_CACHE_SIZES = (15, 25, 35)


def run_figure(benchmark, figure_function, **kwargs):
    """Run ``figure_function`` once under pytest-benchmark and print it."""
    result = benchmark.pedantic(
        lambda: figure_function(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(format_figure(result))
    return result
