"""Benchmark: sharded query cache vs the single-shard engine, CI-gated.

End-to-end batch throughput of :class:`ShardedIGQ` on a churny cache-heavy
Zipf stream, in three configurations over the *same* query stream:

* ``shards=1`` — the A/B baseline (exactly the legacy engine: full shadow
  rebuild of both component indexes at every window flush);
* ``shards=N`` with the ``inline`` backend — in-process replicas fed by the
  delta log, so a window flush costs one increment per windowed/evicted
  entry instead of a full-capacity rebuild;
* ``shards=N`` with the ``process`` backend (only when the machine has more
  than one usable CPU) — one long-lived worker process per shard replaying
  the log and probing its partition concurrently.

The run **fails** if any sharded configuration diverges from the baseline
anywhere — answers, per-query accounting, containment-test statistics,
final cache contents or replacement metadata — or if the best sharded
configuration's throughput falls below the gate (default 1.2x).  The
maintenance gain is pure CPU work, so the gate holds even on single-core
runners; multi-core runners add the parallel-probe gain on top.

Run directly::

    python benchmarks/bench_sharded.py --shards 4
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import CacheConfig, EngineConfig, ShardConfig, ShardedIGQ  # noqa: E402
from repro.core.batch import effective_cpu_count  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.methods import create_method  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec  # noqa: E402
from repro.workloads.zipf import create_sampler  # noqa: E402


def build_stream(database, args) -> list:
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=args.alpha,
        seed=args.seed,
    )
    pool = QueryGenerator(database, spec).generate(args.distinct)
    rng = random.Random(args.seed + 1)
    sampler = create_sampler("zipf", len(pool), alpha=args.alpha)
    return [pool[sampler.sample(rng)] for _ in range(args.num_queries)]


def fingerprint(engine, results) -> tuple:
    """Everything the byte-identical gate compares."""
    answers = [tuple(sorted(map(repr, result.answers))) for result in results]
    accounting = [
        (
            result.num_isomorphism_tests,
            result.num_sub_hits,
            result.num_super_hits,
            result.exact_hit,
            result.verification_skipped,
        )
        for result in results
    ]
    cache_state = sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )
    igq_stats = engine.igq_verifier.stats
    return (
        answers,
        accounting,
        cache_state,
        (igq_stats.tests, igq_stats.positives, igq_stats.negatives),
    )


def run_config(database, stream, args, shards: int, backend: str) -> dict:
    method = create_method("ggsx", max_path_length=args.max_path_length)
    engine = ShardedIGQ.from_config(
        method,
        EngineConfig(
            cache=CacheConfig(size=args.cache_size, window=args.window_size),
            shard=ShardConfig(shards=shards, backend=backend),
        ),
    )
    engine.build_index(database)
    if backend == "process":
        # Spin the shard workers up (and replay the empty log) before the
        # clock starts, mirroring a deployed pool that is already running.
        engine.shard_runtime.probe(stream[0], method.extract_query_features(stream[0]),
                                   False, False)
    start = time.perf_counter()
    results = [engine.query(query) for query in stream]
    elapsed = time.perf_counter() - start
    outcome = {
        "shards": shards,
        "backend": engine.shard_backend,
        "seconds": round(elapsed, 4),
        "queries_per_second": round(len(stream) / elapsed, 2),
        "fingerprint": fingerprint(engine, results),
        "cache_entries": len(engine.cache),
        "log_records": len(engine.delta_log) if engine.delta_log is not None else 0,
    }
    engine.close()
    return outcome


def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    stream = build_stream(database, args)
    cpus = effective_cpu_count()

    baseline = run_config(database, stream, args, shards=1, backend="inline")
    configs = [run_config(database, stream, args, args.shards, "inline")]
    if cpus > 1:
        configs.append(run_config(database, stream, args, args.shards, "process"))

    identical = all(c["fingerprint"] == baseline["fingerprint"] for c in configs)
    best = max(configs, key=lambda c: c["queries_per_second"])
    speedup = best["queries_per_second"] / baseline["queries_per_second"]

    def public(config: dict) -> dict:
        return {k: v for k, v in config.items() if k != "fingerprint"}

    return {
        "dataset": args.dataset,
        "num_queries": len(stream),
        "distinct_queries": args.distinct,
        "cache_size": args.cache_size,
        "window_size": args.window_size,
        "alpha": args.alpha,
        "effective_cpus": cpus,
        "min_speedup_gate": args.min_speedup,
        "baseline": public(baseline),
        "sharded": [public(config) for config in configs],
        "best_backend": best["backend"],
        "sharded_speedup": round(speedup, 3),
        "answers_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--max-path-length", type=int, default=3)
    parser.add_argument("--num-queries", type=int, default=400)
    parser.add_argument("--distinct", type=int, default=400)
    parser.add_argument("--cache-size", type=int, default=300)
    parser.add_argument("--window-size", type=int, default=20)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--alpha", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--min-speedup", type=float, default=1.2)
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    failed = False
    if not result["answers_identical"]:
        print(
            "FAIL: a sharded configuration diverges from the single-shard engine",
            file=sys.stderr,
        )
        failed = True
    if result["sharded_speedup"] < args.min_speedup:
        print(
            f"FAIL: sharded speedup {result['sharded_speedup']}x is below the "
            f"{args.min_speedup}x gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
