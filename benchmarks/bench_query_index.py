"""Benchmark: compiled query-index containment vs the dict-based baseline.

The iGQ premise is that containment tests against *cached queries* are cheap
relative to tests against dataset graphs — so the two component indexes
(``Isub``/``Isuper``) must not pay per-pair matcher setup.  This benchmark
measures exactly that layer on a cache-heavy Zipf stream:

1. A pool of distinct queries is generated; the first ``--cache-size`` of
   them populate a :class:`QueryCache` and two pairs of component indexes —
   one compiled (cached graphs compiled into bitset targets/plans on
   insertion, kernel dispatch per pair) and one dict-based
   (``Verifier(compiled=False)`` — a fresh ``VF2Matcher`` per pair, the
   pre-refactor behaviour).
2. Every stream query runs ``Isub.find_supergraphs`` +
   ``Isuper.find_subgraphs`` through both pairs; the per-call wall time is
   accumulated separately and the hit lists must be identical.

The run **fails** if the hit lists diverge anywhere or if the compiled
speedup falls below the gate (default 1.3x).  Pure-CPU comparison, so the
gate holds on any machine.

Run directly::

    python benchmarks/bench_query_index.py --num-queries 300
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import QueryCache, SubgraphQueryIndex, SupergraphQueryIndex  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.features import FeatureExtractor  # noqa: E402
from repro.isomorphism import Verifier  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec  # noqa: E402
from repro.workloads.zipf import create_sampler  # noqa: E402


def build_pool(database, distinct: int, alpha: float, seed: int):
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=alpha,
        seed=seed,
    )
    return QueryGenerator(database, spec).generate(distinct)


def build_indexes(cached, extractor, compiled: bool):
    verifier = Verifier(compiled=compiled)
    cache = QueryCache()
    isub = SubgraphQueryIndex(verifier, compiled=compiled)
    isuper = SupergraphQueryIndex(verifier, compiled=compiled)
    for graph in cached:
        entry = cache.add(graph, extractor.extract(graph), frozenset())
        isub.add(entry)
        isuper.add(entry)
    return isub, isuper, verifier


def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    extractor = FeatureExtractor(max_path_length=args.max_path_length)
    pool = build_pool(database, args.distinct, args.alpha, args.seed)
    cached = pool[: args.cache_size]
    rng = random.Random(args.seed + 1)
    sampler = create_sampler("zipf", len(pool), alpha=args.alpha)
    stream = [pool[sampler.sample(rng)] for _ in range(args.num_queries)]
    features = {id(query): extractor.extract(query) for query in pool}

    compiled_isub, compiled_isuper, compiled_verifier = build_indexes(
        cached, extractor, compiled=True
    )
    dict_isub, dict_isuper, dict_verifier = build_indexes(
        cached, extractor, compiled=False
    )

    compiled_seconds = 0.0
    dict_seconds = 0.0
    identical = True
    sub_hits = super_hits = 0
    for query in stream:
        query_features = features[id(query)]

        start = time.perf_counter()
        fast_sub = compiled_isub.find_supergraphs(query, query_features)
        fast_super = compiled_isuper.find_subgraphs(query, query_features)
        compiled_seconds += time.perf_counter() - start

        start = time.perf_counter()
        slow_sub = dict_isub.find_supergraphs(query, query_features)
        slow_super = dict_isuper.find_subgraphs(query, query_features)
        dict_seconds += time.perf_counter() - start

        if [e.entry_id for e in fast_sub] != [e.entry_id for e in slow_sub]:
            identical = False
        if [e.entry_id for e in fast_super] != [e.entry_id for e in slow_super]:
            identical = False
        sub_hits += len(fast_sub)
        super_hits += len(fast_super)

    return {
        "dataset": args.dataset,
        "num_queries": len(stream),
        "distinct_queries": args.distinct,
        "cached_queries": len(cached),
        "alpha": args.alpha,
        "min_speedup_gate": args.min_speedup,
        "containment_tests": compiled_verifier.stats.tests,
        "containment_tests_identical": (
            compiled_verifier.stats.tests == dict_verifier.stats.tests
            and compiled_verifier.stats.positives == dict_verifier.stats.positives
        ),
        "sub_hits": sub_hits,
        "super_hits": super_hits,
        "dict_seconds": round(dict_seconds, 4),
        "compiled_seconds": round(compiled_seconds, 4),
        "containment_speedup": round(dict_seconds / max(compiled_seconds, 1e-9), 3),
        "answers_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--max-path-length", type=int, default=2)
    parser.add_argument("--num-queries", type=int, default=300)
    parser.add_argument("--distinct", type=int, default=250)
    parser.add_argument("--cache-size", type=int, default=200)
    parser.add_argument("--alpha", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--min-speedup", type=float, default=1.3)
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    failed = False
    if not result["answers_identical"]:
        print("FAIL: compiled containment answers diverge from the dict path", file=sys.stderr)
        failed = True
    if not result["containment_tests_identical"]:
        print("FAIL: compiled containment test accounting diverges", file=sys.stderr)
        failed = True
    if result["containment_speedup"] < args.min_speedup:
        print(
            f"FAIL: compiled containment speedup {result['containment_speedup']}x "
            f"is below the {args.min_speedup}x gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
