"""Benchmark: sequential vs batched-parallel query throughput.

Models the repeated-query traffic the paper targets: a pool of distinct
queries is generated from the dataset, then a stream is drawn from that pool
with a Zipf popularity distribution (popular queries recur — the situation
the iGQ cache and the batch feature memo both exploit).  The stream is run
three ways over fresh engines:

1. ``sequential`` — the plain one-at-a-time ``IGQ.query`` loop,
2. ``batch(1)`` — ``IGQ.run_batch`` with one worker (feature memoisation
   only; the deterministic fallback path),
3. ``batch(N)`` — ``IGQ.run_batch`` with a worker pool (``auto`` backend:
   process-based verification when the machine has more than one CPU).

All three must produce identical answer sets; the script exits non-zero if
they do not.  Results are printed as JSON (queries/sec per mode) and
optionally written to a file for the CI artifact trail.

Run directly::

    python benchmarks/bench_batch_throughput.py --num-queries 240 --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (  # noqa: E402
    IGQ,
    BatchConfig,
    CacheConfig,
    EngineConfig,
    default_num_workers,
    effective_cpu_count,
)
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.methods import create_method  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec  # noqa: E402
from repro.workloads.zipf import create_sampler  # noqa: E402


def build_stream(database, num_queries: int, distinct: int, alpha: float, seed: int):
    """A query stream of ``num_queries`` drawn Zipf-style from a distinct pool."""
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=alpha,
        seed=seed,
    )
    pool = QueryGenerator(database, spec).generate(distinct)
    rng = random.Random(seed + 1)
    sampler = create_sampler("zipf", len(pool), alpha=alpha)
    return [pool[sampler.sample(rng)] for _ in range(num_queries)]


def fresh_engine(
    database,
    method_name: str,
    cache_size: int,
    window_size: int,
    num_workers: int = 1,
    backend: str = "auto",
) -> IGQ:
    if method_name in ("ggsx", "grapes"):
        method = create_method(method_name, max_path_length=3)
    else:
        method = create_method(method_name)
    method.build_index(database)
    config = EngineConfig(
        cache=CacheConfig(size=cache_size, window=window_size),
        batch=BatchConfig(num_workers=num_workers, backend=backend),
    )
    engine = IGQ.from_config(method, config)
    engine.attach_prebuilt()
    return engine


def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    stream = build_stream(
        database, args.num_queries, args.distinct, args.alpha, args.seed
    )
    workers = args.workers if args.workers else default_num_workers()

    engine = fresh_engine(database, args.method, args.cache_size, args.window_size)
    start = time.perf_counter()
    sequential = [engine.query(query) for query in stream]
    sequential_seconds = time.perf_counter() - start

    engine = fresh_engine(database, args.method, args.cache_size, args.window_size)
    start = time.perf_counter()
    batch_one = engine.run_batch(stream)
    batch_one_seconds = time.perf_counter() - start

    engine = fresh_engine(
        database, args.method, args.cache_size, args.window_size,
        num_workers=workers, backend=args.backend,
    )
    start = time.perf_counter()
    batch_many = engine.run_batch(stream)
    batch_many_seconds = time.perf_counter() - start

    identical = all(
        set(a.answers) == set(b.answers) == set(c.answers)
        for a, b, c in zip(sequential, batch_one, batch_many)
    )
    n = len(stream)
    return {
        "dataset": args.dataset,
        "method": args.method,
        "num_queries": n,
        "distinct_queries": args.distinct,
        "alpha": args.alpha,
        "workers": workers,
        "backend": args.backend,
        "effective_cpus": effective_cpu_count(),
        "sequential_qps": round(n / sequential_seconds, 2),
        "batch1_qps": round(n / batch_one_seconds, 2),
        "batchN_qps": round(n / batch_many_seconds, 2),
        "batch1_speedup": round(sequential_seconds / batch_one_seconds, 3),
        "batchN_speedup": round(sequential_seconds / batch_many_seconds, 3),
        "answers_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--method", default="ggsx")
    parser.add_argument("--num-queries", type=int, default=240)
    parser.add_argument("--distinct", type=int, default=60)
    parser.add_argument("--alpha", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--cache-size", type=int, default=40)
    parser.add_argument("--window-size", type=int, default=10)
    parser.add_argument("--workers", type=int, default=0, help="0 = auto-pick")
    parser.add_argument("--backend", default="auto", help="auto|sequential|thread|process")
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if not result["answers_identical"]:
        print("FAIL: batched answers differ from the sequential path", file=sys.stderr)
        return 1
    if result["batchN_speedup"] < 1.0:
        print(
            f"note: run_batch({result['workers']}) did not beat the sequential loop "
            f"on this machine ({result['effective_cpus']} effective CPUs)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
