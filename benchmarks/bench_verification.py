"""Benchmark: compiled (bitset VF2) verification vs the dict-based baseline.

Two measurements over the same synthetic Zipf workload:

1. **Verification stage** — each query is filtered once; its candidate set
   is then verified twice against fresh verifiers: the PR-1 baseline
   (``Verifier(compiled=False, precheck=False)`` — a dict-based
   ``VF2Matcher`` per pair, no early-fail check) and the compiled fast path
   (query plan compiled once, database-cached bitset targets, signature
   pre-check).  Answers must be byte-identical; the run **fails** if they
   diverge or if the speedup falls below the gate (default 1.5x).  This is
   a pure-CPU comparison, so the gate holds on any machine.

2. **Pipelined planner** — the full query stream is run through
   ``IGQ.run_batch`` with the worker pool, once with ``pipeline=False`` and
   once with ``pipeline=True``.  Answers and the engine's cache state must
   be identical (hard failure otherwise); the latency ratio is reported,
   and is only meaningful on multi-core machines (on one CPU the pool —
   and therefore the pipeline — never engages).

Run directly::

    python benchmarks/bench_verification.py --num-queries 120
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (  # noqa: E402
    IGQ,
    BatchConfig,
    CacheConfig,
    EngineConfig,
    default_num_workers,
    effective_cpu_count,
)
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.isomorphism import Verifier  # noqa: E402
from repro.methods import create_method  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec  # noqa: E402
from repro.workloads.zipf import create_sampler  # noqa: E402


def build_stream(database, num_queries: int, distinct: int, alpha: float, seed: int):
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=alpha,
        seed=seed,
    )
    pool = QueryGenerator(database, spec).generate(distinct)
    rng = random.Random(seed + 1)
    sampler = create_sampler("zipf", len(pool), alpha=alpha)
    return [pool[sampler.sample(rng)] for _ in range(num_queries)]


def build_method(database, method_name: str, verifier: Verifier):
    if method_name in ("ggsx", "grapes"):
        method = create_method(method_name, max_path_length=3, verifier=verifier)
    else:
        method = create_method(method_name, verifier=verifier)
    method.build_index(database)
    return method


def bench_verification_stage(database, stream, method_name: str) -> dict:
    """Verify every query's candidate set through both verifier paths."""
    baseline_method = build_method(
        database, method_name, Verifier(compiled=False, precheck=False)
    )
    compiled_method = build_method(database, method_name, Verifier())
    database.precompile()

    baseline_seconds = 0.0
    compiled_seconds = 0.0
    identical = True
    tests = 0
    for query in stream:
        candidates = list(baseline_method.filter_candidates(query))
        tests += len(candidates)

        start = time.perf_counter()
        baseline_answers = baseline_method.verify(query, candidates)
        baseline_seconds += time.perf_counter() - start

        start = time.perf_counter()
        compiled_answers = compiled_method.verify(query, candidates)
        compiled_seconds += time.perf_counter() - start

        if sorted(map(repr, baseline_answers)) != sorted(map(repr, compiled_answers)):
            identical = False
    return {
        "verification_tests": tests,
        "baseline_verify_seconds": round(baseline_seconds, 4),
        "compiled_verify_seconds": round(compiled_seconds, 4),
        "verification_speedup": round(baseline_seconds / max(compiled_seconds, 1e-9), 3),
        "verification_answers_identical": identical,
    }


def cache_state(engine: IGQ):
    return sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )


def bench_pipelined_planner(database, stream, method_name: str, args) -> dict:
    """End-to-end batch latency with and without the pipelined planner."""
    workers = args.workers if args.workers else default_num_workers()
    runs = {}
    for pipeline in (False, True):
        method = build_method(database, method_name, Verifier())
        config = EngineConfig(
            cache=CacheConfig(size=args.cache_size, window=args.window_size),
            batch=BatchConfig(
                num_workers=workers, backend=args.backend, pipeline=pipeline
            ),
        )
        engine = IGQ.from_config(method, config)
        engine.attach_prebuilt()
        start = time.perf_counter()
        results = engine.run_batch(stream)
        runs[pipeline] = (
            time.perf_counter() - start,
            [tuple(sorted(map(repr, result.answers))) for result in results],
            cache_state(engine),
        )
    off_seconds, off_answers, off_state = runs[False]
    on_seconds, on_answers, on_state = runs[True]
    return {
        "workers": workers,
        "backend": args.backend,
        "batch_seconds_pipeline_off": round(off_seconds, 4),
        "batch_seconds_pipeline_on": round(on_seconds, 4),
        "pipeline_speedup": round(off_seconds / max(on_seconds, 1e-9), 3),
        "pipeline_answers_identical": on_answers == off_answers,
        "pipeline_cache_state_identical": on_state == off_state,
    }


def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    stream = build_stream(database, args.num_queries, args.distinct, args.alpha, args.seed)
    result = {
        "dataset": args.dataset,
        "method": args.method,
        "num_queries": len(stream),
        "distinct_queries": args.distinct,
        "alpha": args.alpha,
        "effective_cpus": effective_cpu_count(),
        "min_speedup_gate": args.min_speedup,
    }
    result.update(bench_verification_stage(database, stream, args.method))
    result.update(bench_pipelined_planner(database, stream, args.method, args))
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--method", default="ggsx")
    parser.add_argument("--num-queries", type=int, default=120)
    parser.add_argument("--distinct", type=int, default=40)
    parser.add_argument("--alpha", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--cache-size", type=int, default=40)
    parser.add_argument("--window-size", type=int, default=10)
    parser.add_argument("--workers", type=int, default=0, help="0 = auto-pick")
    parser.add_argument("--backend", default="auto", help="auto|sequential|thread|process")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    failed = False
    if not result["verification_answers_identical"]:
        print("FAIL: compiled verification answers diverge from baseline", file=sys.stderr)
        failed = True
    if result["verification_speedup"] < args.min_speedup:
        print(
            f"FAIL: compiled verification speedup {result['verification_speedup']}x "
            f"is below the {args.min_speedup}x gate",
            file=sys.stderr,
        )
        failed = True
    if not result["pipeline_answers_identical"] or not result["pipeline_cache_state_identical"]:
        print("FAIL: pipelined planner diverges from the non-pipelined run", file=sys.stderr)
        failed = True
    if result["pipeline_speedup"] < 1.0 and result["effective_cpus"] > 1:
        print(
            f"note: pipelining did not reduce batch latency on this run "
            f"({result['pipeline_speedup']}x on {result['effective_cpus']} CPUs)",
            file=sys.stderr,
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
