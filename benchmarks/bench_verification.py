"""Benchmark: compiled (bitset VF2) verification vs the dict-based baseline.

Two measurements over the same synthetic Zipf workload:

1. **Verification stage** — each query is filtered once; its candidate set
   is then verified against fresh verifiers on up to five paths: the PR-1
   baseline (``Verifier(compiled=False, precheck=False)`` — a dict-based
   ``VF2Matcher`` per pair, no early-fail check), the compiled bigint
   kernel (``kernel="bigint"``: query plan compiled once, database-cached
   bitset targets, signature pre-check), the native C kernel
   (``kernel="native"``, when the shared library compiles/loads), the
   production path (``kernel="auto"``: batched ``DatasetSignatures``
   pre-reject plus whatever per-pair backend ``resolve_kernel`` picks in
   this process — native when loadable, else the PR-6 cost model) and —
   when numpy >= 2.0 is importable — the forced array kernel
   (``kernel="numpy"``, *informational only*: per-pair numpy dispatch
   loses to CPython's C-loop bigint bitops on real workload sizes — see
   ``docs/performance.md``).  All answers must be byte-identical; the
   run **fails** on divergence, if the bigint speedup falls below the
   gate (default 1.5x), or if the production path's speedup over the
   uncompiled baseline falls below its own gate (default 2.0x, skipped
   when the path degenerates to bigint).  Pure-CPU comparisons, so the
   gates hold on any machine.

   When the native kernel is loadable a third gate compares it against
   the bigint kernel it replaces *at kernel granularity*: every unique
   ``(plan, target)`` pair of the corpus is swept through
   ``compiled_has_embedding`` under both backends (answers must agree
   pair by pair) and the native kernel must win by at least 2.0x.  The
   end-to-end per-path verify times above are reported alongside but not
   gated on the native/bigint ratio — at a few microseconds per pair the
   shared Python dispatch floors that ratio and scheduler noise swamps
   it, while the kernel-to-kernel sweep is stable on a loaded machine.

2. **Pipelined planner** — the full query stream is run through
   ``IGQ.run_batch`` with the worker pool, once with ``pipeline=False`` and
   once with ``pipeline=True``.  Answers and the engine's cache state must
   be identical (hard failure otherwise); the latency ratio is reported,
   and is only meaningful on multi-core machines (on one CPU the pool —
   and therefore the pipeline — never engages).

Run directly::

    python benchmarks/bench_verification.py --num-queries 120
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (  # noqa: E402
    IGQ,
    BatchConfig,
    CacheConfig,
    EngineConfig,
    default_num_workers,
    effective_cpu_count,
)
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.isomorphism import (  # noqa: E402
    Verifier,
    native_kernel_available,
    numpy_kernel_available,
)
from repro.methods import create_method  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec  # noqa: E402
from repro.workloads.zipf import create_sampler  # noqa: E402


def build_stream(database, num_queries: int, distinct: int, alpha: float, seed: int):
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=alpha,
        seed=seed,
    )
    pool = QueryGenerator(database, spec).generate(distinct)
    rng = random.Random(seed + 1)
    sampler = create_sampler("zipf", len(pool), alpha=alpha)
    return [pool[sampler.sample(rng)] for _ in range(num_queries)]


def build_method(database, method_name: str, verifier: Verifier):
    if method_name in ("ggsx", "grapes"):
        method = create_method(method_name, max_path_length=3, verifier=verifier)
    else:
        method = create_method(method_name, verifier=verifier)
    method.build_index(database)
    return method


def bench_verification_stage(database, stream, method_name: str, repeats: int = 3) -> dict:
    """Verify every query's candidate set through every verifier path."""
    methods = {
        "baseline": build_method(
            database, method_name, Verifier(compiled=False, precheck=False)
        ),
        "bigint": build_method(database, method_name, Verifier(kernel="bigint")),
    }
    if native_kernel_available():
        methods["native"] = build_method(
            database, method_name, Verifier(kernel="native")
        )
    if native_kernel_available() or numpy_kernel_available():
        # "auto" is the production path: batched prereject + whatever
        # per-pair backend resolve_kernel picks here (native > cost model).
        methods["auto"] = build_method(database, method_name, Verifier(kernel="auto"))
    if numpy_kernel_available():
        # "numpy" forces the array kernel per pair and is reported for the
        # record, not gated.
        methods["numpy"] = build_method(database, method_name, Verifier(kernel="numpy"))
    database.precompile()

    # One untimed sweep over the distinct queries per path: plan memos,
    # native structs and the batched-prereject arrays are amortised state in
    # any long-running deployment, so the gates compare steady-state
    # verification instead of charging first-touch costs to whichever leg
    # happens to run first.
    for method in methods.values():
        for query in dict.fromkeys(stream):
            method.verify(query, list(method.filter_candidates(query)))

    # Filter once (all paths verify the same candidate lists), then time
    # each path as full sweeps over the stream: interleaving the paths
    # per query would hand whichever leg runs *after* the native kernel a
    # hot-cache advantage on the very pairs it is compared against.  Each
    # sweep is repeated and the *minimum* is kept — the paths differ by
    # microseconds per pair, so one scheduler preemption inside a single
    # sweep would otherwise dominate the ratio the gates check.
    candidate_lists = [list(methods["baseline"].filter_candidates(q)) for q in stream]
    tests = sum(len(candidates) for candidates in candidate_lists)

    seconds = {}
    answers = {}
    for name, method in methods.items():
        best = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            answers[name] = [
                sorted(map(repr, method.verify(query, candidates)))
                for query, candidates in zip(stream, candidate_lists)
            ]
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        seconds[name] = best
    identical = all(answers[name] == answers["baseline"] for name in methods)

    baseline_seconds = seconds["baseline"]
    result = {
        "verification_tests": tests,
        "numpy_kernel_available": numpy_kernel_available(),
        "native_kernel_available": native_kernel_available(),
        "baseline_verify_seconds": round(baseline_seconds, 4),
        "compiled_verify_seconds": round(seconds["bigint"], 4),
        "verification_speedup": round(baseline_seconds / max(seconds["bigint"], 1e-9), 3),
        "verification_answers_identical": identical,
    }
    if "native" in seconds:
        result["native_verify_seconds"] = round(seconds["native"], 4)
        result["native_speedup_vs_baseline"] = round(
            baseline_seconds / max(seconds["native"], 1e-9), 3
        )
        result.update(
            bench_native_kernel(
                methods["bigint"], database, stream, candidate_lists, repeats
            )
        )
    if "auto" in seconds:
        result["auto_resolved_kernel"] = (
            "native" if native_kernel_available() else "cost-model"
        )
        result["auto_verify_seconds"] = round(seconds["auto"], 4)
        result["auto_verification_speedup"] = round(
            baseline_seconds / max(seconds["auto"], 1e-9), 3
        )
    if "numpy" in seconds:
        result["numpy_forced_verify_seconds"] = round(seconds["numpy"], 4)
        result["numpy_forced_speedup"] = round(
            baseline_seconds / max(seconds["numpy"], 1e-9), 3
        )
    return result


def bench_native_kernel(method, database, stream, candidate_lists, repeats: int) -> dict:
    """Kernel-granularity comparison: native vs bigint over the corpus pairs.

    Sweeps every unique ``(plan, target)`` pair through
    ``compiled_has_embedding`` with each backend forced (pre-check skipped,
    so the measured work is exactly the search the backends implement),
    keeping the minimum over ``repeats`` timed multi-pass sweeps.  Both
    backends must agree on every pair.
    """
    from repro.isomorphism.compiled import compiled_has_embedding

    pairs = []
    seen = set()
    for query, candidates in zip(stream, candidate_lists):
        plan = method.verifier.compile_pattern(query)
        for graph_id in candidates:
            if (id(plan), graph_id) not in seen:
                seen.add((id(plan), graph_id))
                pairs.append((plan, database.compiled_target(graph_id)))

    passes = 5
    seconds = {}
    verdicts = {}
    for kernel in ("bigint", "native"):
        best = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for _ in range(passes):
                answers = [
                    compiled_has_embedding(plan, target, kernel=kernel, prechecked=True)
                    for plan, target in pairs
                ]
            best = min(best or float("inf"), time.perf_counter() - start)
        seconds[kernel] = best
        verdicts[kernel] = answers
    return {
        "kernel_sweep_pairs": len(pairs),
        "kernel_bigint_seconds": round(seconds["bigint"], 4),
        "kernel_native_seconds": round(seconds["native"], 4),
        "native_kernel_speedup": round(
            seconds["bigint"] / max(seconds["native"], 1e-9), 3
        ),
        "native_kernel_answers_identical": verdicts["bigint"] == verdicts["native"],
    }


def cache_state(engine: IGQ):
    return sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )


def bench_pipelined_planner(database, stream, method_name: str, args) -> dict:
    """End-to-end batch latency with and without the pipelined planner."""
    workers = args.workers if args.workers else default_num_workers()
    runs = {}
    for pipeline in (False, True):
        method = build_method(database, method_name, Verifier())
        config = EngineConfig(
            cache=CacheConfig(size=args.cache_size, window=args.window_size),
            batch=BatchConfig(
                num_workers=workers, backend=args.backend, pipeline=pipeline
            ),
        )
        engine = IGQ.from_config(method, config)
        engine.attach_prebuilt()
        start = time.perf_counter()
        results = engine.run_batch(stream)
        runs[pipeline] = (
            time.perf_counter() - start,
            [tuple(sorted(map(repr, result.answers))) for result in results],
            cache_state(engine),
        )
    off_seconds, off_answers, off_state = runs[False]
    on_seconds, on_answers, on_state = runs[True]
    return {
        "workers": workers,
        "backend": args.backend,
        "batch_seconds_pipeline_off": round(off_seconds, 4),
        "batch_seconds_pipeline_on": round(on_seconds, 4),
        "pipeline_speedup": round(off_seconds / max(on_seconds, 1e-9), 3),
        "pipeline_answers_identical": on_answers == off_answers,
        "pipeline_cache_state_identical": on_state == off_state,
    }


def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    stream = build_stream(database, args.num_queries, args.distinct, args.alpha, args.seed)
    result = {
        "dataset": args.dataset,
        "method": args.method,
        "num_queries": len(stream),
        "distinct_queries": args.distinct,
        "alpha": args.alpha,
        "effective_cpus": effective_cpu_count(),
        "min_speedup_gate": args.min_speedup,
    }
    result.update(
        bench_verification_stage(database, stream, args.method, repeats=args.repeats)
    )
    result.update(bench_pipelined_planner(database, stream, args.method, args))
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--method", default="ggsx")
    parser.add_argument("--num-queries", type=int, default=120)
    parser.add_argument("--distinct", type=int, default=40)
    parser.add_argument("--alpha", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="verification sweeps per path; the minimum is reported",
    )
    parser.add_argument("--cache-size", type=int, default=40)
    parser.add_argument("--window-size", type=int, default=10)
    parser.add_argument("--workers", type=int, default=0, help="0 = auto-pick")
    parser.add_argument("--backend", default="auto", help="auto|sequential|thread|process")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument(
        "--min-auto-speedup",
        "--min-numpy-speedup",
        dest="min_auto_speedup",
        type=float,
        default=2.0,
        help="gate on the kernel='auto' production path vs the uncompiled "
        "baseline (skipped when neither the native library nor numpy >= 2.0 "
        "is available)",
    )
    parser.add_argument(
        "--min-native-speedup",
        type=float,
        default=2.0,
        help="gate on the native C kernel vs the pure-Python bigint kernel "
        "it replaces (skipped when the shared library cannot be loaded)",
    )
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    failed = False
    if not result["verification_answers_identical"]:
        print("FAIL: compiled verification answers diverge from baseline", file=sys.stderr)
        failed = True
    if result["verification_speedup"] < args.min_speedup:
        print(
            f"FAIL: compiled verification speedup {result['verification_speedup']}x "
            f"is below the {args.min_speedup}x gate",
            file=sys.stderr,
        )
        failed = True
    if "auto_verification_speedup" in result:
        if result["auto_verification_speedup"] < args.min_auto_speedup:
            print(
                f"FAIL: kernel='auto' path speedup {result['auto_verification_speedup']}x "
                f"over the uncompiled baseline is below the {args.min_auto_speedup}x gate",
                file=sys.stderr,
            )
            failed = True
    else:
        print(
            "note: neither native library nor numpy >= 2.0 available; "
            "kernel='auto' leg skipped",
            file=sys.stderr,
        )
    if "native_kernel_speedup" in result:
        if not result["native_kernel_answers_identical"]:
            print("FAIL: native kernel answers diverge from the bigint kernel", file=sys.stderr)
            failed = True
        if result["native_kernel_speedup"] < args.min_native_speedup:
            print(
                f"FAIL: native kernel speedup {result['native_kernel_speedup']}x "
                f"over the bigint kernel is below the {args.min_native_speedup}x gate",
                file=sys.stderr,
            )
            failed = True
    else:
        print("note: native library unavailable; native-kernel leg skipped", file=sys.stderr)
    if "numpy_forced_speedup" not in result:
        print("note: numpy >= 2.0 unavailable; forced numpy leg skipped", file=sys.stderr)
    if not result["pipeline_answers_identical"] or not result["pipeline_cache_state_identical"]:
        print("FAIL: pipelined planner diverges from the non-pipelined run", file=sys.stderr)
        failed = True
    if result["pipeline_speedup"] < 1.0 and result["effective_cpus"] > 1:
        print(
            f"note: pipelining did not reduce batch latency on this run "
            f"({result['pipeline_speedup']}x on {result['effective_cpus']} CPUs)",
            file=sys.stderr,
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
