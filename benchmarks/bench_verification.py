"""Benchmark: compiled (bitset VF2) verification vs the dict-based baseline.

Two measurements over the same synthetic Zipf workload:

1. **Verification stage** — each query is filtered once; its candidate set
   is then verified against fresh verifiers on up to four paths: the PR-1
   baseline (``Verifier(compiled=False, precheck=False)`` — a dict-based
   ``VF2Matcher`` per pair, no early-fail check), the compiled bigint
   kernel (``kernel="bigint"``: query plan compiled once, database-cached
   bitset targets, signature pre-check) and — when numpy >= 2.0 is
   importable — the numpy-enabled production path (``kernel="auto"``:
   batched ``DatasetSignatures`` pre-reject + cost-model per-pair kernel)
   plus the forced array kernel (``kernel="numpy"``, *informational
   only*: per-pair numpy dispatch loses to CPython's C-loop bigint
   bitops on real workload sizes — see ``docs/performance.md``).  All
   answers must be byte-identical; the run **fails** on divergence, if
   the bigint speedup falls below the gate (default 1.5x), or if the
   numpy-enabled path's speedup over the uncompiled baseline falls below
   its own gate (default 2.0x).  Pure-CPU comparisons, so the gates hold
   on any machine.

2. **Pipelined planner** — the full query stream is run through
   ``IGQ.run_batch`` with the worker pool, once with ``pipeline=False`` and
   once with ``pipeline=True``.  Answers and the engine's cache state must
   be identical (hard failure otherwise); the latency ratio is reported,
   and is only meaningful on multi-core machines (on one CPU the pool —
   and therefore the pipeline — never engages).

Run directly::

    python benchmarks/bench_verification.py --num-queries 120
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (  # noqa: E402
    IGQ,
    BatchConfig,
    CacheConfig,
    EngineConfig,
    default_num_workers,
    effective_cpu_count,
)
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.isomorphism import Verifier, numpy_kernel_available  # noqa: E402
from repro.methods import create_method  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec  # noqa: E402
from repro.workloads.zipf import create_sampler  # noqa: E402


def build_stream(database, num_queries: int, distinct: int, alpha: float, seed: int):
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=alpha,
        seed=seed,
    )
    pool = QueryGenerator(database, spec).generate(distinct)
    rng = random.Random(seed + 1)
    sampler = create_sampler("zipf", len(pool), alpha=alpha)
    return [pool[sampler.sample(rng)] for _ in range(num_queries)]


def build_method(database, method_name: str, verifier: Verifier):
    if method_name in ("ggsx", "grapes"):
        method = create_method(method_name, max_path_length=3, verifier=verifier)
    else:
        method = create_method(method_name, verifier=verifier)
    method.build_index(database)
    return method


def bench_verification_stage(database, stream, method_name: str) -> dict:
    """Verify every query's candidate set through every verifier path."""
    methods = {
        "baseline": build_method(
            database, method_name, Verifier(compiled=False, precheck=False)
        ),
        "bigint": build_method(database, method_name, Verifier(kernel="bigint")),
    }
    if numpy_kernel_available():
        # "auto" is the numpy-enabled production path (batched prereject +
        # cost-model per-pair kernel); "numpy" forces the array kernel per
        # pair and is reported for the record, not gated.
        methods["auto"] = build_method(database, method_name, Verifier(kernel="auto"))
        methods["numpy"] = build_method(database, method_name, Verifier(kernel="numpy"))
    database.precompile()

    seconds = {name: 0.0 for name in methods}
    identical = True
    tests = 0
    for query in stream:
        candidates = list(methods["baseline"].filter_candidates(query))
        tests += len(candidates)

        answers = {}
        for name, method in methods.items():
            start = time.perf_counter()
            answers[name] = sorted(map(repr, method.verify(query, candidates)))
            seconds[name] += time.perf_counter() - start
        if any(answers[name] != answers["baseline"] for name in methods):
            identical = False

    baseline_seconds = seconds["baseline"]
    result = {
        "verification_tests": tests,
        "numpy_kernel_available": numpy_kernel_available(),
        "baseline_verify_seconds": round(baseline_seconds, 4),
        "compiled_verify_seconds": round(seconds["bigint"], 4),
        "verification_speedup": round(baseline_seconds / max(seconds["bigint"], 1e-9), 3),
        "verification_answers_identical": identical,
    }
    if "auto" in seconds:
        result["numpy_auto_verify_seconds"] = round(seconds["auto"], 4)
        result["numpy_verification_speedup"] = round(
            baseline_seconds / max(seconds["auto"], 1e-9), 3
        )
        result["numpy_forced_verify_seconds"] = round(seconds["numpy"], 4)
        result["numpy_forced_speedup"] = round(
            baseline_seconds / max(seconds["numpy"], 1e-9), 3
        )
    return result


def cache_state(engine: IGQ):
    return sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )


def bench_pipelined_planner(database, stream, method_name: str, args) -> dict:
    """End-to-end batch latency with and without the pipelined planner."""
    workers = args.workers if args.workers else default_num_workers()
    runs = {}
    for pipeline in (False, True):
        method = build_method(database, method_name, Verifier())
        config = EngineConfig(
            cache=CacheConfig(size=args.cache_size, window=args.window_size),
            batch=BatchConfig(
                num_workers=workers, backend=args.backend, pipeline=pipeline
            ),
        )
        engine = IGQ.from_config(method, config)
        engine.attach_prebuilt()
        start = time.perf_counter()
        results = engine.run_batch(stream)
        runs[pipeline] = (
            time.perf_counter() - start,
            [tuple(sorted(map(repr, result.answers))) for result in results],
            cache_state(engine),
        )
    off_seconds, off_answers, off_state = runs[False]
    on_seconds, on_answers, on_state = runs[True]
    return {
        "workers": workers,
        "backend": args.backend,
        "batch_seconds_pipeline_off": round(off_seconds, 4),
        "batch_seconds_pipeline_on": round(on_seconds, 4),
        "pipeline_speedup": round(off_seconds / max(on_seconds, 1e-9), 3),
        "pipeline_answers_identical": on_answers == off_answers,
        "pipeline_cache_state_identical": on_state == off_state,
    }


def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    stream = build_stream(database, args.num_queries, args.distinct, args.alpha, args.seed)
    result = {
        "dataset": args.dataset,
        "method": args.method,
        "num_queries": len(stream),
        "distinct_queries": args.distinct,
        "alpha": args.alpha,
        "effective_cpus": effective_cpu_count(),
        "min_speedup_gate": args.min_speedup,
    }
    result.update(bench_verification_stage(database, stream, args.method))
    result.update(bench_pipelined_planner(database, stream, args.method, args))
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--method", default="ggsx")
    parser.add_argument("--num-queries", type=int, default=120)
    parser.add_argument("--distinct", type=int, default=40)
    parser.add_argument("--alpha", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--cache-size", type=int, default=40)
    parser.add_argument("--window-size", type=int, default=10)
    parser.add_argument("--workers", type=int, default=0, help="0 = auto-pick")
    parser.add_argument("--backend", default="auto", help="auto|sequential|thread|process")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument(
        "--min-numpy-speedup",
        type=float,
        default=2.0,
        help="gate on the numpy-enabled kernel='auto' path vs the uncompiled "
        "baseline (skipped when numpy >= 2.0 is unavailable)",
    )
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    failed = False
    if not result["verification_answers_identical"]:
        print("FAIL: compiled verification answers diverge from baseline", file=sys.stderr)
        failed = True
    if result["verification_speedup"] < args.min_speedup:
        print(
            f"FAIL: compiled verification speedup {result['verification_speedup']}x "
            f"is below the {args.min_speedup}x gate",
            file=sys.stderr,
        )
        failed = True
    if "numpy_verification_speedup" in result:
        if result["numpy_verification_speedup"] < args.min_numpy_speedup:
            print(
                f"FAIL: numpy-enabled path speedup {result['numpy_verification_speedup']}x "
                f"over the uncompiled baseline is below the {args.min_numpy_speedup}x gate",
                file=sys.stderr,
            )
            failed = True
    else:
        print("note: numpy >= 2.0 unavailable; numpy-kernel leg skipped", file=sys.stderr)
    if not result["pipeline_answers_identical"] or not result["pipeline_cache_state_identical"]:
        print("FAIL: pipelined planner diverges from the non-pipelined run", file=sys.stderr)
        failed = True
    if result["pipeline_speedup"] < 1.0 and result["effective_cpus"] > 1:
        print(
            f"note: pipelining did not reduce batch latency on this run "
            f"({result['pipeline_speedup']}x on {result['effective_cpus']} CPUs)",
            file=sys.stderr,
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
