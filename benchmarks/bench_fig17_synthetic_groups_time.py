"""Figure 17: query-time speedup per query-size group (dense synthetic, Grapes(6))."""

from repro.experiments import figure17_query_groups_synthetic_time

from .conftest import GROUP_CACHE_SIZES, QUICK_DENSE, run_figure


def test_fig17_query_group_time_speedup_synthetic(benchmark):
    result = run_figure(
        benchmark,
        figure17_query_groups_synthetic_time,
        cache_sizes=GROUP_CACHE_SIZES,
        **QUICK_DENSE,
    )
    assert any(row["query_group"] == "all" for row in result["rows"])
