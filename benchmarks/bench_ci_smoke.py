"""CI bench-smoke: one tiny speedup experiment, emitted as a JSON artifact.

Runs a single small-synthetic ``run_speedup_experiment`` configuration (a
few dozen queries, seconds of wall clock) and writes the headline numbers —
isomorphism-test and time speedups of iGQ over the base method, plus the
batch-throughput figures — to a JSON file.  The CI workflow uploads that
file on every run, so a performance regression shows up as a diff in the
per-PR artifact rather than silently rotting.

Run directly::

    python benchmarks/bench_ci_smoke.py --output bench-smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import effective_cpu_count  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    ExperimentConfig,
    run_speedup_experiment,
)

#: deliberately tiny: the point is trend visibility per PR, not precision
SMOKE_CONFIG = ExperimentConfig(
    dataset="synthetic",
    method="ggsx",
    workload="zipf-zipf",
    alpha=1.4,
    num_queries=60,
    cache_size=20,
    window_size=5,
)


def run_smoke() -> dict:
    start = time.perf_counter()
    outcome = run_speedup_experiment(SMOKE_CONFIG)
    wall_seconds = time.perf_counter() - start
    return {
        "experiment": outcome.as_dict(),
        "base": outcome.base.as_dict(),
        "igq": outcome.igq.as_dict(),
        "wall_seconds": round(wall_seconds, 3),
        "python": platform.python_version(),
        "effective_cpus": effective_cpu_count(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--output", default="bench-smoke.json")
    args = parser.parse_args(argv)

    result = run_smoke()
    text = json.dumps(result, indent=2)
    print(text)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")

    # Sanity gates, not performance gates: the numbers must exist and the
    # iGQ run must not have done *more* isomorphism tests than the base.
    igq_tests = result["experiment"]["igq_avg_tests"]
    base_tests = result["experiment"]["base_avg_tests"]
    if igq_tests > base_tests:
        print(
            f"FAIL: iGQ averaged more isomorphism tests than the base method "
            f"({igq_tests} > {base_tests})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
