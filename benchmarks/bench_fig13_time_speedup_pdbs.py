"""Figure 13: speedup in query processing time, PDBS-like dataset."""

from repro.experiments import figure13_time_speedup_pdbs

from .conftest import QUICK_SPARSE, run_figure


def test_fig13_time_speedup_pdbs(benchmark):
    result = run_figure(benchmark, figure13_time_speedup_pdbs, **QUICK_SPARSE)
    assert len(result["rows"]) == 16
    assert any(row["speedup"] > 1.2 for row in result["rows"])
