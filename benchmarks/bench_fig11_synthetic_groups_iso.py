"""Figure 11: iso-test speedup per query-size group (dense synthetic, Grapes(6))."""

from repro.experiments import figure11_query_groups_synthetic_iso

from .conftest import GROUP_CACHE_SIZES, QUICK_DENSE, run_figure


def test_fig11_query_group_iso_speedup_synthetic(benchmark):
    result = run_figure(
        benchmark,
        figure11_query_groups_synthetic_iso,
        cache_sizes=GROUP_CACHE_SIZES,
        **QUICK_DENSE,
    )
    overall = [row for row in result["rows"] if row["query_group"] == "all"]
    assert all(row["speedup"] >= 1.0 for row in overall)
