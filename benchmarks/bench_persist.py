"""Benchmark: crash durability of the persist subsystem, CI-gated.

A child process runs a persistent engine (``persist.dir`` set, WAL fsynced
per window flush) over a deterministic Zipf-skewed query stream, reporting
every window flush on stdout.  The parent **SIGKILLs** it mid-stream — no
atexit hooks, no flushing, the exact failure mode the WAL exists for — and
then warm-starts an engine from the same directory.  The run **fails** if

* the recovered query counter is not a window-flush boundary (a torn or
  half-applied WAL batch leaked into the visible state),
* the warm engine's answers or cache state diverge anywhere from a
  never-killed reference engine fed the same stream (byte-identity leg), or
* the warm engine's hit rate over its *first* post-restart flush window
  falls below ``--min-hit-ratio`` (default 0.8) of the steady-state hit
  rate the reference engine sees on the same window.

A cold engine's hit rate on that window is also recorded — the gap between
cold and warm is what the snapshot + WAL replay buys.

Run directly::

    python benchmarks/bench_persist.py
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import IGQ, CacheConfig, EngineConfig  # noqa: E402
from repro.core.config import PersistConfig  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402
from repro.methods import create_method  # noqa: E402
from repro.workloads.generator import QueryGenerator, WorkloadSpec  # noqa: E402


def build_stream(database, args) -> list:
    """The deterministic query stream both processes derive independently."""
    spec = WorkloadSpec(
        name="zipf-zipf",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=args.alpha,
        seed=args.seed,
    )
    pool = QueryGenerator(database, spec).generate(args.distinct)
    rng = random.Random(args.seed + 1)
    return [
        pool[min(int(rng.paretovariate(args.alpha)) - 1, len(pool) - 1)]
        for _ in range(args.stream)
    ]


def build_engine(database, args, persist_dir=None) -> IGQ:
    config = EngineConfig(
        cache=CacheConfig(size=args.cache_size, window=args.window_size),
        persist=(
            PersistConfig(dir=persist_dir, fsync="flush")
            if persist_dir is not None
            else PersistConfig()
        ),
    )
    engine = IGQ.from_config(
        create_method("ggsx", max_path_length=args.max_path_length), config
    )
    engine.build_index(database)
    return engine


def fingerprint(engine, results) -> tuple:
    """Everything the byte-identity gate compares."""
    answers = [tuple(sorted(map(repr, result.answers))) for result in results]
    accounting = [
        (result.num_sub_hits, result.num_super_hits, result.exact_hit)
        for result in results
    ]
    cache_state = sorted(
        (
            entry.entry_id,
            entry.graph.name,
            tuple(sorted(map(repr, entry.answer))),
            entry.hits,
            entry.removed,
            round(entry.alleviated_cost, 9),
            entry.added_at,
        )
        for entry in engine.cache.entries()
    )
    return (answers, accounting, cache_state)


def hit_rate(results) -> float:
    hits = sum(
        1
        for result in results
        if result.exact_hit or result.num_sub_hits or result.num_super_hits
    )
    return hits / len(results) if results else 0.0


# ----------------------------------------------------------------------
# Child: the process that gets killed
# ----------------------------------------------------------------------
def run_child(args) -> int:
    database = load_dataset(args.dataset, scale=args.scale)
    stream = build_stream(database, args)
    engine = build_engine(database, args, persist_dir=args.dir)
    for index, query in enumerate(stream):
        engine.query(query)
        if (index + 1) % args.window_size == 0:
            # One line per durable flush; the parent counts these to pick
            # its kill point, so they must hit the pipe immediately.
            print(f"FLUSH {index + 1}", flush=True)
    print("DONE", flush=True)
    return 0


def spawn_and_kill(args, persist_dir: str) -> int:
    """Run the child, SIGKILL it after ``--kill-after`` flushes."""
    child = subprocess.Popen(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--child",
            "--dir",
            persist_dir,
            "--dataset",
            args.dataset,
            "--scale",
            str(args.scale),
            "--stream",
            str(args.stream),
            "--distinct",
            str(args.distinct),
            "--cache-size",
            str(args.cache_size),
            "--window-size",
            str(args.window_size),
            "--max-path-length",
            str(args.max_path_length),
            "--alpha",
            str(args.alpha),
            "--seed",
            str(args.seed),
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    flushes = 0
    try:
        for line in child.stdout:
            if line.startswith("FLUSH"):
                flushes += 1
                if flushes >= args.kill_after:
                    child.kill()  # SIGKILL: no cleanup of any kind runs
                    break
            elif line.startswith("DONE"):
                raise RuntimeError(
                    "the child finished the whole stream before the kill "
                    "point; raise --stream or lower --kill-after"
                )
    finally:
        try:
            child.kill()
        except OSError:
            pass
        child.wait()
        child.stdout.close()
    return flushes


# ----------------------------------------------------------------------
# Parent: recovery measurement
# ----------------------------------------------------------------------
def run_benchmark(args) -> dict:
    database = load_dataset(args.dataset, scale=args.scale)
    stream = build_stream(database, args)

    persist_dir = tempfile.mkdtemp(prefix="bench-persist-")
    flushes_seen = spawn_and_kill(args, persist_dir)

    restart_started = time.perf_counter()
    warm = build_engine(database, args, persist_dir=persist_dir)
    restart_seconds = time.perf_counter() - restart_started
    recovered = warm.cache.query_counter
    boundary_ok = recovered > 0 and recovered % args.window_size == 0

    # Never-killed reference: the same stream prefix on one engine.
    reference = build_engine(database, args)
    for query in stream[:recovered]:
        reference.query(query)

    window = stream[recovered : recovered + args.window_size]
    continuation = stream[recovered : recovered + 3 * args.window_size]
    warm_results = [warm.query(query) for query in continuation]
    reference_results = [reference.query(query) for query in continuation]
    identical = fingerprint(warm, warm_results) == fingerprint(
        reference, reference_results
    )

    warm_window_rate = hit_rate(warm_results[: len(window)])
    steady_window_rate = hit_rate(reference_results[: len(window)])

    # Cold contrast: what that window looks like with no recovered state.
    cold = build_engine(database, args)
    cold_window_rate = hit_rate([cold.query(query) for query in window])

    warm.close()
    reference.close()
    cold.close()

    ratio = (
        warm_window_rate / steady_window_rate if steady_window_rate > 0 else 1.0
    )
    return {
        "dataset": args.dataset,
        "stream_length": len(stream),
        "distinct_queries": args.distinct,
        "cache_size": args.cache_size,
        "window_size": args.window_size,
        "kill_after_flushes": args.kill_after,
        "flushes_before_kill": flushes_seen,
        "queries_recovered": recovered,
        "recovered_on_flush_boundary": boundary_ok,
        "restart_seconds": round(restart_seconds, 4),
        "warm_first_window_hit_rate": round(warm_window_rate, 4),
        "steady_state_hit_rate": round(steady_window_rate, 4),
        "cold_first_window_hit_rate": round(cold_window_rate, 4),
        "warm_to_steady_ratio": round(ratio, 4),
        "min_hit_ratio_gate": args.min_hit_ratio,
        "answers_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--max-path-length", type=int, default=3)
    parser.add_argument("--stream", type=int, default=240,
                        help="total deterministic query stream length")
    parser.add_argument("--distinct", type=int, default=20)
    parser.add_argument("--cache-size", type=int, default=40)
    parser.add_argument("--window-size", type=int, default=10)
    parser.add_argument("--kill-after", type=int, default=12,
                        help="SIGKILL the child after this many window flushes")
    parser.add_argument("--alpha", type=float, default=1.4)
    parser.add_argument("--seed", type=int, default=31)
    parser.add_argument("--min-hit-ratio", type=float, default=0.8)
    parser.add_argument("--output", default=None, help="write the JSON result here too")
    args = parser.parse_args(argv)

    if args.child:
        return run_child(args)

    result = run_benchmark(args)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    failed = False
    if not result["recovered_on_flush_boundary"]:
        print(
            f"FAIL: recovered query counter {result['queries_recovered']} is "
            "not a window-flush boundary",
            file=sys.stderr,
        )
        failed = True
    if not result["answers_identical"]:
        print(
            "FAIL: post-restart answers diverge from the never-killed engine",
            file=sys.stderr,
        )
        failed = True
    if result["warm_to_steady_ratio"] < args.min_hit_ratio:
        print(
            f"FAIL: warm first-window hit rate is only "
            f"{result['warm_to_steady_ratio']}x steady state, below the "
            f"{args.min_hit_ratio}x gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
