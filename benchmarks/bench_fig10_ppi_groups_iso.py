"""Figure 10: iso-test speedup per query-size group (PPI-like, Grapes(6))."""

from repro.experiments import figure10_query_groups_ppi_iso

from .conftest import GROUP_CACHE_SIZES, QUICK_DENSE, run_figure


def test_fig10_query_group_iso_speedup_ppi(benchmark):
    result = run_figure(
        benchmark,
        figure10_query_groups_ppi_iso,
        cache_sizes=GROUP_CACHE_SIZES,
        **QUICK_DENSE,
    )
    overall = [row for row in result["rows"] if row["query_group"] == "all"]
    assert len(overall) == len(GROUP_CACHE_SIZES)
    assert all(row["speedup"] >= 1.0 for row in overall)
