"""Figure 3: candidates / answers / false positives on the PDBS-like dataset."""

from repro.experiments import figure3_filtering_pdbs

from .conftest import QUICK_SPARSE, run_figure


def test_fig3_filtering_power_pdbs(benchmark):
    result = run_figure(benchmark, figure3_filtering_pdbs, **QUICK_SPARSE)
    for row in result["rows"]:
        assert row["avg_candidates"] >= row["avg_answers"]
