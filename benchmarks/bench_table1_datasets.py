"""Table 1: characteristics of the (generated stand-in) datasets."""

from repro.experiments import table1

from .conftest import run_figure


def test_table1_dataset_characteristics(benchmark):
    result = run_figure(benchmark, table1, scale=1.0)
    assert len(result["rows"]) == 4
