"""Exploratory social-network analysis with nested pattern queries.

The paper's second motivating scenario (§1): analysts exploring a collection
of interaction networks issue queries produced by filtering earlier query
graphs — a friendship pattern within one community is a subgraph of the same
pattern across the whole network.  Successive queries therefore form
subgraph/supergraph chains, and repeated sessions re-issue old queries
verbatim.  The example runs such a session against the PPI-like dense
networks through :meth:`GraphQueryService.submit` — the asynchronous front
door: queries are enqueued, futures resolve in submission order, and the
engine's cache/replacement behaviour is byte-identical to a plain
sequential loop.

Run with::

    python examples/social_network_exploration.py
"""

from __future__ import annotations

from repro import (
    CacheConfig,
    EngineConfig,
    GraphQueryService,
    create_method,
    load_dataset,
)
from repro.workloads import QueryGenerator, WorkloadSpec


def main() -> None:
    database = load_dataset("ppi")
    method = create_method("grapes", max_path_length=3)
    config = EngineConfig(cache=CacheConfig(size=40, window=8))

    # An exploration session: a mix of query sizes, strongly skewed towards
    # the communities (graphs/nodes) the analyst keeps coming back to.
    spec = WorkloadSpec(
        name="exploration",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=2.0,
        query_sizes=(4, 8, 12),
        seed=99,
    )
    session = QueryGenerator(database, spec).generate(80)
    # The analyst re-runs a quarter of the queries at the end of the session
    # (e.g. to double-check earlier findings).
    session = session + session[::4]

    with GraphQueryService(method, config, database=database, max_in_flight=16) as service:
        # Fire-and-collect: submissions return futures immediately (bounded
        # by max_in_flight back-pressure); results resolve in order.
        futures = [service.submit(query) for query in session]
        results = [future.result() for future in futures]
        report = service.stats()
        engine = service.engine

        exact_hits = sum(result.exact_hit for result in results)
        skipped = sum(result.verification_skipped for result in results)
        tests = sum(result.num_isomorphism_tests for result in results)
        print(f"queries processed:            {len(session)}")
        print(f"isomorphism tests executed:   {tests}")
        print(f"exact repeats answered from cache: {exact_hits}")
        print(f"queries with no verification at all: {skipped}")
        print(f"query-index hit rate: {report.totals.hit_rate:.0%}")
        print(f"cache occupancy: {report.cache_size} / {report.cache_capacity}")

        # Popularity-ranked cache contents: which patterns earned their place?
        print("\nmost useful cached patterns (by alleviated cost per query):")
        ranked = sorted(
            engine.cache.entries(),
            key=lambda entry: entry.alleviated_cost / max(
                entry.queries_since_added(engine.cache.query_counter), 1
            ),
            reverse=True,
        )
        for entry in ranked[:5]:
            print(
                f"  {entry.graph.name:>10}: {entry.graph.num_edges:>2} edges, "
                f"hits={entry.hits:>3}, tests avoided={entry.removed:>4}"
            )


if __name__ == "__main__":
    main()
