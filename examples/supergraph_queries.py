"""Supergraph query processing with iGQ (§4.4 of the paper).

A supergraph query asks for all dataset graphs *contained in* the query —
e.g. "which catalogued fragments appear inside this newly synthesised
molecule?".  iGQ expedites this query type with the same two component
indexes, with their roles mirrored: answers of cached queries contained in
the new query are guaranteed answers; answers of cached queries containing
the new query bound the candidate set from above.

The example serves the lookups through a
:class:`~repro.service.GraphQueryService` configured with
``EngineConfig(mode="supergraph")`` — the same front door as subgraph
queries, selected by one config field.

Run with::

    python examples/supergraph_queries.py
"""

from __future__ import annotations

from repro import (
    CacheConfig,
    EngineConfig,
    GraphQueryService,
    create_method,
    load_dataset,
)
from repro.graphs import GraphDatabase
from repro.workloads import QueryGenerator, WorkloadSpec


def main() -> None:
    # The molecule collection (AIDS-like stand-in).  The fragment catalogue
    # is built by extracting small connected substructures from it, so every
    # fragment genuinely occurs in at least one molecule.
    molecules = load_dataset("aids", scale=0.4)
    fragment_source = QueryGenerator(
        molecules,
        WorkloadSpec(name="fragments", query_sizes=(3, 4, 5, 6), seed=12),
    )
    fragments = GraphDatabase.from_graphs(
        [
            fragment.relabeled(name=f"frag{i}")
            for i, fragment in enumerate(fragment_source.generate(120))
        ],
        name="fragments",
    )

    method = create_method("ggsx", max_path_length=3)

    # Supergraph queries: medium-sized molecules, repeatedly drawn from the
    # popular part of the collection.
    spec = WorkloadSpec(
        name="molecule-lookups",
        graph_distribution="zipf",
        node_distribution="zipf",
        alpha=1.8,
        query_sizes=(12, 16, 20),
        seed=31,
    )
    queries = QueryGenerator(molecules, spec).generate(80)

    config = EngineConfig(mode="supergraph", cache=CacheConfig(size=30, window=6))
    with GraphQueryService(method, config, database=fragments) as service:
        baseline_tests = 0
        igq_tests = 0
        answers_total = 0
        for query in queries:
            baseline_tests += method.supergraph_query(query).num_isomorphism_tests
            result = service.query(query)
            igq_tests += result.num_isomorphism_tests
            answers_total += result.num_answers

        print(f"fragment catalogue:        {len(fragments)} graphs")
        print(f"supergraph queries:        {len(queries)}")
        print(f"avg fragments per answer:  {answers_total / len(queries):.1f}")
        print(f"iso tests without iGQ:     {baseline_tests}")
        print(f"iso tests with iGQ:        {igq_tests}")
        if igq_tests:
            print(f"reduction:                 {baseline_tests / igq_tests:.2f}x")
        report = service.stats()
        print(f"query-index hit rate:      {report.totals.hit_rate:.0%}")
        print(f"cached queries:            {report.cache_size}")

        # Show one concrete answer set.
        sample = queries[0]
        answers = service.query(sample).answers
        print(f"\nexample: molecule {sample.name} ({sample.num_edges} edges) contains "
              f"{len(answers)} catalogued fragments")


if __name__ == "__main__":
    main()
