"""Chemical-screening scenario: hierarchical substructure queries.

The paper's motivating example (§1): queries against a chemical compound
collection are naturally hierarchical — an analyst first looks for a small
functional group, then for progressively larger compounds built around it.
Each refined query is a *supergraph* of the previous one, and each coarser
query is a *subgraph* of something asked before, which is exactly the
pattern iGQ exploits.

Each screening seed runs inside its own
:class:`~repro.service.GraphQueryService` *session*: the engine (cache,
window, replacement state) is shared across the whole campaign — one seed's
cached queries speed the next one up — while the per-seed accounting stays
separate in the final report.

Run with::

    python examples/chemical_screening.py
"""

from __future__ import annotations

import random

from repro import (
    CacheConfig,
    EngineConfig,
    GraphQueryService,
    create_method,
    load_dataset,
)
from repro.graphs import LabeledGraph
from repro.workloads import QueryGenerator, WorkloadSpec


def refine(query: LabeledGraph, database, rng: random.Random) -> LabeledGraph:
    """Grow a query by one extra edge taken from a dataset graph containing it.

    This mimics an analyst refining a hit: the new query strictly contains
    the previous one.
    """
    from repro.isomorphism import find_subgraph_embedding

    for graph in database.graphs():
        embedding = find_subgraph_embedding(query, graph)
        if embedding is None:
            continue
        mapped = set(embedding.values())
        reverse = {target: source for source, target in embedding.items()}
        candidates = []
        for vertex in mapped:
            for neighbor in graph.neighbors(vertex):
                if neighbor not in mapped:
                    candidates.append((vertex, neighbor))
        if not candidates:
            continue
        anchor, new_vertex = rng.choice(candidates)
        refined = query.copy(name=f"{query.name}+")
        new_id = refined.num_vertices
        refined.add_vertex(new_id, graph.label(new_vertex))
        refined.add_edge(reverse[anchor], new_id)
        return refined
    return query


def main() -> None:
    rng = random.Random(2016)
    database = load_dataset("aids", scale=0.4)
    method = create_method("ctindex", tree_max_size=4, cycle_max_length=6)
    config = EngineConfig(cache=CacheConfig(size=60, window=4))

    # Seed queries: small functional-group-like patterns extracted from the
    # collection itself.
    generator = QueryGenerator(
        database,
        WorkloadSpec(name="screening", query_sizes=(4,), seed=7),
    )
    seeds = generator.generate(12)

    total_tests = 0
    total_saved = 0
    with GraphQueryService(method, config, database=database) as service:
        print("screening session (each seed is refined three times):")
        for seed in seeds:
            session = service.session(seed.name)
            query = seed
            for step in range(4):
                result = session.query(query)
                saved = len(result.guaranteed_answers) + len(result.pruned_candidates)
                total_tests += result.num_isomorphism_tests
                total_saved += saved
                flags = []
                if result.exact_hit:
                    flags.append("exact repeat")
                if result.num_sub_hits:
                    flags.append(f"{result.num_sub_hits} cached supergraphs")
                if result.num_super_hits:
                    flags.append(f"{result.num_super_hits} cached subgraphs")
                print(
                    f"  {query.name:>10}: {query.num_edges:>2} edges -> "
                    f"{result.num_answers:>3} matching compounds, "
                    f"{result.num_isomorphism_tests:>3} iso tests, "
                    f"{saved:>3} tests avoided "
                    f"({', '.join(flags) if flags else 'cold query'})"
                )
                query = refine(query, database, rng)
        report = service.stats()
    print()
    print(f"isomorphism tests executed: {total_tests}")
    print(f"isomorphism tests avoided:  {total_saved}")
    print(f"queries cached:             {report.cache_size}")
    # Which seed benefited most from the shared cache?
    best = max(report.sessions.values(), key=lambda s: s.hit_rate)
    print(f"luckiest screening seed:    {best.name} "
          f"({best.hit_rate:.0%} of its queries hit the index)")


if __name__ == "__main__":
    main()
