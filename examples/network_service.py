"""Serve the iGQ engine over the network with per-tenant QoS.

Run with::

    python examples/network_service.py

The script stands up the asyncio socket front door
(:func:`repro.serve`) over a small synthetic collection and connects two
tenants through the JSON wire protocol (:func:`repro.connect`):

* ``analytics`` — a batch tenant that floods the server with a backlog of
  repeat queries (weight 1, capped in-flight quota);
* ``interactive`` — a user-facing tenant (weight 4) issuing one query at
  a time and expecting prompt answers.

The deficit-round-robin scheduler dispatches the interactive queries
ahead of the analytics backlog, so their latency stays flat while the
flood drains in the background.  Per-tenant accounting is read back over
the wire with the ``stats`` op.
"""

from __future__ import annotations

import time

from repro import (
    CacheConfig,
    EngineConfig,
    GraphQueryService,
    QueryGenerator,
    ServiceConfig,
    TenantConfig,
    WorkloadSpec,
    connect,
    create_method,
    load_dataset,
    serve,
)


def main() -> None:
    # 1. Dataset, base method and engine config — the service section
    #    declares the two tenants' QoS envelopes up front.
    database = load_dataset("synthetic", scale=0.15)
    config = EngineConfig(
        cache=CacheConfig(size=50, window=10),
        service=ServiceConfig(
            tenants=(
                TenantConfig(name="interactive", weight=4),
                TenantConfig(name="analytics", weight=1, max_in_flight=64),
            ),
        ),
    )
    queries = QueryGenerator(
        database,
        WorkloadSpec(
            name="zipf", graph_distribution="zipf", node_distribution="zipf", seed=7
        ),
    ).generate(10)

    # 2. One context manager pair owns the whole lifecycle: the service
    #    builds and indexes the engine, serve() binds a free port and
    #    spins the protocol loop on a background thread.
    service = GraphQueryService(
        create_method("ggsx", max_path_length=3), config, database=database
    )
    with service, serve(service) as server:
        print(f"serving on {server.host}:{server.port}")

        with connect(server.host, server.port, tenant="analytics") as analytics, \
                connect(server.host, server.port, tenant="interactive") as interactive:
            print("ping:", interactive.ping())

            # 3. The analytics tenant piles up a backlog of repeat queries
            #    (submit() pipelines without waiting)...
            backlog = [analytics.submit(queries[0]) for _ in range(40)]

            # 4. ...while the interactive tenant runs its queries one at a
            #    time.  DRR weight 4:1 keeps these near the queue front.
            for query in queries:
                start = time.perf_counter()
                result = interactive.query(query)
                print(
                    f"interactive {query.name}: {len(result.answers)} answers "
                    f"in {(time.perf_counter() - start) * 1000:.1f} ms "
                    f"(exact_hit={result.exact_hit})"
                )

            for future in backlog:
                future.result()

            # 5. Accounting over the wire: per-tenant counters partition
            #    the totals, and the scheduler block exposes queue state.
            report = interactive.stats()
            for tenant in ("interactive", "analytics"):
                session = report["sessions"][tenant]
                print(
                    f"{tenant}: {session['queries']} queries, "
                    f"hit rate {session['hit_rate']:.2f}"
                )
            print("cache:", report["cache"])


if __name__ == "__main__":
    main()
