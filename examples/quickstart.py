"""Quickstart: index a graph collection, stand up the query service, run queries.

Run with::

    python examples/quickstart.py

The script builds a scaled-down PDBS-like biomolecule collection, indexes it
with GraphGrepSX, describes the iGQ engine with a typed
:class:`~repro.core.config.EngineConfig`, and serves a skewed query workload
through :class:`~repro.service.GraphQueryService` — the public front door
that owns engine construction, dataset indexing and worker-pool lifecycle.
The same stream is run through the plain method first, so the paper's
headline metrics (number of subgraph isomorphism tests and query processing
time) print side by side.
"""

from __future__ import annotations

from repro import (
    CacheConfig,
    EngineConfig,
    GraphQueryService,
    QueryGenerator,
    WorkloadSpec,
    create_method,
    load_dataset,
)
from repro.experiments import StreamMetrics, speedup


def main() -> None:
    # 1. The dataset: a synthetic stand-in for the PDBS biomolecule
    #    collection — few, large, sparse graphs (see DESIGN.md for the
    #    substitution rationale).  Large dataset graphs make each avoided
    #    isomorphism test worth the query-index overhead, which is exactly
    #    the regime the paper targets.
    database = load_dataset("pdbs")
    print(f"dataset: {len(database)} graphs, {database.num_labels} vertex labels")

    # 2. The base method M: GraphGrepSX with paths of up to 4 edges.
    method = create_method("ggsx", max_path_length=4)
    method.build_index(database)
    print(f"GGSX index built ({method.index_size_bytes() / 1024:.0f} KiB)")

    # 3. A zipf-zipf workload: popular graphs and popular nodes are queried
    #    more often, so new queries overlap with old ones.
    spec = WorkloadSpec(
        name="zipf-zipf", graph_distribution="zipf", node_distribution="zipf", alpha=1.4
    )
    queries = QueryGenerator(database, spec).generate(150)

    # 4. Plain filter-then-verify processing.
    base_metrics = StreamMetrics(label="ggsx")
    for query in queries:
        base_metrics.add(method.query(query), query)

    # 5. The same stream through iGQ.  One typed config describes the whole
    #    engine (cache of 40 queries, window of 10); the service builds the
    #    engine, reuses the already-built method index and shuts everything
    #    down on exit.
    config = EngineConfig(cache=CacheConfig(size=40, window=10))
    igq_metrics = StreamMetrics(label="igq_ggsx")
    with GraphQueryService(method, config) as service:
        for query, result in zip(queries, service.stream(queries)):
            igq_metrics.add(result, query)
        report = service.stats()

    # 6. Report.
    comparison = speedup(base_metrics, igq_metrics)
    print()
    print(f"{'':>28} {'GGSX':>12} {'iGQ GGSX':>12}")
    print(f"{'avg iso tests / query':>28} {base_metrics.avg_isomorphism_tests:>12.2f} "
          f"{igq_metrics.avg_isomorphism_tests:>12.2f}")
    print(f"{'avg time / query (ms)':>28} {base_metrics.avg_seconds * 1000:>12.2f} "
          f"{igq_metrics.avg_seconds * 1000:>12.2f}")
    print(f"{'avg candidates / query':>28} {base_metrics.avg_candidates:>12.2f} "
          f"{igq_metrics.avg_candidates:>12.2f}")
    print()
    print(f"speedup in #isomorphism tests: {comparison.isomorphism_test_speedup:.2f}x")
    print(f"speedup in query time:         {comparison.time_speedup:.2f}x")
    print(f"query-index hit rate:          {report.totals.hit_rate:.0%}")
    print(f"cached queries at the end:     {report.cache_size} / {report.cache_capacity}")


if __name__ == "__main__":
    main()
