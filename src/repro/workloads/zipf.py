"""Popularity samplers: uniform and Zipf (the paper's workload knobs).

§7.1 of the paper builds query workloads from two probability distributions —
one selecting the dataset graph a query is extracted from, one selecting the
seed node inside that graph — each of which is either uniform or Zipf with
parameter ``α`` (default 1.4; 1.1 and 2.0/2.4 are used in the skew studies).

The Zipf probability mass is ``p(x) ∝ x^-α`` over ranks ``1..n``; sampling
uses the inverse-CDF over precomputed cumulative weights.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod

__all__ = ["RankSampler", "UniformSampler", "ZipfSampler", "create_sampler"]


class RankSampler(ABC):
    """Sampler over the ranks ``0..n-1`` (rank 0 is the most popular item)."""

    def __init__(self, num_items: int) -> None:
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.num_items = num_items

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw one rank in ``[0, num_items)``."""

    @abstractmethod
    def probability(self, rank: int) -> float:
        """Probability mass of ``rank``."""


class UniformSampler(RankSampler):
    """Every rank is equally likely."""

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.num_items)

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of range")
        return 1.0 / self.num_items


class ZipfSampler(RankSampler):
    """Zipf-distributed ranks: ``p(rank r) ∝ (r + 1)^-α``."""

    def __init__(self, num_items: int, alpha: float = 1.4) -> None:
        super().__init__(num_items)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        weights = [(rank + 1) ** (-alpha) for rank in range(num_items)]
        total = sum(weights)
        self._probabilities = [weight / total for weight in weights]
        self._cumulative: list[float] = []
        running = 0.0
        for probability in self._probabilities:
            running += probability
            self._cumulative.append(running)
        # Guard against floating point drift on the last bucket.
        self._cumulative[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cumulative, rng.random())

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of range")
        return self._probabilities[rank]


def create_sampler(kind: str, num_items: int, alpha: float = 1.4) -> RankSampler:
    """Build a sampler by name: ``"uniform"`` / ``"uni"`` or ``"zipf"``."""
    normalized = kind.lower()
    if normalized in ("uniform", "uni"):
        return UniformSampler(num_items)
    if normalized == "zipf":
        return ZipfSampler(num_items, alpha=alpha)
    raise ValueError(f"unknown sampler kind {kind!r}; expected 'uniform' or 'zipf'")
