"""Popularity samplers: uniform and Zipf (the paper's workload knobs).

§7.1 of the paper builds query workloads from two probability distributions —
one selecting the dataset graph a query is extracted from, one selecting the
seed node inside that graph — each of which is either uniform or Zipf with
parameter ``α`` (default 1.4; 1.1 and 2.0/2.4 are used in the skew studies).

The Zipf probability mass is ``p(x) ∝ x^-α`` over ranks ``1..n``; sampling
uses the inverse-CDF over precomputed cumulative weights.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod

__all__ = [
    "DriftingZipfSampler",
    "RankSampler",
    "UniformSampler",
    "ZipfSampler",
    "create_sampler",
]


class RankSampler(ABC):
    """Sampler over the ranks ``0..n-1`` (rank 0 is the most popular item)."""

    def __init__(self, num_items: int) -> None:
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.num_items = num_items

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw one rank in ``[0, num_items)``."""

    @abstractmethod
    def probability(self, rank: int) -> float:
        """Probability mass of ``rank``."""


class UniformSampler(RankSampler):
    """Every rank is equally likely."""

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.num_items)

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of range")
        return 1.0 / self.num_items


class ZipfSampler(RankSampler):
    """Zipf-distributed ranks: ``p(rank r) ∝ (r + 1)^-α``."""

    def __init__(self, num_items: int, alpha: float = 1.4) -> None:
        super().__init__(num_items)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        weights = [(rank + 1) ** (-alpha) for rank in range(num_items)]
        total = sum(weights)
        self._probabilities = [weight / total for weight in weights]
        self._cumulative: list[float] = []
        running = 0.0
        for probability in self._probabilities:
            running += probability
            self._cumulative.append(running)
        # Guard against floating point drift on the last bucket.
        self._cumulative[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cumulative, rng.random())

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of range")
        return self._probabilities[rank]


class DriftingZipfSampler(RankSampler):
    """Time-varying Zipf: the skew drifts and/or the hot set rotates.

    Models the non-stationary workloads of the paper's skew studies taken
    one step further: real query traffic is Zipf-like *and* its popular set
    changes over time, which is exactly the regime hot-key replication and
    adaptive rebalancing (``shard.hot_threshold`` / ``rebalance_interval``)
    are built for — a static popularity ranking would let a one-shot
    placement win forever.

    Two independent axes, both optional:

    * **alpha drift** — the exponent moves linearly from ``alpha`` to
      ``alpha_end`` over ``drift_steps`` draws (then stays at
      ``alpha_end``).  The interpolation is quantised to ``resolution``
      phases so only that many :class:`ZipfSampler` tables are ever built.
    * **hot-set rotation** — every ``rotate_every`` draws the rank mapping
      shifts by ``rotate_stride``, so the identity of the most popular
      items changes while the popularity *shape* stays Zipf.

    The sampler is stateful (draw count advances the clock), so one
    instance must not be shared across streams that should be independent.
    """

    def __init__(
        self,
        num_items: int,
        alpha: float = 1.4,
        *,
        alpha_end: float | None = None,
        drift_steps: int | None = None,
        rotate_every: int | None = None,
        rotate_stride: int = 1,
        resolution: int = 16,
    ) -> None:
        super().__init__(num_items)
        if alpha_end is not None and drift_steps is None:
            raise ValueError("alpha_end requires drift_steps (the drift duration)")
        if drift_steps is not None and drift_steps < 1:
            raise ValueError("drift_steps must be positive")
        if rotate_every is not None and rotate_every < 1:
            raise ValueError("rotate_every must be positive")
        if resolution < 1:
            raise ValueError("resolution must be positive")
        self.alpha = alpha
        self.alpha_end = alpha_end
        self.drift_steps = drift_steps
        self.rotate_every = rotate_every
        self.rotate_stride = rotate_stride
        self.resolution = resolution
        self._step = 0
        #: phase index -> prebuilt ZipfSampler (lazily materialised)
        self._phases: dict[int, ZipfSampler] = {}

    # ------------------------------------------------------------------
    def _phase_of(self, step: int) -> int:
        if self.alpha_end is None:
            return 0
        progress = min(step / self.drift_steps, 1.0)
        return min(int(progress * self.resolution), self.resolution - 1)

    def _alpha_at(self, step: int) -> float:
        """Effective exponent at ``step`` (phase-quantised when drifting)."""
        if self.alpha_end is None:
            return self.alpha
        fraction = (self._phase_of(step) + 0.5) / self.resolution
        return self.alpha + (self.alpha_end - self.alpha) * fraction

    def _rotation_at(self, step: int) -> int:
        if self.rotate_every is None:
            return 0
        return (step // self.rotate_every) * self.rotate_stride % self.num_items

    def _sampler_at(self, step: int) -> ZipfSampler:
        phase = self._phase_of(step)
        sampler = self._phases.get(phase)
        if sampler is None:
            sampler = ZipfSampler(self.num_items, alpha=self._alpha_at(step))
            self._phases[phase] = sampler
        return sampler

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> int:
        step = self._step
        self._step += 1
        rank = self._sampler_at(step).sample(rng)
        return (rank + self._rotation_at(step)) % self.num_items

    def probability(self, rank: int) -> float:
        """Probability mass of ``rank`` at the *current* clock position."""
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of range")
        step = self._step
        base_rank = (rank - self._rotation_at(step)) % self.num_items
        return self._sampler_at(step).probability(base_rank)


def create_sampler(kind: str, num_items: int, alpha: float = 1.4, **drift) -> RankSampler:
    """Build a sampler by name.

    ``"uniform"`` / ``"uni"``, ``"zipf"``, or the time-varying
    ``"zipf-drift"`` / ``"drifting-zipf"`` (which accepts the
    :class:`DriftingZipfSampler` keyword arguments: ``alpha_end``,
    ``drift_steps``, ``rotate_every``, ``rotate_stride``, ``resolution``).
    """
    normalized = kind.lower()
    if normalized in ("uniform", "uni"):
        if drift:
            raise ValueError(f"uniform sampler takes no drift arguments: {sorted(drift)}")
        return UniformSampler(num_items)
    if normalized == "zipf":
        if drift:
            raise ValueError(
                f"static zipf takes no drift arguments: {sorted(drift)}; "
                "use kind='zipf-drift'"
            )
        return ZipfSampler(num_items, alpha=alpha)
    if normalized in ("zipf-drift", "drifting-zipf"):
        return DriftingZipfSampler(num_items, alpha=alpha, **drift)
    raise ValueError(
        f"unknown sampler kind {kind!r}; expected 'uniform', 'zipf' or 'zipf-drift'"
    )
