"""Query workload generation: popularity samplers and the query generator."""

from .generator import DEFAULT_QUERY_SIZES, QueryGenerator, WorkloadSpec, standard_workloads
from .zipf import RankSampler, UniformSampler, ZipfSampler, create_sampler

__all__ = [
    "DEFAULT_QUERY_SIZES",
    "QueryGenerator",
    "WorkloadSpec",
    "standard_workloads",
    "RankSampler",
    "UniformSampler",
    "ZipfSampler",
    "create_sampler",
]
