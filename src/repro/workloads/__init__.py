"""Query workload generation: popularity samplers and the query generator."""

from .generator import (
    DEFAULT_QUERY_SIZES,
    QueryGenerator,
    WorkloadSpec,
    drifting_stream,
    standard_workloads,
)
from .zipf import (
    DriftingZipfSampler,
    RankSampler,
    UniformSampler,
    ZipfSampler,
    create_sampler,
)

__all__ = [
    "DEFAULT_QUERY_SIZES",
    "QueryGenerator",
    "WorkloadSpec",
    "drifting_stream",
    "standard_workloads",
    "DriftingZipfSampler",
    "RankSampler",
    "UniformSampler",
    "ZipfSampler",
    "create_sampler",
]
