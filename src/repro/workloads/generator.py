"""Query workload generation (§7.1 of the paper).

Queries are synthesised from the dataset graphs themselves, following the
procedure that is standard across the related work and that the paper adopts:

1. choose a dataset graph according to a popularity distribution (uniform or
   Zipf over the graphs),
2. choose a seed node inside it according to a second popularity distribution
   (uniform or Zipf over its nodes),
3. choose the query size uniformly from {4, 8, 12, 16, 20} edges,
4. grow the query by a BFS traversal of the seed's neighbourhood, adding the
   unvisited edges of each traversed node until the desired number of edges
   has been collected.

Because both queries of the past and queries of the future are drawn from the
same skewed popularity distributions, future queries naturally share
subgraph/supergraph relationships with past ones — the phenomenon iGQ
exploits.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..graphs.database import GraphDatabase
from ..graphs.graph import LabeledGraph
from .zipf import RankSampler, create_sampler

__all__ = ["WorkloadSpec", "QueryGenerator", "drifting_stream", "standard_workloads"]

#: the paper's query sizes, in edges
DEFAULT_QUERY_SIZES = (4, 8, 12, 16, 20)


@dataclass(frozen=True)
class WorkloadSpec:
    """Configuration of one query workload.

    The drift fields describe a *time-varying* graph-popularity
    distribution (``graph_distribution="zipf-drift"``): the Zipf exponent
    moves from ``alpha`` to ``alpha_end`` over ``drift_steps`` graph draws,
    and/or the hot set rotates by ``rotate_stride`` ranks every
    ``rotate_every`` draws — the skewed, non-stationary traffic that
    exercises hot-key replication and rebalancing.  They are ignored by the
    static distributions (node sampling always uses the static form, since
    per-graph node samplers are drawn from far too rarely to drift).
    """

    name: str
    graph_distribution: str = "uniform"
    node_distribution: str = "uniform"
    alpha: float = 1.4
    query_sizes: tuple[int, ...] = DEFAULT_QUERY_SIZES
    seed: int = 7
    alpha_end: float | None = None
    drift_steps: int | None = None
    rotate_every: int | None = None
    rotate_stride: int = 1

    def describe(self) -> dict:
        """JSON-friendly description (used by the experiment reports)."""
        description = {
            "name": self.name,
            "graph_distribution": self.graph_distribution,
            "node_distribution": self.node_distribution,
            "alpha": self.alpha,
            "query_sizes": list(self.query_sizes),
            "seed": self.seed,
        }
        if self.alpha_end is not None:
            description["alpha_end"] = self.alpha_end
            description["drift_steps"] = self.drift_steps
        if self.rotate_every is not None:
            description["rotate_every"] = self.rotate_every
            description["rotate_stride"] = self.rotate_stride
        return description

    def drift_kwargs(self) -> dict:
        """The :func:`create_sampler` drift arguments this spec carries."""
        kwargs: dict = {}
        if self.alpha_end is not None:
            kwargs["alpha_end"] = self.alpha_end
            kwargs["drift_steps"] = self.drift_steps
        if self.rotate_every is not None:
            kwargs["rotate_every"] = self.rotate_every
            kwargs["rotate_stride"] = self.rotate_stride
        return kwargs


def standard_workloads(alpha: float = 1.4, seed: int = 7) -> list[WorkloadSpec]:
    """The four workloads of the paper: uni–uni, uni–zipf, zipf–uni, zipf–zipf."""
    combos = [
        ("uni-uni", "uniform", "uniform"),
        ("uni-zipf", "uniform", "zipf"),
        ("zipf-uni", "zipf", "uniform"),
        ("zipf-zipf", "zipf", "zipf"),
    ]
    return [
        WorkloadSpec(
            name=name,
            graph_distribution=graph_dist,
            node_distribution=node_dist,
            alpha=alpha,
            seed=seed,
        )
        for name, graph_dist, node_dist in combos
    ]


def drifting_stream(
    pool: list[LabeledGraph],
    length: int,
    *,
    alpha: float = 1.4,
    alpha_end: float | None = None,
    drift_steps: int | None = None,
    rotate_every: int | None = None,
    rotate_stride: int = 1,
    seed: int = 7,
) -> list[LabeledGraph]:
    """Draw a repeat-heavy query stream from ``pool`` under drifting Zipf.

    The standard skew-study construction (generate a pool once, then sample
    it with a popularity distribution so exact and related repeats occur)
    with the time-varying sampler: early queries concentrate on one hot
    set, later queries on another.  ``drift_steps`` defaults to the stream
    length when an ``alpha_end`` is given.
    """
    if alpha_end is not None and drift_steps is None:
        drift_steps = length
    sampler = create_sampler(
        "zipf-drift",
        len(pool),
        alpha=alpha,
        alpha_end=alpha_end,
        drift_steps=drift_steps,
        rotate_every=rotate_every,
        rotate_stride=rotate_stride,
    )
    rng = random.Random(seed)
    return [pool[sampler.sample(rng)] for _ in range(length)]


@dataclass
class QueryGenerator:
    """Generate query graphs from a dataset according to a workload spec."""

    database: GraphDatabase
    spec: WorkloadSpec
    _rng: random.Random = field(init=False, repr=False)
    _graph_sampler: RankSampler = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.database) == 0:
            raise ValueError("cannot generate queries from an empty database")
        self._rng = random.Random(self.spec.seed)
        # The graph sampler is stateful for the drifting kinds: every
        # generate_one() advances its clock, so a long generate() run sees
        # the popularity distribution move under it.
        self._graph_sampler = create_sampler(
            self.spec.graph_distribution,
            len(self.database),
            alpha=self.spec.alpha,
            **self.spec.drift_kwargs(),
        )
        self._graph_ids = self.database.ids()
        self._node_samplers: dict = {}

    # ------------------------------------------------------------------
    def generate(self, num_queries: int) -> list[LabeledGraph]:
        """Generate ``num_queries`` query graphs."""
        return [self.generate_one(index) for index in range(num_queries)]

    def generate_one(self, index: int = 0) -> LabeledGraph:
        """Generate a single query graph (named ``q<index>_e<edges>``)."""
        target_edges = self._rng.choice(self.spec.query_sizes)
        best: LabeledGraph | None = None
        for _ in range(32):
            source_id = self._graph_ids[self._graph_sampler.sample(self._rng)]
            source = self.database.get(source_id)
            if source.num_edges == 0:
                continue
            seed_vertex = self._pick_seed(source_id, source)
            query = self._grow_query(source, seed_vertex, target_edges)
            if query.num_edges == target_edges:
                return self._finalise(query, index)
            if best is None or query.num_edges > best.num_edges:
                best = query
        if best is None:
            raise ValueError("the database contains no graph with edges")
        # Tiny datasets may simply not contain a component with
        # ``target_edges`` edges; return the largest query found.
        return self._finalise(best, index)

    # ------------------------------------------------------------------
    def _pick_seed(self, source_id, source: LabeledGraph):
        sampler = self._node_samplers.get(source_id)
        if sampler is None:
            sampler = create_sampler(
                self.spec.node_distribution, source.num_vertices, alpha=self.spec.alpha
            )
            self._node_samplers[source_id] = sampler
        vertices = list(source.vertices())
        return vertices[sampler.sample(self._rng)]

    def _grow_query(
        self, source: LabeledGraph, seed_vertex, target_edges: int
    ) -> LabeledGraph:
        """BFS neighbourhood expansion until ``target_edges`` edges are in."""
        query = LabeledGraph()
        query.add_vertex(seed_vertex, source.label(seed_vertex))
        queue: deque = deque([seed_vertex])
        visited = {seed_vertex}
        edges = 0
        while queue and edges < target_edges:
            vertex = queue.popleft()
            neighbors = list(source.neighbors(vertex))
            self._rng.shuffle(neighbors)
            for neighbor in neighbors:
                if edges >= target_edges:
                    break
                if not query.has_vertex(neighbor):
                    query.add_vertex(neighbor, source.label(neighbor))
                if not query.has_edge(vertex, neighbor):
                    query.add_edge(vertex, neighbor)
                    edges += 1
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        return query

    @staticmethod
    def _finalise(query: LabeledGraph, index: int) -> LabeledGraph:
        return query.relabeled(name=f"q{index}_e{query.num_edges}")
