"""Exhaustive path enumeration (the feature class of GGSX and Grapes).

GraphGrepSX and Grapes index *all* simple paths of the dataset graphs up to a
maximum length (number of edges; 4 in the paper's experiments).  The same
enumeration is reused by the iGQ ``Isuper`` index, whose Algorithm 1 inserts
the features of every previously executed query into a trie together with
their number of occurrences.

Every undirected path is counted exactly once (a path and its reverse are the
same occurrence); the canonical label code of the path (see
:func:`repro.features.canonical.canonical_path_code`) is the feature key.
Location information — the set of vertices participating in at least one
occurrence of the feature — is kept as well, because Grapes uses it to
restrict verification to the relevant region of a candidate graph.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass, field

from ..graphs.graph import LabeledGraph
from .canonical import canonical_path_code

__all__ = ["PathOccurrences", "enumerate_simple_paths", "path_features"]


@dataclass
class PathOccurrences:
    """Aggregate information about one path feature within one graph."""

    count: int = 0
    vertices: set = field(default_factory=set)

    def record(self, path: tuple[Hashable, ...]) -> None:
        """Record one more occurrence along the vertex sequence ``path``."""
        self.count += 1
        self.vertices.update(path)


def enumerate_simple_paths(
    graph: LabeledGraph,
    max_length: int,
    min_length: int = 0,
) -> Iterator[tuple[Hashable, ...]]:
    """Yield every simple path with ``min_length..max_length`` edges.

    Paths are yielded as vertex tuples; each undirected path is yielded
    exactly once (in the direction whose vertex-repr sequence is smaller).
    Zero-length paths are the single vertices.
    """
    if max_length < 0:
        raise ValueError("max_length must be non-negative")
    if min_length < 0:
        raise ValueError("min_length must be non-negative")

    if min_length == 0:
        for vertex in graph.vertices():
            yield (vertex,)

    if max_length == 0:
        return

    def extend(path: list[Hashable], on_path: set) -> Iterator[tuple[Hashable, ...]]:
        last = path[-1]
        for neighbor in graph.neighbors(last):
            if neighbor in on_path:
                continue
            path.append(neighbor)
            on_path.add(neighbor)
            if len(path) - 1 >= max(min_length, 1) and _is_canonical_direction(path):
                yield tuple(path)
            if len(path) - 1 < max_length:
                yield from extend(path, on_path)
            on_path.discard(neighbor)
            path.pop()

    for vertex in graph.vertices():
        yield from extend([vertex], {vertex})


def _is_canonical_direction(path: list[Hashable]) -> bool:
    """True if the path's vertex sequence is not larger than its reverse."""
    forward = tuple(repr(vertex) for vertex in path)
    return forward <= tuple(reversed(forward))


def path_features(
    graph: LabeledGraph,
    max_length: int,
    min_length: int = 0,
) -> dict[str, PathOccurrences]:
    """Return the path features of ``graph``.

    The result maps the canonical label code of each path feature to a
    :class:`PathOccurrences` record with the occurrence count and the set of
    vertices covered by its occurrences.
    """
    features: dict[str, PathOccurrences] = {}
    for path in enumerate_simple_paths(graph, max_length, min_length=min_length):
        code = canonical_path_code([graph.label(vertex) for vertex in path])
        features.setdefault(code, PathOccurrences()).record(path)
    return features
