"""Feature-extraction facade shared by the indexing methods and by iGQ.

A :class:`FeatureExtractor` turns a graph into a :class:`GraphFeatures`
record: a multiset of feature keys plus (for path features) the location
information Grapes stores.  The same extractor object must be used for the
dataset graphs and for the queries of a given index, which is why the
methods expose their extractor and iGQ simply reuses it (the framework of
§4.2 obtains "the features of the query graph" from the base method).

Two feature families are provided, matching the reproduced methods:

``paths``
    Every simple path up to ``max_path_length`` edges (GGSX, Grapes, and the
    default for the iGQ ``Isuper`` trie).

``trees_cycles``
    Every tree subgraph up to ``tree_max_size`` vertices and every simple
    cycle up to ``cycle_max_length`` vertices (CT-Index).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from ..graphs.graph import LabeledGraph
from .canonical import canonical_cycle_code, canonical_tree_code
from .cycles import enumerate_simple_cycles
from .paths import path_features
from .trees import enumerate_tree_subgraphs

__all__ = ["FeatureKey", "GraphFeatures", "FeatureExtractor"]

#: A feature key is a tuple of hashable elements: the label sequence of a
#: path, or a single-element tuple wrapping a canonical tree / cycle code.
FeatureKey = tuple


@dataclass
class GraphFeatures:
    """Features of one graph: occurrence counts and (optional) locations."""

    counts: dict[FeatureKey, int] = field(default_factory=dict)
    locations: dict[FeatureKey, frozenset] = field(default_factory=dict)

    @property
    def num_distinct(self) -> int:
        """Number of distinct feature keys."""
        return len(self.counts)

    def keys(self) -> set[FeatureKey]:
        """The set of distinct feature keys."""
        return set(self.counts)

    def contains_all_of(self, other: "GraphFeatures") -> bool:
        """True if every feature of ``other`` also appears here (set-wise)."""
        return all(key in self.counts for key in other.counts)

    def covers_counts_of(self, other: "GraphFeatures") -> bool:
        """True if every feature of ``other`` appears here at least as often."""
        return all(
            self.counts.get(key, 0) >= count for key, count in other.counts.items()
        )


class FeatureExtractor:
    """Extract filtering features from labeled graphs.

    Parameters
    ----------
    kind:
        ``"paths"`` or ``"trees_cycles"``.
    max_path_length:
        Maximum number of edges of enumerated paths (``paths`` kind).
    tree_max_size:
        Maximum number of vertices of enumerated tree subgraphs
        (``trees_cycles`` kind).
    cycle_max_length:
        Maximum number of vertices of enumerated simple cycles
        (``trees_cycles`` kind).
    """

    PATHS = "paths"
    TREES_CYCLES = "trees_cycles"

    def __init__(
        self,
        kind: str = PATHS,
        max_path_length: int = 4,
        tree_max_size: int = 4,
        cycle_max_length: int = 6,
    ) -> None:
        if kind not in (self.PATHS, self.TREES_CYCLES):
            raise ValueError(f"unknown feature kind {kind!r}")
        if max_path_length < 1:
            raise ValueError("max_path_length must be at least 1")
        if tree_max_size < 1:
            raise ValueError("tree_max_size must be at least 1")
        if cycle_max_length < 3:
            raise ValueError("cycle_max_length must be at least 3")
        self.kind = kind
        self.max_path_length = max_path_length
        self.tree_max_size = tree_max_size
        self.cycle_max_length = cycle_max_length

    # ------------------------------------------------------------------
    def extract(self, graph: LabeledGraph) -> GraphFeatures:
        """Return the features of ``graph`` under this extractor's config."""
        if self.kind == self.PATHS:
            return self._extract_paths(graph)
        return self._extract_trees_cycles(graph)

    def describe(self) -> dict[str, Hashable]:
        """A JSON-friendly description of the configuration."""
        if self.kind == self.PATHS:
            return {"kind": self.kind, "max_path_length": self.max_path_length}
        return {
            "kind": self.kind,
            "tree_max_size": self.tree_max_size,
            "cycle_max_length": self.cycle_max_length,
        }

    # ------------------------------------------------------------------
    def _extract_paths(self, graph: LabeledGraph) -> GraphFeatures:
        features = GraphFeatures()
        for code, info in path_features(graph, self.max_path_length).items():
            key = tuple(code.split("\x1f"))
            features.counts[key] = info.count
            features.locations[key] = frozenset(info.vertices)
        return features

    def _extract_trees_cycles(self, graph: LabeledGraph) -> GraphFeatures:
        features = GraphFeatures()
        for tree in enumerate_tree_subgraphs(graph, self.tree_max_size):
            key = (canonical_tree_code(tree),)
            features.counts[key] = features.counts.get(key, 0) + 1
            existing = features.locations.get(key, frozenset())
            features.locations[key] = existing | frozenset(tree.vertices())
        for cycle in enumerate_simple_cycles(graph, self.cycle_max_length):
            key = (canonical_cycle_code([graph.label(vertex) for vertex in cycle]),)
            features.counts[key] = features.counts.get(key, 0) + 1
            existing = features.locations.get(key, frozenset())
            features.locations[key] = existing | frozenset(cycle)
        return features
