"""Feature extraction: paths, trees, cycles, canonical codes and the trie."""

from .canonical import (
    canonical_cycle_code,
    canonical_graph_key,
    canonical_path_code,
    canonical_tree_code,
    exact_graph_signature,
    tree_code_of_subtree,
)
from .cycles import cycle_feature_codes, cycle_feature_counts, enumerate_simple_cycles
from .extractor import FeatureExtractor, FeatureKey, GraphFeatures
from .paths import PathOccurrences, enumerate_simple_paths, path_features
from .trees import (
    enumerate_connected_subsets,
    enumerate_spanning_trees,
    enumerate_tree_subgraphs,
    tree_feature_codes,
    tree_feature_counts,
)
from .trie import FeatureTrie, TrieNode

__all__ = [
    "FeatureExtractor",
    "FeatureKey",
    "GraphFeatures",
    "FeatureTrie",
    "TrieNode",
    "PathOccurrences",
    "canonical_cycle_code",
    "canonical_graph_key",
    "canonical_path_code",
    "canonical_tree_code",
    "exact_graph_signature",
    "tree_code_of_subtree",
    "cycle_feature_codes",
    "cycle_feature_counts",
    "enumerate_simple_cycles",
    "enumerate_simple_paths",
    "enumerate_connected_subsets",
    "enumerate_spanning_trees",
    "enumerate_tree_subgraphs",
    "path_features",
    "tree_feature_codes",
    "tree_feature_counts",
]
