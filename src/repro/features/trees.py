"""Tree-feature enumeration (the tree half of CT-Index's feature set).

CT-Index describes every graph by the canonical codes of its *tree subgraphs*
up to a maximum number of vertices (6 in the paper's default configuration)
plus its simple cycles (see :mod:`repro.features.cycles`).  For the filtering
stage to be sound the features must be **non-induced** subgraphs: whenever
``q ⊆ G`` every tree subgraph of ``q`` maps to a tree subgraph of ``G``, so
containment of the feature sets is a necessary condition.

Enumeration strategy (duplicate free):

1. enumerate every connected vertex subset of size ``1..max_size`` exactly
   once (the ESU / Wernicke scheme: start from each vertex, only extend with
   neighbours that come later in a fixed vertex order or are adjacent to the
   growing set but "new"),
2. for each subset, enumerate the spanning trees of the induced subgraph —
   each tree subgraph has a unique vertex set, of which it is a spanning
   tree, so the combination enumerates every tree subgraph exactly once.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterator
from itertools import combinations

from ..graphs.graph import LabeledGraph
from .canonical import canonical_tree_code

__all__ = [
    "enumerate_connected_subsets",
    "enumerate_spanning_trees",
    "enumerate_tree_subgraphs",
    "tree_feature_codes",
    "tree_feature_counts",
]


def enumerate_connected_subsets(
    graph: LabeledGraph, max_size: int, min_size: int = 1
) -> Iterator[frozenset]:
    """Yield every connected vertex subset with ``min_size..max_size`` vertices.

    Each subset is yielded exactly once.  The enumeration is the standard
    ESU scheme: subsets are rooted at their smallest vertex (in a fixed
    deterministic order) and may only be extended with vertices that come
    after the root in that order.
    """
    if max_size < 1:
        raise ValueError("max_size must be at least 1")
    if min_size < 1:
        raise ValueError("min_size must be at least 1")

    order = {vertex: index for index, vertex in enumerate(sorted(graph.vertices(), key=repr))}

    def exclusive_neighbors(vertex: Hashable, subset: set) -> Iterator[Hashable]:
        """Neighbours of ``vertex`` that are new to the subset and not already
        adjacent to it (the ESU 'exclusive neighbourhood')."""
        for neighbor in graph.neighbors(vertex):
            if neighbor in subset:
                continue
            if any(graph.has_edge(neighbor, member) for member in subset):
                continue
            yield neighbor

    def extend(
        subset: set, extension: set, root_rank: int
    ) -> Iterator[frozenset]:
        if len(subset) >= min_size:
            yield frozenset(subset)
        if len(subset) == max_size:
            return
        candidates = sorted(extension, key=lambda v: order[v])
        for position, vertex in enumerate(candidates):
            new_extension = set(candidates[position + 1 :])
            new_extension.update(
                neighbor
                for neighbor in exclusive_neighbors(vertex, subset)
                if order[neighbor] > root_rank
            )
            subset.add(vertex)
            yield from extend(subset, new_extension, root_rank)
            subset.discard(vertex)

    for root in sorted(graph.vertices(), key=lambda v: order[v]):
        root_rank = order[root]
        extension = {
            neighbor for neighbor in graph.neighbors(root) if order[neighbor] > root_rank
        }
        yield from extend({root}, extension, root_rank)


def enumerate_spanning_trees(
    graph: LabeledGraph, vertices: frozenset
) -> Iterator[tuple[tuple[Hashable, Hashable], ...]]:
    """Yield every spanning tree of the subgraph induced by ``vertices``.

    Each spanning tree is a tuple of edges.  Intended for the tiny vertex
    sets produced by :func:`enumerate_connected_subsets` (at most a handful
    of vertices), where brute-force edge-subset selection is perfectly fine.
    """
    vertex_list = sorted(vertices, key=repr)
    size = len(vertex_list)
    if size == 1:
        yield ()
        return
    induced_edges = [
        (u, v)
        for index, u in enumerate(vertex_list)
        for v in vertex_list[index + 1 :]
        if graph.has_edge(u, v)
    ]
    needed = size - 1
    if len(induced_edges) < needed:
        return
    for edge_subset in combinations(induced_edges, needed):
        if _is_spanning_tree(vertex_list, edge_subset):
            yield edge_subset


def _is_spanning_tree(vertices: list, edges: tuple) -> bool:
    """True if ``edges`` form a spanning tree over ``vertices`` (union-find)."""
    parent = {vertex: vertex for vertex in vertices}

    def find(vertex):
        while parent[vertex] != vertex:
            parent[vertex] = parent[parent[vertex]]
            vertex = parent[vertex]
        return vertex

    merged = 0
    for u, v in edges:
        root_u, root_v = find(u), find(v)
        if root_u == root_v:
            return False
        parent[root_u] = root_v
        merged += 1
    return merged == len(vertices) - 1


def enumerate_tree_subgraphs(
    graph: LabeledGraph, max_size: int, min_size: int = 1
) -> Iterator[LabeledGraph]:
    """Yield every tree subgraph with ``min_size..max_size`` vertices.

    Each tree subgraph (a connected, acyclic, non-induced subgraph) is
    yielded exactly once, materialised as a small :class:`LabeledGraph`.
    """
    for subset in enumerate_connected_subsets(graph, max_size, min_size=min_size):
        for tree_edges in enumerate_spanning_trees(graph, subset):
            tree = LabeledGraph()
            for vertex in subset:
                tree.add_vertex(vertex, graph.label(vertex))
            for u, v in tree_edges:
                tree.add_edge(u, v)
            yield tree


def tree_feature_codes(graph: LabeledGraph, max_size: int, min_size: int = 1) -> set[str]:
    """Set of canonical codes of the tree subgraphs of ``graph``."""
    return {
        canonical_tree_code(tree)
        for tree in enumerate_tree_subgraphs(graph, max_size, min_size=min_size)
    }


def tree_feature_counts(graph: LabeledGraph, max_size: int, min_size: int = 1) -> Counter:
    """Multiset (code -> occurrence count) of the tree subgraphs of ``graph``."""
    counts: Counter = Counter()
    for tree in enumerate_tree_subgraphs(graph, max_size, min_size=min_size):
        counts[canonical_tree_code(tree)] += 1
    return counts
