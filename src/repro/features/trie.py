"""Feature trie with per-graph occurrence postings.

GraphGrepSX organises the enumerated paths of the dataset graphs in a suffix
trie whose nodes carry, per graph, the number of occurrences of the path
spelled out by the root-to-node label sequence.  The iGQ ``Isuper`` component
(Algorithm 1 of the paper) uses the same structure over the features of
*previous queries*.  This module provides that structure.

Keys are tuples of hashable elements — label sequences for path features,
single-element tuples wrapping a canonical code for tree/cycle features.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence

__all__ = ["TrieNode", "FeatureTrie"]


class TrieNode:
    """One node of a :class:`FeatureTrie`."""

    __slots__ = ("children", "postings")

    def __init__(self) -> None:
        self.children: dict[Hashable, TrieNode] = {}
        self.postings: dict[Hashable, int] = {}

    def is_feature(self) -> bool:
        """True if at least one graph has this node's sequence as a feature."""
        return bool(self.postings)


class FeatureTrie:
    """A trie mapping feature key sequences to ``{graph_id: occurrences}``."""

    def __init__(self) -> None:
        self._root = TrieNode()
        self._num_features = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: Sequence[Hashable], graph_id: Hashable, occurrences: int = 1) -> None:
        """Record that ``graph_id`` contains the feature ``key`` ``occurrences`` times.

        Repeated insertion for the same ``(key, graph_id)`` overwrites the
        occurrence count (the extractors always report totals).
        """
        if occurrences < 1:
            raise ValueError("occurrences must be positive")
        node = self._root
        for element in key:
            node = node.children.setdefault(element, TrieNode())
        if not node.postings:
            self._num_features += 1
        node.postings[graph_id] = occurrences

    def remove_graph(self, graph_id: Hashable) -> None:
        """Remove every posting of ``graph_id`` and prune empty branches.

        Walks the whole trie; callers that know the graph's feature keys
        should prefer :meth:`remove_posting` per key, which only walks the
        key's path.
        """
        self._remove_graph(self._root, graph_id)

    def _remove_graph(self, node: TrieNode, graph_id: Hashable) -> bool:
        """Depth-first removal; returns True if ``node`` can be pruned."""
        if graph_id in node.postings:
            del node.postings[graph_id]
            if not node.postings:
                self._num_features -= 1
        for element in list(node.children):
            if self._remove_graph(node.children[element], graph_id):
                del node.children[element]
        return not node.postings and not node.children

    def remove_posting(self, key: Sequence[Hashable], graph_id: Hashable) -> None:
        """Remove the single ``(key, graph_id)`` posting, pruning its branch.

        Cost is proportional to ``len(key)`` instead of the trie size, which
        is what makes incremental index maintenance (delta-applied shard
        replicas, as opposed to full shadow rebuilds) cheap.  Unknown keys
        and absent postings are ignored.
        """
        path: list[tuple[TrieNode, Hashable]] = []
        node = self._root
        for element in key:
            child = node.children.get(element)
            if child is None:
                return
            path.append((node, element))
            node = child
        if graph_id in node.postings:
            del node.postings[graph_id]
            if not node.postings:
                self._num_features -= 1
        for parent, element in reversed(path):
            child = parent.children[element]
            if child.postings or child.children:
                break
            del parent.children[element]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def get(self, key: Sequence[Hashable]) -> dict[Hashable, int]:
        """Return the postings of ``key`` (empty dict if absent)."""
        node = self._find(key)
        return dict(node.postings) if node is not None else {}

    def __contains__(self, key: Sequence[Hashable]) -> bool:
        node = self._find(key)
        return node is not None and node.is_feature()

    def _find(self, key: Sequence[Hashable]) -> TrieNode | None:
        node = self._root
        for element in key:
            node = node.children.get(element)
            if node is None:
                return None
        return node

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_features(self) -> int:
        """Number of distinct feature keys with at least one posting."""
        return self._num_features

    def num_nodes(self) -> int:
        """Total number of trie nodes (used for index-size accounting)."""
        return sum(1 for _ in self._iter_nodes())

    def num_postings(self) -> int:
        """Total number of ``(feature, graph)`` postings."""
        return sum(len(node.postings) for node in self._iter_nodes())

    def graph_ids(self) -> set:
        """The set of graph ids that have at least one posting."""
        ids: set = set()
        for node in self._iter_nodes():
            ids.update(node.postings)
        return ids

    def items(self) -> Iterator[tuple[tuple, dict[Hashable, int]]]:
        """Iterate over ``(feature key, postings)`` pairs."""
        stack: list[tuple[tuple, TrieNode]] = [((), self._root)]
        while stack:
            prefix, node = stack.pop()
            if node.postings:
                yield prefix, dict(node.postings)
            for element, child in node.children.items():
                stack.append((prefix + (element,), child))

    def _iter_nodes(self) -> Iterator[TrieNode]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def estimated_size_bytes(self) -> int:
        """Rough in-memory footprint estimate (for the Figure 18 experiment).

        Counts a fixed overhead per node, per child link and per posting.
        The constants approximate CPython dictionary/object overheads; the
        figure-18 comparison only relies on relative sizes.
        """
        node_bytes = 0
        for node in self._iter_nodes():
            node_bytes += 64
            node_bytes += 48 * len(node.children)
            node_bytes += 40 * len(node.postings)
        return node_bytes
