"""Canonical string codes for path, cycle and tree features.

Filter-then-verify indexes compare features *by value*: two occurrences of
the same structure anywhere in any graph must map to the same key.  For
general graphs computing such a canonical form is as hard as graph
isomorphism, but for the restricted feature classes used by the reproduced
methods it is cheap (this is exactly the observation CT-Index builds on):

* a **path** is canonicalised by taking the lexicographically smaller of its
  label sequence and the reversed sequence;
* a **cycle** is canonicalised by the lexicographically smallest rotation of
  the label sequence, in either direction;
* a **tree** is canonicalised with the AHU (Aho/Hopcroft/Ullman) encoding,
  rooted at its centroid(s).

All codes are plain strings so they can be used as trie keys, dictionary
keys, and hashed into CT-Index bitmaps.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from ..graphs.graph import GraphError, LabeledGraph

__all__ = [
    "canonical_path_code",
    "canonical_cycle_code",
    "canonical_tree_code",
    "canonical_graph_key",
    "exact_graph_signature",
    "tree_code_of_subtree",
]

_SEPARATOR = "\x1f"  # unit separator: never appears in sane label text


def _join(labels: Sequence[Hashable]) -> str:
    return _SEPARATOR.join(str(label) for label in labels)


def canonical_path_code(labels: Sequence[Hashable]) -> str:
    """Canonical code of a label path: min(sequence, reversed sequence)."""
    forward = [str(label) for label in labels]
    backward = list(reversed(forward))
    return _join(min(forward, backward))


def canonical_cycle_code(labels: Sequence[Hashable]) -> str:
    """Canonical code of a cycle given as the label sequence around it.

    The code is the lexicographically smallest string over all rotations of
    the sequence and of its reversal, prefixed with ``cycle:`` so that a
    cycle can never collide with a path or tree of the same labels.
    """
    values = [str(label) for label in labels]
    if len(values) < 3:
        raise ValueError("a simple cycle has at least 3 vertices")
    best: str | None = None
    for sequence in (values, list(reversed(values))):
        for shift in range(len(sequence)):
            rotated = sequence[shift:] + sequence[:shift]
            code = _join(rotated)
            if best is None or code < best:
                best = code
    return f"cycle:{best}"


def canonical_tree_code(tree: LabeledGraph) -> str:
    """AHU canonical code of a labeled free tree.

    The tree is rooted at its centroid; when the centroid is an edge (two
    centroids) the code is the smaller of the two rooted codes.  Raises
    :class:`GraphError` if the graph is not a tree.
    """
    n = tree.num_vertices
    if n == 0:
        return "tree:"
    if tree.num_edges != n - 1:
        raise GraphError("not a tree: |E| != |V| - 1")
    centroids = _tree_centroids(tree)
    codes = sorted(_rooted_code(tree, root, None) for root in centroids)
    return f"tree:{codes[0]}"


def tree_code_of_subtree(graph: LabeledGraph, vertices: Sequence[Hashable]) -> str:
    """Canonical tree code of the subgraph of ``graph`` induced by ``vertices``.

    The induced subgraph must be a tree (checked by :func:`canonical_tree_code`).
    """
    return canonical_tree_code(graph.subgraph(vertices))


# ----------------------------------------------------------------------
# Whole-graph canonical form (batch feature-memo key)
# ----------------------------------------------------------------------

#: above this vertex count (or refinement-leaf budget) the canonical search
#: falls back to an exact vertex-id key — correctness is unaffected, only
#: the "isomorphic repeats share a key" optimisation is skipped
_CANON_MAX_VERTICES = 64
_CANON_MAX_LEAVES = 4096


class _TooSymmetric(Exception):
    """Raised when the canonical search exceeds its leaf budget."""


def canonical_graph_key(graph: LabeledGraph) -> tuple:
    """An exact, hashable key equal for two graphs iff they are isomorphic.

    Query graphs are small, so an exact canonical form is affordable: colour
    refinement (labels first, then iterated neighbour-colour multisets)
    followed by individualisation of the first non-singleton colour class,
    taking the lexicographically smallest certificate over all branches.
    Highly symmetric graphs beyond the leaf budget — and graphs above
    ``_CANON_MAX_VERTICES`` — fall back to an exact vertex-id key: such
    twins simply miss the memo instead of ever colliding.  The fallback is
    itself isomorphism-invariant in *when* it triggers (the search tree
    shape only depends on the isomorphism class), so two isomorphic graphs
    always agree on which kind of key they produce.
    """
    if graph.num_vertices > _CANON_MAX_VERTICES:
        return _exact_vertex_key(graph)
    vertices = list(graph.vertices())
    adjacency = {vertex: list(graph.neighbors(vertex)) for vertex in vertices}
    label_order = {
        label: index
        for index, label in enumerate(sorted(set(map(repr, (graph.label(v) for v in vertices)))))
    }
    colors = {vertex: label_order[repr(graph.label(vertex))] for vertex in vertices}
    state = {"leaves": 0, "best": None}
    try:
        _canon_search(graph, vertices, adjacency, _canon_refine(colors, adjacency), state)
    except _TooSymmetric:
        return _exact_vertex_key(graph)
    return ("canon", graph.num_vertices, graph.num_edges, state["best"])


def exact_graph_signature(graph: LabeledGraph) -> tuple:
    """A hashable, exact (vertex-id sensitive) signature of a labeled graph.

    Two graphs with the same vertex ids, labels and edges share the
    signature — the batch feature memo's first-level key, and the fallback
    of :func:`canonical_graph_key`.  ``repr`` keys keep mixed-type vertex
    ids sortable.
    """
    vertices = tuple(
        sorted(((vertex, graph.label(vertex)) for vertex in graph.vertices()), key=repr)
    )
    edges = tuple(
        sorted((tuple(sorted(edge, key=repr)) for edge in graph.edges()), key=repr)
    )
    return vertices, edges


def _exact_vertex_key(graph: LabeledGraph) -> tuple:
    return ("exact",) + exact_graph_signature(graph)


def _canon_refine(colors: dict, adjacency: dict) -> dict:
    """Iterated neighbour-colour refinement to a stable partition."""
    num_colors = len(set(colors.values()))
    while True:
        signatures = {
            vertex: (colors[vertex], tuple(sorted(colors[n] for n in adjacency[vertex])))
            for vertex in colors
        }
        palette = {
            signature: index
            for index, signature in enumerate(sorted(set(signatures.values())))
        }
        colors = {vertex: palette[signatures[vertex]] for vertex in colors}
        if len(palette) == num_colors:
            return colors
        num_colors = len(palette)


def _canon_search(graph, vertices, adjacency, colors: dict, state: dict) -> None:
    cells: dict[int, list] = {}
    for vertex, color in colors.items():
        cells.setdefault(color, []).append(vertex)
    target_cell = None
    for color in sorted(cells):
        if len(cells[color]) > 1:
            target_cell = cells[color]
            break
    if target_cell is None:
        state["leaves"] += 1
        if state["leaves"] > _CANON_MAX_LEAVES:
            raise _TooSymmetric
        position = {vertex: colors[vertex] for vertex in vertices}
        labels = [None] * len(vertices)
        for vertex in vertices:
            labels[position[vertex]] = repr(graph.label(vertex))
        edges = tuple(
            sorted(
                (min(position[u], position[v]), max(position[u], position[v]))
                for u, v in graph.edges()
            )
        )
        certificate = (tuple(labels), edges)
        if state["best"] is None or certificate < state["best"]:
            state["best"] = certificate
        return
    fresh = len(vertices)  # strictly larger than any current color id
    for vertex in target_cell:
        branched = dict(colors)
        branched[vertex] = fresh
        _canon_search(graph, vertices, adjacency, _canon_refine(branched, adjacency), state)


def _rooted_code(tree: LabeledGraph, vertex: Hashable, parent: Hashable | None) -> str:
    child_codes = sorted(
        _rooted_code(tree, child, vertex)
        for child in tree.neighbors(vertex)
        if child != parent
    )
    return "(" + str(tree.label(vertex)) + _SEPARATOR + "".join(child_codes) + ")"


def _tree_centroids(tree: LabeledGraph) -> list[Hashable]:
    """Return the one or two centroid vertices of a tree (by repeated leaf
    stripping, without mutating the input)."""
    degrees = {vertex: tree.degree(vertex) for vertex in tree.vertices()}
    remaining = set(degrees)
    leaves = [vertex for vertex, degree in degrees.items() if degree <= 1]
    while len(remaining) > 2:
        next_leaves: list[Hashable] = []
        for leaf in leaves:
            remaining.discard(leaf)
            for neighbor in tree.neighbors(leaf):
                if neighbor in remaining:
                    degrees[neighbor] -= 1
                    if degrees[neighbor] == 1:
                        next_leaves.append(neighbor)
        leaves = next_leaves
    return sorted(remaining, key=repr)
