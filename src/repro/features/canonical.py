"""Canonical string codes for path, cycle and tree features.

Filter-then-verify indexes compare features *by value*: two occurrences of
the same structure anywhere in any graph must map to the same key.  For
general graphs computing such a canonical form is as hard as graph
isomorphism, but for the restricted feature classes used by the reproduced
methods it is cheap (this is exactly the observation CT-Index builds on):

* a **path** is canonicalised by taking the lexicographically smaller of its
  label sequence and the reversed sequence;
* a **cycle** is canonicalised by the lexicographically smallest rotation of
  the label sequence, in either direction;
* a **tree** is canonicalised with the AHU (Aho/Hopcroft/Ullman) encoding,
  rooted at its centroid(s).

All codes are plain strings so they can be used as trie keys, dictionary
keys, and hashed into CT-Index bitmaps.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from ..graphs.graph import GraphError, LabeledGraph

__all__ = [
    "canonical_path_code",
    "canonical_cycle_code",
    "canonical_tree_code",
    "tree_code_of_subtree",
]

_SEPARATOR = "\x1f"  # unit separator: never appears in sane label text


def _join(labels: Sequence[Hashable]) -> str:
    return _SEPARATOR.join(str(label) for label in labels)


def canonical_path_code(labels: Sequence[Hashable]) -> str:
    """Canonical code of a label path: min(sequence, reversed sequence)."""
    forward = [str(label) for label in labels]
    backward = list(reversed(forward))
    return _join(min(forward, backward))


def canonical_cycle_code(labels: Sequence[Hashable]) -> str:
    """Canonical code of a cycle given as the label sequence around it.

    The code is the lexicographically smallest string over all rotations of
    the sequence and of its reversal, prefixed with ``cycle:`` so that a
    cycle can never collide with a path or tree of the same labels.
    """
    values = [str(label) for label in labels]
    if len(values) < 3:
        raise ValueError("a simple cycle has at least 3 vertices")
    best: str | None = None
    for sequence in (values, list(reversed(values))):
        for shift in range(len(sequence)):
            rotated = sequence[shift:] + sequence[:shift]
            code = _join(rotated)
            if best is None or code < best:
                best = code
    return f"cycle:{best}"


def canonical_tree_code(tree: LabeledGraph) -> str:
    """AHU canonical code of a labeled free tree.

    The tree is rooted at its centroid; when the centroid is an edge (two
    centroids) the code is the smaller of the two rooted codes.  Raises
    :class:`GraphError` if the graph is not a tree.
    """
    n = tree.num_vertices
    if n == 0:
        return "tree:"
    if tree.num_edges != n - 1:
        raise GraphError("not a tree: |E| != |V| - 1")
    centroids = _tree_centroids(tree)
    codes = sorted(_rooted_code(tree, root, None) for root in centroids)
    return f"tree:{codes[0]}"


def tree_code_of_subtree(graph: LabeledGraph, vertices: Sequence[Hashable]) -> str:
    """Canonical tree code of the subgraph of ``graph`` induced by ``vertices``.

    The induced subgraph must be a tree (checked by :func:`canonical_tree_code`).
    """
    return canonical_tree_code(graph.subgraph(vertices))


def _rooted_code(tree: LabeledGraph, vertex: Hashable, parent: Hashable | None) -> str:
    child_codes = sorted(
        _rooted_code(tree, child, vertex)
        for child in tree.neighbors(vertex)
        if child != parent
    )
    return "(" + str(tree.label(vertex)) + _SEPARATOR + "".join(child_codes) + ")"


def _tree_centroids(tree: LabeledGraph) -> list[Hashable]:
    """Return the one or two centroid vertices of a tree (by repeated leaf
    stripping, without mutating the input)."""
    degrees = {vertex: tree.degree(vertex) for vertex in tree.vertices()}
    remaining = set(degrees)
    leaves = [vertex for vertex, degree in degrees.items() if degree <= 1]
    while len(remaining) > 2:
        next_leaves: list[Hashable] = []
        for leaf in leaves:
            remaining.discard(leaf)
            for neighbor in tree.neighbors(leaf):
                if neighbor in remaining:
                    degrees[neighbor] -= 1
                    if degrees[neighbor] == 1:
                        next_leaves.append(neighbor)
        leaves = next_leaves
    return sorted(remaining, key=repr)
