"""Bounded simple-cycle enumeration (the cycle half of CT-Index's features).

CT-Index complements its tree features with the simple cycles of each graph
up to a maximum length (8 in the paper's default configuration).  Like paths
and trees, cycles are non-induced subgraphs, so ``q ⊆ G`` implies that every
cycle feature of ``q`` is also a cycle feature of ``G`` — which is what makes
them safe filtering features.

The enumeration uses the classic "rooted at the smallest vertex" scheme: a
cycle is discovered exactly once, as a path that starts at its smallest
vertex (in a fixed deterministic order), only visits larger vertices, and
whose second vertex is smaller than its last vertex (this kills the mirrored
traversal of the same cycle).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterator

from ..graphs.graph import LabeledGraph
from .canonical import canonical_cycle_code

__all__ = ["enumerate_simple_cycles", "cycle_feature_codes", "cycle_feature_counts"]


def enumerate_simple_cycles(
    graph: LabeledGraph, max_length: int, min_length: int = 3
) -> Iterator[tuple[Hashable, ...]]:
    """Yield every simple cycle with ``min_length..max_length`` vertices.

    Cycles are yielded as vertex tuples (without repeating the first vertex
    at the end); each cycle is yielded exactly once.
    """
    if min_length < 3:
        raise ValueError("a simple cycle has at least 3 vertices")
    if max_length < min_length:
        return

    order = {vertex: index for index, vertex in enumerate(sorted(graph.vertices(), key=repr))}

    def search(root: Hashable, path: list[Hashable], on_path: set) -> Iterator[tuple[Hashable, ...]]:
        current = path[-1]
        for neighbor in graph.neighbors(current):
            if neighbor == root:
                if len(path) >= min_length and order[path[1]] < order[path[-1]]:
                    yield tuple(path)
                continue
            if neighbor in on_path or order[neighbor] <= order[root]:
                continue
            if len(path) == max_length:
                continue
            path.append(neighbor)
            on_path.add(neighbor)
            yield from search(root, path, on_path)
            on_path.discard(neighbor)
            path.pop()

    for root in sorted(graph.vertices(), key=lambda v: order[v]):
        yield from search(root, [root], {root})


def cycle_feature_codes(graph: LabeledGraph, max_length: int, min_length: int = 3) -> set[str]:
    """Set of canonical codes of the simple cycles of ``graph``."""
    return {
        canonical_cycle_code([graph.label(vertex) for vertex in cycle])
        for cycle in enumerate_simple_cycles(graph, max_length, min_length=min_length)
    }


def cycle_feature_counts(graph: LabeledGraph, max_length: int, min_length: int = 3) -> Counter:
    """Multiset (code -> occurrence count) of the simple cycles of ``graph``."""
    counts: Counter = Counter()
    for cycle in enumerate_simple_cycles(graph, max_length, min_length=min_length):
        counts[canonical_cycle_code([graph.label(vertex) for vertex in cycle])] += 1
    return counts
