"""CT-Index: tree and cycle fingerprints hashed into fixed-width bitmaps.

Klein, Kriege and Mutzel [2011] describe every graph by the canonical string
codes of its tree subgraphs (size ≤ 6) and simple cycles (length ≤ 8), hash
each code into a fixed-width bitmap (4096 bits by default), and filter a
subgraph query with a single bitwise check: a candidate must have every bit
of the query's bitmap set (supergraphs contain all features of their
subgraphs, and the hash is feature-deterministic).  Verification uses VF2.

The bitmap is held as a Python integer, so the filtering check is a pair of
bitwise operations per dataset graph; the false-positive rate depends on the
bitmap width exactly as in the original fingerprint design.
"""

from __future__ import annotations

import zlib
from collections.abc import Hashable

from ..features.extractor import FeatureExtractor, GraphFeatures
from ..graphs.bitset import CandidateBitmap
from ..graphs.graph import LabeledGraph
from ..isomorphism.verifier import Verifier
from .base import SubgraphQueryMethod

__all__ = ["CTIndexMethod"]


class CTIndexMethod(SubgraphQueryMethod):
    """CT-Index: hashed tree/cycle fingerprints with bitwise filtering."""

    name = "ctindex"

    def __init__(
        self,
        tree_max_size: int = 4,
        cycle_max_length: int = 6,
        bitmap_bits: int = 4096,
        verifier: Verifier | None = None,
        extractor: FeatureExtractor | None = None,
    ) -> None:
        if bitmap_bits < 8:
            raise ValueError("bitmap_bits must be at least 8")
        if extractor is None:
            extractor = FeatureExtractor(
                kind=FeatureExtractor.TREES_CYCLES,
                tree_max_size=tree_max_size,
                cycle_max_length=cycle_max_length,
            )
        super().__init__(extractor, verifier)
        self.tree_max_size = extractor.tree_max_size
        self.cycle_max_length = extractor.cycle_max_length
        self.bitmap_bits = bitmap_bits
        self._bitmaps: dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def _hash_feature(self, key: tuple) -> int:
        """Deterministically map a feature key to a bit position."""
        text = "\x1e".join(str(element) for element in key)
        return zlib.crc32(text.encode("utf-8")) % self.bitmap_bits

    def fingerprint(self, features: GraphFeatures) -> int:
        """Bitmap fingerprint of a feature set."""
        bitmap = 0
        for key in features.counts:
            bitmap |= 1 << self._hash_feature(key)
        return bitmap

    # ------------------------------------------------------------------
    def _index_graph(
        self, graph_id: Hashable, graph: LabeledGraph, features: GraphFeatures
    ) -> None:
        self._bitmaps[graph_id] = self.fingerprint(features)

    def index_size_bytes(self) -> int:
        # One fixed-width bitmap per graph plus a small per-entry overhead.
        return len(self._bitmaps) * (self.bitmap_bits // 8 + 48)

    # ------------------------------------------------------------------
    def filter_candidates(
        self, query: LabeledGraph, features: GraphFeatures | None = None
    ) -> CandidateBitmap:
        """Graphs whose bitmap covers every bit of the query's bitmap."""
        self._require_index()
        if features is None:
            features = self.extract_query_features(query)
        query_bitmap = self.fingerprint(features)
        space = self.id_space
        mask = 0
        for graph_id, bitmap in self._bitmaps.items():
            if bitmap & query_bitmap == query_bitmap:
                mask |= space.bit(graph_id)
        return CandidateBitmap(space, mask)

    def verification_snapshot(
        self, supergraph: bool = False, mode: str | None = None
    ) -> "CTIndexMethod":
        """Worker-side copy without the fingerprint table."""
        clone = super().verification_snapshot(supergraph=supergraph, mode=mode)
        clone._bitmaps = {}
        return clone

    def graph_bitmap(self, graph_id: Hashable) -> int:
        """The stored fingerprint of an indexed graph."""
        self._require_index()
        return self._bitmaps[graph_id]
