"""Index-free baseline: every dataset graph is a candidate.

The paper's Figures 2 and 3 contrast the candidate sets of the indexed
methods with the answer-set size; the natural lower bound of filtering power
is "no filtering at all", which this method provides.  It is also the oracle
used by the test suite: the answers of any correct method (with or without
iGQ) must coincide with the answers of :class:`ScanMethod`.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..features.extractor import FeatureExtractor, GraphFeatures
from ..graphs.bitset import CandidateBitmap
from ..graphs.graph import LabeledGraph
from ..isomorphism.verifier import Verifier
from .base import SubgraphQueryMethod

__all__ = ["ScanMethod"]


class ScanMethod(SubgraphQueryMethod):
    """A method whose filtering stage keeps every dataset graph."""

    name = "scan"
    needs_graph_features = False

    def __init__(
        self,
        extractor: FeatureExtractor | None = None,
        verifier: Verifier | None = None,
    ) -> None:
        # The extractor is only used when iGQ is stacked on top (its Isuper
        # component needs query features); a cheap path extractor suffices.
        super().__init__(
            extractor if extractor is not None else FeatureExtractor(max_path_length=2),
            verifier,
        )

    def _index_graph(
        self, graph_id: Hashable, graph: LabeledGraph, features: GraphFeatures
    ) -> None:
        # No index structure: nothing to do.
        return

    def index_size_bytes(self) -> int:
        return 0

    def filter_candidates(
        self, query: LabeledGraph, features: GraphFeatures | None = None
    ) -> CandidateBitmap:
        self._require_index()
        # Only the trivially-safe size pre-filter is applied.
        space = self.id_space
        mask = 0
        for graph_id, graph in self.database.items():
            if (
                graph.num_vertices >= query.num_vertices
                and graph.num_edges >= query.num_edges
            ):
                mask |= space.bit(graph_id)
        return CandidateBitmap(space, mask)
