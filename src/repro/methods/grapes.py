"""Grapes: path index with location information and component-restricted
verification.

Giugno et al. [2013] index the same exhaustive path features as GGSX but also
record *where* each feature occurs inside each dataset graph.  During query
processing the locations of the query's features identify, inside every
candidate graph, the (typically small) connected regions that could possibly
host an embedding; the subgraph isomorphism test is then run against those
regions instead of the full graph.  The original system additionally
parallelises index construction and verification over several threads; the
``num_workers`` parameter mirrors that configuration knob (Grapes(1) vs
Grapes(6) in the paper) — in this pure-Python reproduction it only controls
the deterministic partitioning of the work, not true parallel execution (see
DESIGN.md, substitutions).
"""

from __future__ import annotations

from collections.abc import Hashable

from ..features.extractor import FeatureExtractor, GraphFeatures
from ..features.trie import FeatureTrie
from ..graphs.bitset import CandidateBitmap
from ..graphs.graph import LabeledGraph
from ..graphs.traversal import connected_components, is_connected
from ..isomorphism.compiled import masked_components, masked_edge_count
from ..isomorphism.verifier import Verifier
from .base import SubgraphQueryMethod, dominance_candidate_mask

__all__ = ["GrapesMethod"]


class GrapesMethod(SubgraphQueryMethod):
    """Grapes: path trie + location info + component-restricted verification."""

    name = "grapes"

    def __init__(
        self,
        max_path_length: int = 4,
        num_workers: int = 1,
        verifier: Verifier | None = None,
        extractor: FeatureExtractor | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if extractor is None:
            extractor = FeatureExtractor(
                kind=FeatureExtractor.PATHS, max_path_length=max_path_length
            )
        super().__init__(extractor, verifier)
        self.max_path_length = extractor.max_path_length
        self.num_workers = num_workers
        if num_workers > 1:
            self.name = f"grapes{num_workers}"
        self._trie = FeatureTrie()

    # ------------------------------------------------------------------
    def _index_graph(
        self, graph_id: Hashable, graph: LabeledGraph, features: GraphFeatures
    ) -> None:
        for key, count in features.counts.items():
            self._trie.insert(key, graph_id, count)

    def index_size_bytes(self) -> int:
        trie_bytes = self._trie.estimated_size_bytes()
        location_bytes = 0
        for features in self._graph_features.values():
            for vertices in features.locations.values():
                location_bytes += 40 + 8 * len(vertices)
        return trie_bytes + location_bytes

    # ------------------------------------------------------------------
    def filter_candidates(
        self, query: LabeledGraph, features: GraphFeatures | None = None
    ) -> CandidateBitmap:
        """Same occurrence-count dominance filter as GGSX."""
        self._require_index()
        if features is None:
            features = self.extract_query_features(query)
        return dominance_candidate_mask(self._trie, features, self.id_space)

    # ------------------------------------------------------------------
    def candidate_regions(self, query_features: GraphFeatures, graph_id: Hashable) -> set:
        """Vertices of ``graph_id`` covered by occurrences of query features.

        Any embedding of the query must lie entirely inside this region: each
        query vertex belongs to some query path feature, and the image of
        that path is an occurrence of the same feature in the dataset graph,
        whose vertices were recorded in the location table.
        """
        graph_features = self._graph_features[graph_id]
        region: set = set()
        for key in query_features.counts:
            region.update(graph_features.locations.get(key, ()))
        return region

    def verify(self, query: LabeledGraph, candidate_ids, features: GraphFeatures | None = None) -> set:
        """Component-restricted verification.

        For each candidate, the query is tested against the connected
        components of the subgraph induced by the query-feature locations.
        Falls back to whole-graph testing for disconnected queries (the
        region argument only bounds connected embeddings).

        On the compiled path the query plan is compiled once and each
        component test runs against the candidate's database-cached
        whole-graph :class:`CompiledTarget` restricted by the component's
        vertex bitmask — no region subgraph is ever materialised.  Component
        order, the size/edge pre-checks and the one-test-per-component
        accounting replicate the dict-based path exactly
        (``Verifier(compiled=False)`` restores it for A/B runs).
        """
        self._require_index()
        if features is None:
            features = self.extract_query_features(query)
        query_connected = is_connected(query)
        plan = self.verifier.compile_pattern(query)
        if plan is not None:
            return self._verify_compiled(query, candidate_ids, features, query_connected, plan)
        answers = set()
        for graph_id in candidate_ids:
            graph = self.database.get(graph_id)
            if not query_connected:
                if self.verifier.is_subgraph(query, graph):
                    answers.add(graph_id)
                continue
            region = self.candidate_regions(features, graph_id)
            if len(region) < query.num_vertices:
                continue
            region_graph = graph.subgraph(region)
            matched = False
            for component in connected_components(region_graph):
                if len(component) < query.num_vertices:
                    continue
                component_graph = region_graph.subgraph(component)
                if component_graph.num_edges < query.num_edges:
                    continue
                if self.verifier.is_subgraph(query, component_graph):
                    matched = True
                    break
            if matched:
                answers.add(graph_id)
        return answers

    def _verify_compiled(
        self,
        query: LabeledGraph,
        candidate_ids,
        features: GraphFeatures,
        query_connected: bool,
        plan,
    ) -> set:
        """Region-masked verification on the compiled bitset kernel."""
        verifier = self.verifier
        compiled_target = self.database.compiled_target
        answers = set()
        for graph_id in candidate_ids:
            target = compiled_target(graph_id)
            if not query_connected:
                if verifier.is_subgraph_compiled(plan, target):
                    answers.add(graph_id)
                continue
            region = self.candidate_regions(features, graph_id)
            if len(region) < query.num_vertices:
                continue
            position = target.space.position
            region_mask = 0
            for vertex in region:
                region_mask |= 1 << position(vertex)
            matched = False
            for component_mask in masked_components(target, region_mask):
                if component_mask.bit_count() < query.num_vertices:
                    continue
                if masked_edge_count(target, component_mask) < query.num_edges:
                    continue
                if verifier.is_subgraph_compiled(plan, target, vertex_mask=component_mask):
                    matched = True
                    break
            if matched:
                answers.add(graph_id)
        return answers

    def verification_snapshot(
        self, supergraph: bool = False, mode: str | None = None
    ) -> "GrapesMethod":
        """Worker-side copy without the trie, keeping the location tables —
        component-restricted verification reads them.  The base snapshot
        precompiles and ships the compiled representation the direction
        consumes (whole-graph bitset targets for subgraph verification —
        region-masked matching restricts them per component — and matching
        plans for the supergraph direction)."""
        clone = super().verification_snapshot(supergraph=supergraph, mode=mode)
        clone._graph_features = self._graph_features
        clone._trie = FeatureTrie()
        return clone

    @property
    def trie(self) -> FeatureTrie:
        """The underlying path trie (exposed for index-size reporting)."""
        return self._trie
