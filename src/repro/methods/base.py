"""Base interfaces for filter-then-verify graph query processing methods.

A *method* ``M`` (the paper's notation) owns a feature index over the dataset
graphs and answers subgraph queries in two stages:

1. **filtering** — produce a candidate set ``CS(g)`` guaranteed to contain
   every true answer (no false negatives, possibly false positives);
2. **verification** — run a subgraph isomorphism test for every candidate.

:class:`SubgraphQueryMethod` captures that contract.  The iGQ engine wraps an
instance of it and only interferes between the two stages (pruning the
candidate set), which is why the interface also exposes the query's extracted
features and a way to verify an explicitly given candidate set.

The same index supports *supergraph* queries (Definition 4) through
:meth:`SubgraphQueryMethod.filter_supergraph_candidates`: a dataset graph can
only be contained in the query if all of its features appear in the query at
least as often.
"""

from __future__ import annotations

import copy
import pickle
import time
from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from ..features.extractor import FeatureExtractor, GraphFeatures
from ..graphs.bitset import CandidateBitmap, GraphIdSpace
from ..graphs.database import GraphDatabase
from ..graphs.graph import LabeledGraph
from ..isomorphism.verifier import Verifier

__all__ = ["QueryResult", "SubgraphQueryMethod", "dominance_candidate_mask"]


def dominance_candidate_mask(trie, features: GraphFeatures, space: GraphIdSpace) -> CandidateBitmap:
    """Occurrence-count dominance filter over a feature trie, as a bitmap.

    A graph survives only if it contains every feature of ``features`` at
    least as often (the published GGSX/Grapes filtering condition).  A query
    with no features matches every graph.
    """
    mask: int | None = None
    for key, required in features.counts.items():
        postings = trie.get(key)
        matching = 0
        for graph_id, count in postings.items():
            if count >= required:
                matching |= space.bit(graph_id)
        mask = matching if mask is None else mask & matching
        if not mask:
            return CandidateBitmap(space, 0)
    if mask is None:
        mask = space.full_mask
    return CandidateBitmap(space, mask)


@dataclass
class QueryResult:
    """Outcome and accounting of one query execution."""

    query_name: str | None
    answers: set = field(default_factory=set)
    candidates: set = field(default_factory=set)
    num_isomorphism_tests: int = 0
    filter_seconds: float = 0.0
    verify_seconds: float = 0.0
    #: extra time spent in the iGQ query index (zero for plain methods)
    igq_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total query processing time (filtering + iGQ + verification)."""
        return self.filter_seconds + self.igq_seconds + self.verify_seconds

    @property
    def num_candidates(self) -> int:
        """Size of the candidate set produced by the filtering stage."""
        return len(self.candidates)

    @property
    def num_answers(self) -> int:
        """Size of the answer set."""
        return len(self.answers)

    @property
    def num_false_positives(self) -> int:
        """Candidates that failed verification."""
        return len(self.candidates) - len(self.candidates & self.answers)


class SubgraphQueryMethod(ABC):
    """Abstract filter-then-verify subgraph query processing method."""

    #: short identifier used in reports and benchmark tables
    name: str = "abstract"

    #: methods that never consult per-graph feature tables (e.g. the scan
    #: baseline) may set this to ``False`` to skip feature extraction at
    #: indexing time; the tables are then built lazily if ever needed.
    needs_graph_features: bool = True

    def __init__(self, extractor: FeatureExtractor, verifier: Verifier | None = None) -> None:
        self.extractor = extractor
        self.verifier = verifier if verifier is not None else Verifier()
        self.database: GraphDatabase | None = None
        #: bit-position assignment for the dataset-graph ids; all candidate
        #: sets produced by this method are bitmaps over this space
        self.id_space: GraphIdSpace | None = None
        self._graph_features: dict[Hashable, GraphFeatures] = {}
        #: mode -> [SharedSnapshot, refcount] of published worker snapshots
        self._shared_payloads: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def build_index(self, database: GraphDatabase) -> None:
        """Index every graph of ``database``."""
        self.database = database
        self.id_space = GraphIdSpace(database.ids())
        self._graph_features = {}
        if not self.needs_graph_features:
            return
        for graph_id, graph in database.items():
            features = self.extractor.extract(graph)
            self._graph_features[graph_id] = features
            self._index_graph(graph_id, graph, features)

    @abstractmethod
    def _index_graph(
        self, graph_id: Hashable, graph: LabeledGraph, features: GraphFeatures
    ) -> None:
        """Insert one graph's features into the method's index structure."""

    @abstractmethod
    def index_size_bytes(self) -> int:
        """Estimated in-memory size of the dataset index (Figure 18)."""

    # ------------------------------------------------------------------
    # Filtering stage
    # ------------------------------------------------------------------
    def extract_query_features(self, query: LabeledGraph) -> GraphFeatures:
        """Extract the query's features with the method's extractor."""
        return self.extractor.extract(query)

    @abstractmethod
    def filter_candidates(
        self, query: LabeledGraph, features: GraphFeatures | None = None
    ) -> set:
        """Return the candidate set ``CS(query)`` for a subgraph query.

        ``features`` may carry the query's already-extracted features to
        avoid re-extraction (the iGQ engine shares them across components).
        """

    def filter_supergraph_candidates(
        self, query: LabeledGraph, features: GraphFeatures | None = None
    ) -> set:
        """Candidate set for a *supergraph* query: dataset graphs that may be
        contained in ``query``.

        A dataset graph survives only if every one of its features occurs in
        the query at least as often — the mirror image of subgraph filtering,
        computed from the per-graph feature tables kept at indexing time.
        """
        self._require_index()
        if features is None:
            features = self.extract_query_features(query)
        if not self._graph_features:
            # Lazily build the per-graph feature tables (scan baseline).
            self._graph_features = {
                graph_id: self.extractor.extract(graph)
                for graph_id, graph in self.database.items()
            }
        mask = 0
        for graph_id, graph_features in self._graph_features.items():
            graph = self.database.get(graph_id)
            if graph.num_vertices > query.num_vertices:
                continue
            if graph.num_edges > query.num_edges:
                continue
            if features.covers_counts_of(graph_features):
                mask |= self.id_space.bit(graph_id)
        return CandidateBitmap(self.id_space, mask)

    # ------------------------------------------------------------------
    # Verification stage
    # ------------------------------------------------------------------
    def verify(
        self,
        query: LabeledGraph,
        candidate_ids: Iterable[Hashable],
        features: GraphFeatures | None = None,
    ) -> set:
        """Verify candidates for a subgraph query; return the answer ids.

        ``features`` (the query's extracted features) is accepted so that
        methods using location information during verification — Grapes —
        can share the extraction done at filtering time; the base
        implementation ignores it.

        When the verifier admits the compiled fast path the query is
        compiled into a matching plan *once* and tested against the
        database's cached :class:`CompiledTarget` of each candidate; a
        vectorised batched pre-reject (when enabled by the verifier's
        ``kernel``) settles every certain negative in one array pass first.
        Otherwise every candidate pair goes through the graph-based matcher
        exactly as before.
        """
        self._require_index()
        verifier = self.verifier
        answers = set()
        plan = verifier.compile_pattern(query)
        if plan is not None:
            compiled_target = self.database.compiled_target
            candidates = list(candidate_ids)
            rejected = self._batched_prereject(candidates, plan=plan)
            if rejected is None:
                for graph_id in candidates:
                    if verifier.is_subgraph_compiled(plan, compiled_target(graph_id)):
                        answers.add(graph_id)
            else:
                for graph_id, reject in zip(candidates, rejected):
                    if verifier.is_subgraph_compiled(
                        plan, compiled_target(graph_id), prerejected=bool(reject)
                    ):
                        answers.add(graph_id)
        else:
            for graph_id in candidate_ids:
                if verifier.is_subgraph(query, self.database.get(graph_id)):
                    answers.add(graph_id)
        return answers

    def verify_supergraph(
        self,
        query: LabeledGraph,
        candidate_ids: Iterable[Hashable],
        features: GraphFeatures | None = None,
    ) -> set:
        """Verify candidates for a supergraph query (``G_i ⊆ query``).

        Mirror image of :meth:`verify` on the compiled path: the query is
        compiled once as the *target*, and each candidate contributes its
        database-cached matching plan (dataset graphs play the pattern
        role here, so their plans are reusable across every supergraph
        query).
        """
        self._require_index()
        verifier = self.verifier
        answers = set()
        target = verifier.compile_target(query)
        if target is not None:
            compiled_plan = self.database.compiled_plan
            candidates = list(candidate_ids)
            rejected = self._batched_prereject(candidates, target=target)
            if rejected is None:
                for graph_id in candidates:
                    if verifier.is_subgraph_compiled(compiled_plan(graph_id), target):
                        answers.add(graph_id)
            else:
                for graph_id, reject in zip(candidates, rejected):
                    if verifier.is_subgraph_compiled(
                        compiled_plan(graph_id), target, prerejected=bool(reject)
                    ):
                        answers.add(graph_id)
        else:
            for graph_id in candidate_ids:
                if verifier.is_subgraph(self.database.get(graph_id), query):
                    answers.add(graph_id)
        return answers

    def _batched_prereject(self, candidates, plan=None, target=None):
        """One vectorised signature pass over all candidates of a query.

        Returns a boolean reject array aligned with ``candidates`` (entry
        ``i`` is exactly the scalar pre-reject verdict of pair ``i``), or
        ``None`` when batching is disabled (``kernel="bigint"``), numpy is
        unavailable, or the batch is too small to benefit.  Passing the
        verdict into :meth:`Verifier.is_subgraph_compiled` keeps per-pair
        accounting identical to the scalar path.
        """
        if len(candidates) < 2 or not self.verifier.batched_prereject_enabled():
            return None
        signatures = self.database.dataset_signatures()
        if signatures is None:
            return None
        if plan is not None:
            return signatures.prereject_targets(plan, candidates)
        return signatures.prereject_patterns(target, candidates)

    # ------------------------------------------------------------------
    # End-to-end query processing
    # ------------------------------------------------------------------
    def query(
        self, query: LabeledGraph, features: GraphFeatures | None = None
    ) -> QueryResult:
        """Answer a subgraph query: all dataset graphs containing ``query``.

        ``features`` may carry pre-extracted query features (the batch
        executor memoises extraction across repeated queries).
        """
        self._require_index()
        tests_before = self.verifier.stats.tests
        start = time.perf_counter()
        if features is None:
            features = self.extract_query_features(query)
        candidates = self.filter_candidates(query, features=features)
        filter_seconds = time.perf_counter() - start
        start = time.perf_counter()
        answers = self.verify(query, candidates, features=features)
        verify_seconds = time.perf_counter() - start
        return QueryResult(
            query_name=query.name,
            answers=answers,
            candidates=set(candidates),
            num_isomorphism_tests=self.verifier.stats.tests - tests_before,
            filter_seconds=filter_seconds,
            verify_seconds=verify_seconds,
        )

    def supergraph_query(
        self, query: LabeledGraph, features: GraphFeatures | None = None
    ) -> QueryResult:
        """Answer a supergraph query: all dataset graphs contained in ``query``."""
        self._require_index()
        tests_before = self.verifier.stats.tests
        start = time.perf_counter()
        if features is None:
            features = self.extract_query_features(query)
        candidates = self.filter_supergraph_candidates(query, features=features)
        filter_seconds = time.perf_counter() - start
        start = time.perf_counter()
        answers = self.verify_supergraph(query, candidates, features=features)
        verify_seconds = time.perf_counter() - start
        return QueryResult(
            query_name=query.name,
            answers=answers,
            candidates=set(candidates),
            num_isomorphism_tests=self.verifier.stats.tests - tests_before,
            filter_seconds=filter_seconds,
            verify_seconds=verify_seconds,
        )

    # ------------------------------------------------------------------
    def verification_snapshot(
        self, supergraph: bool = False, mode: str | None = None
    ) -> "SubgraphQueryMethod":
        """A shallow copy carrying only what the verification stage needs.

        The batch executor ships this snapshot to its worker processes, so
        the (potentially large) filtering index must not ride along.  The
        base verification needs the dataset graphs and the verifier but not
        the per-graph feature tables; methods whose ``verify`` consults
        extra state override this (Grapes keeps its location tables).

        The compiled representation the served query direction consumes —
        bitset targets for subgraph queries, matching plans for supergraph
        queries (dataset graphs play the pattern role there), both for a
        ``"mixed"`` engine — is materialised first so the snapshot carries
        it: compilation then happens once in the parent instead of once per
        worker process.  ``mode`` (``"subgraph"`` / ``"supergraph"`` /
        ``"mixed"``) supersedes the legacy boolean ``supergraph`` flag.

        The snapshot gets a fresh verifier with the parent's configuration:
        workers report statistic *deltas*, so shipping the parent's
        accumulated counters (in particular the unbounded per-test timing
        list) would only bloat the pickle — while the configuration must
        ride along so an A/B run (``compiled=False`` / ``precheck=False``)
        keeps its meaning on the pool.
        """
        if mode is None:
            mode = "supergraph" if supergraph else "subgraph"
        if self.database is not None and self.verifier.supports_compiled():
            self.database.precompile(
                targets=mode in ("subgraph", "mixed"),
                plans=mode in ("supergraph", "mixed"),
            )
        clone = copy.copy(self)
        clone._graph_features = {}
        # Published segments belong to the parent: the clone must neither
        # pickle their OS handles nor share the refcounts.
        clone._shared_payloads = {}
        clone.verifier = self.verifier.fresh_clone()
        # Ship what this process resolved the kernel to.  The worker always
        # re-resolves locally (the native library may be unloadable in a
        # fresh process), and reports its own resolution with every chunk;
        # carrying the parent's name lets it be compared against.
        clone.verifier.parent_resolved_kernel = self.verifier.resolved_kernel_name()
        return clone

    def verification_payload(
        self, supergraph: bool = False, mode: str | None = None
    ) -> bytes:
        """Pickled :meth:`verification_snapshot`, ready to ship to a worker.

        One serialisation serves every long-lived worker process holding the
        dataset-side verification state — the batch executor's verification
        pool and the sharded engine's per-shard workers both initialise from
        these bytes.  Only the *dataset* state travels this way; query-index
        state reaches shard workers through the ordered delta log instead
        (see :mod:`repro.core.shard`), so it is never re-snapshotted.
        """
        return pickle.dumps(
            self.verification_snapshot(supergraph=supergraph, mode=mode),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    # ------------------------------------------------------------------
    # Shared-memory snapshot publication (refcounted)
    # ------------------------------------------------------------------
    def acquire_shared_payload(self, mode: str | None = None):
        """Publish (or re-use) the shared-memory snapshot for ``mode``.

        Returns the :class:`~repro.core.shm.SnapshotHandle` workers attach
        to, or ``None`` when shared memory is unavailable — callers then
        fall back to :meth:`verification_payload` bytes.  The snapshot is
        published once per mode and refcounted: every acquire must be paired
        with a :meth:`release_shared_payload`, and the segment is unlinked
        when the count drops to zero (or force-released by
        :meth:`release_shared_payloads` at engine close).
        """
        from ..core import shm

        if mode is None:
            mode = "subgraph"
        entry = self._shared_payloads.get(mode)
        if entry is None:
            snapshot = shm.publish(self.verification_snapshot(mode=mode))
            if snapshot is None:
                return None
            entry = [snapshot, 0]
            self._shared_payloads[mode] = entry
        entry[1] += 1
        return entry[0].handle

    def release_shared_payload(self, mode: str | None = None) -> None:
        """Drop one reference to ``mode``'s published snapshot.

        Unlinks the segment when the last reference drops.  Releasing a
        mode that is not currently published is a no-op (the engine-close
        safety net may already have force-released it).
        """
        if mode is None:
            mode = "subgraph"
        entry = self._shared_payloads.get(mode)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del self._shared_payloads[mode]
            entry[0].close()

    def release_shared_payloads(self) -> None:
        """Force-unlink every published snapshot regardless of refcount.

        Safety net called from :meth:`repro.core.engine.IGQ.close` so a
        leaked executor cannot leave segments behind; pool workers that
        already attached are unaffected (the mapping survives the unlink
        until they detach).
        """
        payloads, self._shared_payloads = self._shared_payloads, {}
        for snapshot, _refs in payloads.values():
            snapshot.close()

    # ------------------------------------------------------------------
    def graph_features(self, graph_id: Hashable) -> GraphFeatures:
        """Return the stored features of an indexed dataset graph."""
        self._require_index()
        return self._graph_features[graph_id]

    def _require_index(self) -> None:
        if self.database is None:
            raise RuntimeError(
                f"{type(self).__name__}.build_index() must be called before querying"
            )

    def __repr__(self) -> str:
        indexed = len(self._graph_features)
        return f"<{type(self).__name__} name={self.name!r} indexed_graphs={indexed}>"
