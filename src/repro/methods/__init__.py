"""Filter-then-verify query processing methods (the paper's base methods)."""

from __future__ import annotations

from ..isomorphism.verifier import Verifier
from .base import QueryResult, SubgraphQueryMethod
from .ctindex import CTIndexMethod
from .ggsx import GGSXMethod
from .grapes import GrapesMethod
from .naive import ScanMethod

__all__ = [
    "QueryResult",
    "SubgraphQueryMethod",
    "CTIndexMethod",
    "GGSXMethod",
    "GrapesMethod",
    "ScanMethod",
    "available_methods",
    "create_method",
]

#: Method names accepted by :func:`create_method`, mirroring the paper's
#: algorithm line-up (GGSX, Grapes, Grapes(6), CT-Index) plus the scan
#: baseline used in tests.
_FACTORY = {
    "scan": lambda **kwargs: ScanMethod(**kwargs),
    "ggsx": lambda **kwargs: GGSXMethod(**kwargs),
    "grapes": lambda **kwargs: GrapesMethod(num_workers=1, **kwargs),
    "grapes6": lambda **kwargs: GrapesMethod(num_workers=6, **kwargs),
    "ctindex": lambda **kwargs: CTIndexMethod(**kwargs),
}


def available_methods() -> list[str]:
    """Names of the base methods that :func:`create_method` can build."""
    return sorted(_FACTORY)


def create_method(name: str, verifier: Verifier | None = None, **kwargs) -> SubgraphQueryMethod:
    """Instantiate a base method by name.

    Parameters
    ----------
    name:
        One of :func:`available_methods` (``"ggsx"``, ``"grapes"``,
        ``"grapes6"``, ``"ctindex"``, ``"scan"``).
    verifier:
        Optional shared :class:`~repro.isomorphism.verifier.Verifier`.
    kwargs:
        Method-specific options (e.g. ``max_path_length`` for GGSX/Grapes,
        ``tree_max_size`` / ``cycle_max_length`` / ``bitmap_bits`` for
        CT-Index).
    """
    try:
        factory = _FACTORY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; expected one of {available_methods()}"
        ) from None
    return factory(verifier=verifier, **kwargs)
