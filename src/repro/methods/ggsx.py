"""GraphGrepSX (GGSX): exhaustive path enumeration indexed in a trie.

Bonnici et al. [2010] index, for every dataset graph, all simple paths of up
to a maximum length (4 in the paper's experiments) in a suffix-trie carrying
per-graph occurrence counts.  A subgraph query is filtered by requiring that
every query path occurs in a candidate at least as many times as in the
query; verification uses VF2.

This implementation stores canonical undirected path features in a
:class:`~repro.features.trie.FeatureTrie`; the occurrence-count dominance
check is exactly the published filtering condition.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..features.extractor import FeatureExtractor, GraphFeatures
from ..features.trie import FeatureTrie
from ..graphs.bitset import CandidateBitmap
from ..graphs.graph import LabeledGraph
from ..isomorphism.verifier import Verifier
from .base import SubgraphQueryMethod, dominance_candidate_mask

__all__ = ["GGSXMethod"]


class GGSXMethod(SubgraphQueryMethod):
    """GraphGrepSX: path-trie index with occurrence-count filtering."""

    name = "ggsx"

    def __init__(
        self,
        max_path_length: int = 4,
        verifier: Verifier | None = None,
        extractor: FeatureExtractor | None = None,
    ) -> None:
        if extractor is None:
            extractor = FeatureExtractor(
                kind=FeatureExtractor.PATHS, max_path_length=max_path_length
            )
        super().__init__(extractor, verifier)
        self.max_path_length = extractor.max_path_length
        self._trie = FeatureTrie()

    # ------------------------------------------------------------------
    def _index_graph(
        self, graph_id: Hashable, graph: LabeledGraph, features: GraphFeatures
    ) -> None:
        for key, count in features.counts.items():
            self._trie.insert(key, graph_id, count)

    def index_size_bytes(self) -> int:
        return self._trie.estimated_size_bytes()

    # ------------------------------------------------------------------
    def filter_candidates(
        self, query: LabeledGraph, features: GraphFeatures | None = None
    ) -> CandidateBitmap:
        """Graphs whose path-occurrence counts dominate the query's."""
        self._require_index()
        if features is None:
            features = self.extract_query_features(query)
        return dominance_candidate_mask(self._trie, features, self.id_space)

    def verification_snapshot(
        self, supergraph: bool = False, mode: str | None = None
    ) -> "GGSXMethod":
        """Worker-side copy without the path trie (verify never reads it)."""
        clone = super().verification_snapshot(supergraph=supergraph, mode=mode)
        clone._trie = FeatureTrie()
        return clone

    @property
    def trie(self) -> FeatureTrie:
        """The underlying path trie (exposed for index-size reporting)."""
        return self._trie
