"""Typed engine configuration: one validated object instead of flat kwargs.

Four generations of performance machinery (batch executor, compiled
verification, unified containment, sharded cache) each bolted new flat
kwargs onto :class:`~repro.core.engine.IGQ` and ``run_batch``
(``igq_compiled=``, ``pipeline=``, ``shards=``, ``shard_backend=``,
``num_workers=``, ``batch_backend=``, …).  This module replaces that
accretion with a small tree of frozen dataclasses:

* :class:`CacheConfig` — the query cache (``C``, ``W``, replacement policy);
* :class:`VerifierConfig` — the isomorphism verifier and the compiled
  fast-path / containment-layer A/B flags;
* :class:`BatchConfig` — the batch executor (workers, backend, pipelining);
* :class:`ShardConfig` — the sharded query index;
* :class:`ServiceConfig` / :class:`TenantConfig` — the service front door:
  per-tenant fairness weights, ``max_in_flight`` admission quotas, rate
  limits and query timeouts consumed by the multi-tenant scheduler and the
  network server;
* :class:`PersistConfig` — durable cache state: the WAL/snapshot directory,
  fsync discipline and snapshot budget consumed by :mod:`repro.persist`,
  plus the leader address for read-only followers;
* :class:`EngineConfig` — the composition of the sections plus the query mode,
  which is what :meth:`~repro.core.engine.IGQ.from_config`, the experiment
  runner and :class:`~repro.service.GraphQueryService` consume.

Every config is frozen (hashable, shareable), validates eagerly at
construction with actionable errors (:class:`ConfigError` names the field,
the offending value and the accepted ones), and round-trips losslessly
through :meth:`EngineConfig.to_dict` / :meth:`EngineConfig.from_dict` — the
dict form is JSON-serialisable, so process shards, worker snapshots and
experiment grids can ship one config object instead of re-threading kwargs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any

__all__ = [
    "MODES",
    "QUERY_MODES",
    "SUBGRAPH_MODE",
    "SUPERGRAPH_MODE",
    "MIXED_MODE",
    "ConfigError",
    "CacheConfig",
    "VerifierConfig",
    "BatchConfig",
    "ShardConfig",
    "TenantConfig",
    "ServiceConfig",
    "PersistConfig",
    "EngineConfig",
    "validate_query_mode",
]

SUBGRAPH_MODE = "subgraph"
SUPERGRAPH_MODE = "supergraph"
#: engines in mixed mode take the query type per call instead of fixing it
MIXED_MODE = "mixed"

#: accepted engine modes; ``"mixed"`` engines take the query type per call
#: (the service front door) instead of fixing it at construction
MODES = (SUBGRAPH_MODE, SUPERGRAPH_MODE, MIXED_MODE)
#: modes an individual *query* can have (an engine mode minus ``"mixed"``)
QUERY_MODES = (SUBGRAPH_MODE, SUPERGRAPH_MODE)


def validate_query_mode(mode: str) -> str:
    """Check a per-query mode; shared by engine, executor and service."""
    if mode not in QUERY_MODES:
        raise ValueError(
            f"unknown query mode {mode!r}; expected "
            f"{SUBGRAPH_MODE!r} or {SUPERGRAPH_MODE!r}"
        )
    return mode

_ALGORITHMS = ("vf2", "ullmann")
_KERNELS = ("auto", "bigint", "numpy", "native")
_POLICIES = ("utility", "hit_rate", "fifo")
_BATCH_BACKENDS = ("auto", "sequential", "thread", "process")
_SHARD_BACKENDS = ("auto", "inline", "process")
_FSYNC_MODES = ("always", "flush", "never")


class ConfigError(ValueError):
    """An engine configuration value is invalid (message says how to fix it)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _require_choice(section: str, name: str, value: Any, choices: tuple) -> None:
    _require(
        value in choices,
        f"{section}.{name}={value!r} is not valid; expected one of {choices}",
    )


def _require_positive_int(section: str, name: str, value: Any) -> None:
    _require(
        isinstance(value, int) and not isinstance(value, bool) and value >= 1,
        f"{section}.{name}={value!r} is not valid; expected an integer >= 1",
    )


def _require_bool(section: str, name: str, value: Any) -> None:
    _require(
        isinstance(value, bool),
        f"{section}.{name}={value!r} is not valid; expected a bool",
    )


def _require_positive_number(section: str, name: str, value: Any) -> None:
    _require(
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value > 0,
        f"{section}.{name}={value!r} is not valid; expected a number > 0",
    )


def _from_dict(cls, data: Any, section: str):
    """Build a config dataclass from a (possibly partial) plain dict."""
    if isinstance(data, cls):
        return data
    _require(
        isinstance(data, dict),
        f"{section} must be a mapping or {cls.__name__}, got {type(data).__name__}",
    )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    _require(
        not unknown,
        f"{section} has unknown key(s) {unknown}; valid keys are {sorted(known)}",
    )
    return cls(**data)


@dataclass(frozen=True)
class CacheConfig:
    """The iGQ query cache: capacity ``C``, window ``W``, replacement policy."""

    #: maximum number of cached query graphs (the paper's ``C``)
    size: int = 500
    #: query-window size (the paper's ``W``, with ``W <= C``)
    window: int = 100
    #: replacement policy name (``"utility"`` | ``"hit_rate"`` | ``"fifo"``)
    policy: str = "utility"

    def __post_init__(self) -> None:
        _require_positive_int("cache", "size", self.size)
        _require_positive_int("cache", "window", self.window)
        _require(
            self.window <= self.size,
            f"cache.window={self.window} cannot exceed cache.size={self.size} "
            "(the paper requires W <= C)",
        )
        _require_choice("cache", "policy", self.policy, _POLICIES)


@dataclass(frozen=True)
class VerifierConfig:
    """The isomorphism verifier and its fast-path A/B switches."""

    #: matching algorithm (``"vf2"`` | ``"ullmann"``)
    algorithm: str = "vf2"
    #: induced-subgraph semantics (not used by the paper's setup)
    induced: bool = False
    #: allow the compiled bitset kernel on verification paths
    compiled: bool = True
    #: label-histogram / degree-signature early-fail check
    precheck: bool = True
    #: compiled containment layer of the two component indexes (query-vs-query
    #: containment on the bitset kernel; ``False`` restores the dict matcher)
    igq_compiled: bool = True
    #: compiled-kernel backend (``"auto"`` | ``"bigint"`` | ``"numpy"`` |
    #: ``"native"``): ``"bigint"`` is the pure-Python bitmask loop,
    #: ``"numpy"`` the vectorised uint64 word-array kernel (bigint fallback
    #: when numpy is absent), ``"native"`` the C inner loop (bigint fallback
    #: when the shared library cannot be built or loaded), ``"auto"`` native
    #: when loadable and a per-target cost model otherwise; answers are
    #: identical under every choice
    kernel: str = "auto"

    def __post_init__(self) -> None:
        _require_choice("verifier", "algorithm", self.algorithm, _ALGORITHMS)
        _require_choice("verifier", "kernel", self.kernel, _KERNELS)
        for name in ("induced", "compiled", "precheck", "igq_compiled"):
            _require_bool("verifier", name, getattr(self, name))

    def build(self):
        """Instantiate the configured :class:`~repro.isomorphism.verifier.Verifier`."""
        from ..isomorphism.verifier import Verifier

        return Verifier(
            algorithm=self.algorithm,
            induced=self.induced,
            compiled=self.compiled,
            precheck=self.precheck,
            kernel=self.kernel,
        )


@dataclass(frozen=True)
class BatchConfig:
    """The batch executor: verification pool and pipelined planning."""

    #: worker-pool size for the verification stage (1 = sequential)
    num_workers: int = 1
    #: pool backend (``"auto"`` | ``"sequential"`` | ``"thread"`` | ``"process"``)
    backend: str = "auto"
    #: candidates per worker task (``None`` = even split over the workers)
    chunk_size: int | None = None
    #: plan query *i+1* while query *i* verifies on the pool
    pipeline: bool = True
    #: memoise query feature extraction across the batch
    memoize_features: bool = True

    def __post_init__(self) -> None:
        _require_positive_int("batch", "num_workers", self.num_workers)
        _require_choice("batch", "backend", self.backend, _BATCH_BACKENDS)
        if self.chunk_size is not None:
            _require_positive_int("batch", "chunk_size", self.chunk_size)
        _require_bool("batch", "pipeline", self.pipeline)
        _require_bool("batch", "memoize_features", self.memoize_features)


@dataclass(frozen=True)
class ShardConfig:
    """The sharded query index (delta-replicated cache partitions)."""

    #: number of cache partitions (1 = the single-shard engine)
    shards: int = 1
    #: shard runtime (``"auto"`` | ``"inline"`` | ``"process"``)
    backend: str = "auto"
    #: compact the delta log above this many records (``None`` = never)
    compact_threshold: int | None = 1024
    #: replicate an entry onto other shards once it has been hit by this
    #: many probes (``None`` = hot-key replication and probe-side pruning
    #: off — the static-partition behaviour)
    hot_threshold: int | None = None
    #: rebalance cold entries between partitions every this many window
    #: flushes (``None`` = partitions stay at their canonical-hash homes)
    rebalance_interval: int | None = None
    #: shards holding each hot entry (``None`` = all of them; otherwise
    #: ``2 <= replication_factor <= shards``)
    replication_factor: int | None = None

    def __post_init__(self) -> None:
        _require_positive_int("shard", "shards", self.shards)
        _require_choice("shard", "backend", self.backend, _SHARD_BACKENDS)
        if self.compact_threshold is not None:
            _require_positive_int("shard", "compact_threshold", self.compact_threshold)
        if self.hot_threshold is not None:
            _require_positive_int("shard", "hot_threshold", self.hot_threshold)
        if self.rebalance_interval is not None:
            _require_positive_int("shard", "rebalance_interval", self.rebalance_interval)
        if self.replication_factor is not None:
            _require_positive_int("shard", "replication_factor", self.replication_factor)
            _require(
                self.replication_factor >= 2,
                f"shard.replication_factor={self.replication_factor} is not "
                "valid; expected >= 2 (one copy is just the home shard — use "
                "None for full replication)",
            )
            _require(
                self.replication_factor <= self.shards,
                f"shard.replication_factor={self.replication_factor} cannot "
                f"exceed shard.shards={self.shards}",
            )


@dataclass(frozen=True)
class TenantConfig:
    """QoS envelope of one named tenant at the service front door.

    Tenants are the unit of fairness: the service scheduler keeps one queue
    per tenant and dispatches across them with deficit round-robin weighted
    by :attr:`weight`, so one tenant's backlog can never starve another's
    queries.  Sessions opened on the embedded
    :class:`~repro.service.GraphQueryService` and ``tenant`` names sent over
    the wire protocol both resolve to these entries (unnamed traffic runs
    under the ``"default"`` tenant with the :class:`ServiceConfig`
    defaults).
    """

    #: tenant name (what sessions and wire requests carry)
    name: str = ""
    #: deficit-round-robin weight: per dispatch round a tenant gets up to
    #: ``weight`` queries before the scheduler moves on
    weight: int = 1
    #: admission quota — maximum submitted-but-unresolved queries; further
    #: submissions block (embedded API) or are rejected (network front
    #: door).  ``None`` uses ``service.default_max_in_flight``
    max_in_flight: int | None = None
    #: token-bucket rate limit in queries/second (``None`` = unlimited);
    #: over-rate queries stay queued and dispatch when tokens refill
    rate_limit: float | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and self.name,
            f"service.tenants.name={self.name!r} is not valid; expected a "
            "non-empty string",
        )
        _require_positive_int("service.tenants", "weight", self.weight)
        if self.max_in_flight is not None:
            _require_positive_int("service.tenants", "max_in_flight", self.max_in_flight)
        if self.rate_limit is not None:
            _require_positive_number("service.tenants", "rate_limit", self.rate_limit)
            object.__setattr__(self, "rate_limit", float(self.rate_limit))


@dataclass(frozen=True)
class ServiceConfig:
    """The service front door: tenant QoS defaults and per-tenant overrides."""

    #: fairness weight of tenants without an explicit :class:`TenantConfig`
    default_weight: int = 1
    #: admission quota of tenants without an explicit ``max_in_flight``
    default_max_in_flight: int = 32
    #: default per-query timeout in seconds (``None`` = no timeout); a
    #: query that expires before dispatch is dropped unexecuted, one that
    #: expires after dispatch fails its future but still completes in the
    #: engine (cache state is never left half-updated)
    default_timeout_seconds: float | None = None
    #: per-tenant QoS overrides (any tenant not listed uses the defaults)
    tenants: tuple = ()

    def __post_init__(self) -> None:
        _require_positive_int("service", "default_weight", self.default_weight)
        _require_positive_int("service", "default_max_in_flight", self.default_max_in_flight)
        if self.default_timeout_seconds is not None:
            _require_positive_number(
                "service", "default_timeout_seconds", self.default_timeout_seconds
            )
            object.__setattr__(
                self, "default_timeout_seconds", float(self.default_timeout_seconds)
            )
        _require(
            isinstance(self.tenants, (tuple, list)),
            f"service.tenants={self.tenants!r} is not valid; expected a "
            "sequence of TenantConfig entries (or their dict forms)",
        )
        coerced = tuple(
            _from_dict(TenantConfig, entry, "service.tenants") for entry in self.tenants
        )
        names = [entry.name for entry in coerced]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        _require(
            not duplicates,
            f"service.tenants has duplicate tenant name(s) {duplicates}; "
            "each tenant may be configured once",
        )
        object.__setattr__(self, "tenants", coerced)

    def tenant(self, name: str) -> TenantConfig:
        """The effective :class:`TenantConfig` for ``name`` (defaults filled)."""
        for entry in self.tenants:
            if entry.name == name:
                if entry.max_in_flight is None:
                    return TenantConfig(
                        name=entry.name,
                        weight=entry.weight,
                        max_in_flight=self.default_max_in_flight,
                        rate_limit=entry.rate_limit,
                    )
                return entry
        return TenantConfig(
            name=name,
            weight=self.default_weight,
            max_in_flight=self.default_max_in_flight,
        )


@dataclass(frozen=True)
class PersistConfig:
    """Durable cache state: the WAL + snapshot store of :mod:`repro.persist`.

    Persistence is off by default (``dir=None``): the engine then behaves
    exactly as before, keeping all cache state in memory.  Setting ``dir``
    turns every window flush into a durable WAL batch and warm-starts the
    engine from disk on the next open with the same directory.
    """

    #: WAL/snapshot directory (``None`` = persistence off).  Each engine
    #: needs its own directory; segments and snapshots inside it are
    #: managed by the persister.
    dir: str | None = None
    #: fsync discipline: ``"flush"`` (default) fsyncs once per window-flush
    #: batch — a crash loses at most the un-flushed window; ``"always"``
    #: fsyncs every record; ``"never"`` leaves flushing to the OS (fastest,
    #: weakest — survives process crash but not power loss)
    fsync: str = "flush"
    #: write a compacted snapshot and rotate the WAL segment once this many
    #: records have accumulated since the last snapshot
    snapshot_interval: int = 256
    #: leader address (``"host:port"``) for follower mode: instead of
    #: serving queries, the engine's shard state mirrors a remote leader's
    #: delta log over the wire protocol (read-only probes)
    follow: str | None = None

    def __post_init__(self) -> None:
        if self.dir is not None:
            _require(
                isinstance(self.dir, str) and self.dir,
                f"persist.dir={self.dir!r} is not valid; expected a non-empty "
                "path string (or None to disable persistence)",
            )
        _require_choice("persist", "fsync", self.fsync, _FSYNC_MODES)
        _require_positive_int("persist", "snapshot_interval", self.snapshot_interval)
        if self.follow is not None:
            _require(
                isinstance(self.follow, str) and ":" in self.follow,
                f"persist.follow={self.follow!r} is not valid; expected a "
                "'host:port' leader address (or None)",
            )

    @property
    def enabled(self) -> bool:
        """True when a durable directory is configured."""
        return self.dir is not None


@dataclass(frozen=True)
class EngineConfig:
    """Everything needed to construct (and drive) an iGQ engine.

    Build one, pass it to :meth:`repro.core.engine.IGQ.from_config` or
    :class:`repro.service.GraphQueryService`; ship it across processes or
    store it next to experiment results via :meth:`to_dict`.
    """

    #: query type the engine serves; ``"mixed"`` engines dispatch per query
    mode: str = "subgraph"
    #: enable the ``Isub`` component (cached supergraphs of the new query)
    enable_isub: bool = True
    #: enable the ``Isuper`` component (cached subgraphs of the new query)
    enable_isuper: bool = True
    cache: CacheConfig = field(default_factory=CacheConfig)
    verifier: VerifierConfig = field(default_factory=VerifierConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)
    shard: ShardConfig = field(default_factory=ShardConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    persist: PersistConfig = field(default_factory=PersistConfig)

    def __post_init__(self) -> None:
        _require_choice("engine", "mode", self.mode, MODES)
        _require_bool("engine", "enable_isub", self.enable_isub)
        _require_bool("engine", "enable_isuper", self.enable_isuper)
        _require(
            self.enable_isub or self.enable_isuper,
            "engine.enable_isub and engine.enable_isuper cannot both be False; "
            "at least one iGQ component must stay enabled",
        )
        # Sections may arrive as plain dicts (from_dict, JSON configs);
        # coerce them so every EngineConfig holds validated sub-configs.
        for section, section_cls in _SECTIONS.items():
            value = getattr(self, section)
            if isinstance(value, dict):
                object.__setattr__(self, section, _from_dict(section_cls, value, section))
            else:
                _require(
                    isinstance(value, section_cls),
                    f"engine.{section} must be a {section_cls.__name__} (or a "
                    f"mapping of its fields), got {type(value).__name__}",
                )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain nested-dict form (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output (partial dicts fill
        in defaults; unknown keys raise :class:`ConfigError`)."""
        return _from_dict(cls, data, "engine")

    # ------------------------------------------------------------------
    def replace(self, **changes) -> "EngineConfig":
        """A copy with top-level fields replaced (``dataclasses.replace``)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)

    def describe(self) -> str:
        """One-line human summary (used by reprs and service reports)."""
        parts = [f"mode={self.mode}", f"cache={self.cache.size}/{self.cache.window}"]
        if self.shard.shards > 1:
            parts.append(f"shards={self.shard.shards}({self.shard.backend})")
        if self.batch.num_workers > 1:
            parts.append(f"workers={self.batch.num_workers}({self.batch.backend})")
        return " ".join(parts)


#: section name -> dataclass, used when sections arrive as plain dicts
_SECTIONS = {
    "cache": CacheConfig,
    "verifier": VerifierConfig,
    "batch": BatchConfig,
    "shard": ShardConfig,
    "service": ServiceConfig,
    "persist": PersistConfig,
}
