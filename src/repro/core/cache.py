"""The iGQ query cache: previously executed queries, their answers, metadata.

The iGQ index ``I`` (§4, §5 of the paper) is conceptually a cache of
previously executed query graphs together with

* the answer set the base method computed for them (``Answer(G)``),
* the features extracted from them (re-used by both component indexes), and
* the bookkeeping the replacement policy of §5.1 needs: the number of hits
  ``H(g)``, the number of queries processed since insertion ``M(g)``, the
  number of candidate-set graphs removed thanks to the entry ``R(g)``, and
  the accumulated alleviated isomorphism-test cost ``C(g)``.

:class:`QueryCache` is that store ("Igraphs" plus "Stat(iGQ Graph)" in the
paper's Figure 6); the component indexes :class:`~repro.core.isub.SubgraphQueryIndex`
and :class:`~repro.core.isuper.SupergraphQueryIndex` are built over it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass, field

from ..features.extractor import GraphFeatures
from ..graphs.graph import LabeledGraph

__all__ = ["CacheEntry", "QueryCache"]


@dataclass
class CacheEntry:
    """One cached query graph with its answer set and utility metadata."""

    entry_id: int
    graph: LabeledGraph
    features: GraphFeatures
    answer: frozenset
    #: value of the cache's global query counter when the entry was added
    added_at: int
    #: H(g): number of times this entry pruned (or answered) a new query
    hits: int = 0
    #: R(g): total number of candidate graphs removed thanks to this entry
    removed: int = 0
    #: C(g): total estimated cost of the isomorphism tests alleviated
    alleviated_cost: float = 0.0
    #: free-form annotations (e.g. the query's workload group)
    tags: dict = field(default_factory=dict)
    #: compiled (bitset) target representation of :attr:`graph`, built by
    #: the ``Isub`` component on insertion — the cached query plays the
    #: *target* role there ("is the new query a subgraph of this entry?")
    #: — and reused until the entry is evicted
    compiled_target: object | None = field(default=None, repr=False, compare=False)
    #: compiled matching plan of :attr:`graph`, built by the ``Isuper``
    #: component on insertion — the cached query plays the *pattern* role
    #: there ("is this entry a subgraph of the new query?")
    compiled_plan: object | None = field(default=None, repr=False, compare=False)

    def queries_since_added(self, current_counter: int) -> int:
        """M(g): queries processed since this entry entered the cache."""
        return max(current_counter - self.added_at, 0)

    def record_hit(self, removed: int, alleviated_cost: float) -> None:
        """Account one hit that removed ``removed`` candidates."""
        self.hits += 1
        self.removed += removed
        self.alleviated_cost += alleviated_cost

    def release_compiled_target(self) -> None:
        """Drop the compiled target representation (idempotent)."""
        self.compiled_target = None

    def release_compiled_plan(self) -> None:
        """Drop the compiled matching plan (idempotent)."""
        self.compiled_plan = None

    def release_compiled(self) -> None:
        """Drop the compiled representations (eviction, index removal).

        Long streams with churny caches would otherwise accumulate compiled
        state on entry objects that outlive their index membership (the
        replacement policy, reports and tests keep references to evicted
        entries); releasing here keeps the steady-state number of live
        compiled objects bounded by the cache capacity.  Every path an entry
        can leave service by funnels through these helpers — cache eviction
        (:meth:`QueryCache.remove`), per-index removal
        (:meth:`~repro.core.containment.ContainmentIndex.remove`), shadow
        rebuilds that drop stale entries, and shard-replica evictions
        (:meth:`~repro.core.shard.QueryIndexShard.apply`) — so a released
        payload can never leak and releasing twice is a no-op.
        """
        self.release_compiled_target()
        self.release_compiled_plan()


class QueryCache:
    """Store of cached query graphs (``Igraphs`` + metadata in the paper)."""

    def __init__(self) -> None:
        self._entries: dict[int, CacheEntry] = {}
        self._next_id = 0
        #: total number of queries processed by the engine (drives M(g))
        self.query_counter = 0

    # ------------------------------------------------------------------
    def add(
        self,
        graph: LabeledGraph,
        features: GraphFeatures,
        answer: frozenset | set,
        tags: dict | None = None,
    ) -> CacheEntry:
        """Insert a new entry and return it."""
        entry = CacheEntry(
            entry_id=self._next_id,
            graph=graph,
            features=features,
            answer=frozenset(answer),
            added_at=self.query_counter,
            tags=dict(tags or {}),
        )
        self._entries[entry.entry_id] = entry
        self._next_id += 1
        return entry

    def restore_entry(
        self,
        entry_id: int,
        graph: LabeledGraph,
        features: GraphFeatures,
        answer: frozenset | set,
        added_at: int,
        tags: dict | None = None,
        *,
        hits: int = 0,
        removed: int = 0,
        alleviated_cost: float = 0.0,
        compiled_target: object | None = None,
        compiled_plan: object | None = None,
    ) -> CacheEntry:
        """Reinstall an entry under its *original* id and metadata.

        The warm-restart path (:mod:`repro.persist`): unlike :meth:`add`,
        the caller supplies the id, the insertion counter and the §5.1
        replacement statistics recovered from disk, so the restored cache
        is indistinguishable from the one that was persisted.  The id
        allocator is advanced past the restored id, keeping future
        :meth:`add` ids collision-free.
        """
        if entry_id in self._entries:
            raise ValueError(f"cache entry {entry_id!r} already exists")
        entry = CacheEntry(
            entry_id=entry_id,
            graph=graph,
            features=features,
            answer=frozenset(answer),
            added_at=added_at,
            hits=hits,
            removed=removed,
            alleviated_cost=alleviated_cost,
            tags=dict(tags or {}),
            compiled_target=compiled_target,
            compiled_plan=compiled_plan,
        )
        self._entries[entry.entry_id] = entry
        self._next_id = max(self._next_id, entry_id + 1)
        return entry

    @property
    def next_entry_id(self) -> int:
        """The id the next :meth:`add` will assign (restore bookkeeping)."""
        return self._next_id

    def reserve_ids(self, next_id: int) -> None:
        """Advance the id allocator to at least ``next_id`` (warm restart)."""
        self._next_id = max(self._next_id, next_id)

    def remove(self, entry_id: int) -> CacheEntry:
        """Remove and return the entry with ``entry_id``.

        The entry's compiled representations are released: an evicted entry
        may stay referenced (maintenance reports, replacement bookkeeping,
        tests), but its compiled state is only meaningful while the entry is
        served by the component indexes.
        """
        try:
            entry = self._entries.pop(entry_id)
        except KeyError:
            raise KeyError(f"unknown cache entry {entry_id!r}") from None
        entry.release_compiled()
        return entry

    def get(self, entry_id: int) -> CacheEntry:
        """Return the entry with ``entry_id``."""
        try:
            return self._entries[entry_id]
        except KeyError:
            raise KeyError(f"unknown cache entry {entry_id!r}") from None

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over the cached entries in insertion order."""
        return iter(self._entries.values())

    def entry_ids(self) -> list[int]:
        """Ids of the cached entries, in insertion order."""
        return list(self._entries)

    def note_query_processed(self) -> None:
        """Advance the global query counter (one per processed query)."""
        self.query_counter += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: Hashable) -> bool:
        return entry_id in self._entries

    def __repr__(self) -> str:
        return f"<QueryCache entries={len(self._entries)} queries_seen={self.query_counter}>"
