"""The iGQ query processing engine (Figure 6 and §4.2–4.4 of the paper).

:class:`IGQ` wraps any filter-then-verify method ``M`` and adds the query
index: for every incoming query it

1. lets ``M`` filter the dataset graphs into the candidate set ``CS(g)``,
2. consults the two iGQ components — ``Isub`` (previous queries that are
   supergraphs of ``g``) and ``Isuper`` (previous queries that are subgraphs
   of ``g``) — and prunes ``CS(g)`` with formulae (3) and (5),
3. short-circuits entirely on the two optimal cases of §4.3 (exact query
   repeat; a contained previous query with an empty answer),
4. verifies only the surviving candidates, assembles the final answer with
   formula (4), and
5. updates the replacement-policy metadata and the query window (§5).

The same engine processes *supergraph* queries (§4.4): the roles of the two
components are mirrored — answers of contained previous queries are
guaranteed answers, answers of containing previous queries bound the
candidate set from above.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..graphs.database import GraphDatabase
from ..graphs.graph import LabeledGraph
from ..isomorphism.cost import isomorphism_test_cost
from ..isomorphism.verifier import Verifier
from ..methods.base import QueryResult, SubgraphQueryMethod
from .cache import CacheEntry, QueryCache
from .isub import SubgraphQueryIndex
from .isuper import SupergraphQueryIndex
from .maintenance import IndexMaintenance, MaintenanceReport, PendingQuery
from .replacement import ReplacementPolicy, create_policy

__all__ = ["IGQQueryResult", "IGQ"]

SUBGRAPH_MODE = "subgraph"
SUPERGRAPH_MODE = "supergraph"


@dataclass
class IGQQueryResult(QueryResult):
    """Query outcome enriched with iGQ-specific accounting."""

    #: dataset graphs whose verification was skipped because a cached
    #: supergraph-of-the-query (subgraph case) / subgraph-of-the-query
    #: (supergraph mode) already guaranteed them to be answers
    guaranteed_answers: set = field(default_factory=set)
    #: dataset graphs pruned from the candidate set by the restricting
    #: component (supergraph case for subgraph queries)
    pruned_candidates: set = field(default_factory=set)
    #: number of cached queries found to contain the new query
    num_sub_hits: int = 0
    #: number of cached queries found to be contained in the new query
    num_super_hits: int = 0
    #: the new query was an exact repeat of a cached query (§4.3, case 1)
    exact_hit: bool = False
    #: verification was skipped entirely (exact repeat or provably empty)
    verification_skipped: bool = False
    #: a maintenance step (window flush) ran after this query
    maintenance: MaintenanceReport | None = None


class IGQ:
    """iGQ framework: a base method ``M`` plus the query index ``I``.

    Parameters
    ----------
    method:
        Any :class:`~repro.methods.base.SubgraphQueryMethod` (the paper's
        ``M``); its index over the dataset graphs is built by
        :meth:`build_index`.
    cache_size:
        Maximum number of cached query graphs (``C``; paper default 500).
    window_size:
        Query-window size (``W``; paper default 100, with ``W <= C``).
    policy:
        Replacement policy name or instance (default: the paper's utility
        policy).
    mode:
        ``"subgraph"`` (default) or ``"supergraph"`` — the query type this
        engine instance serves (the cache stores answers of that type).
    enable_isub / enable_isuper:
        Switch either component off (used by the component ablation).
    """

    def __init__(
        self,
        method: SubgraphQueryMethod,
        cache_size: int = 500,
        window_size: int = 100,
        policy: str | ReplacementPolicy = "utility",
        mode: str = SUBGRAPH_MODE,
        enable_isub: bool = True,
        enable_isuper: bool = True,
        igq_verifier: Verifier | None = None,
    ) -> None:
        if mode not in (SUBGRAPH_MODE, SUPERGRAPH_MODE):
            raise ValueError(f"unknown mode {mode!r}")
        if not enable_isub and not enable_isuper:
            raise ValueError("at least one of Isub / Isuper must be enabled")
        self.method = method
        self.mode = mode
        self.name = f"igq_{method.name}"
        if isinstance(policy, str):
            policy = create_policy(policy)
        self._igq_verifier = igq_verifier if igq_verifier is not None else Verifier()
        self.cache = QueryCache()
        self.isub = SubgraphQueryIndex(self._igq_verifier) if enable_isub else None
        self.isuper = SupergraphQueryIndex(self._igq_verifier) if enable_isuper else None
        self.maintenance = IndexMaintenance(
            cache_size=cache_size, window_size=window_size, policy=policy
        )
        self.database: GraphDatabase | None = None

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def build_index(self, database: GraphDatabase) -> None:
        """Build the base method's dataset index; the query index starts empty."""
        self.method.build_index(database)
        self.database = database

    def attach_prebuilt(self, database: GraphDatabase | None = None) -> None:
        """Use a base method whose dataset index has already been built.

        Saves re-indexing when the same built method instance is shared
        between a plain run and an iGQ run (as the experiment runners do).
        """
        if database is None:
            database = self.method.database
        if database is None:
            raise RuntimeError("the base method has no built index to attach")
        self.database = database

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------
    def query(self, query: LabeledGraph) -> IGQQueryResult:
        """Process one query of this engine's configured type."""
        if self.database is None:
            raise RuntimeError("IGQ.build_index() must be called before querying")
        if self.mode == SUBGRAPH_MODE:
            return self._process(query, supergraph=False)
        return self._process(query, supergraph=True)

    def subgraph_query(self, query: LabeledGraph) -> IGQQueryResult:
        """Process ``query`` as a subgraph query (requires subgraph mode)."""
        self._require_mode(SUBGRAPH_MODE)
        return self._process(query, supergraph=False)

    def supergraph_query(self, query: LabeledGraph) -> IGQQueryResult:
        """Process ``query`` as a supergraph query (requires supergraph mode)."""
        self._require_mode(SUPERGRAPH_MODE)
        return self._process(query, supergraph=True)

    def _require_mode(self, mode: str) -> None:
        if self.mode != mode:
            raise RuntimeError(
                f"this IGQ instance is configured for {self.mode!r} queries; "
                f"create a separate instance for {mode!r} queries"
            )

    # ------------------------------------------------------------------
    def _process(self, query: LabeledGraph, supergraph: bool) -> IGQQueryResult:
        method = self.method
        tests_before = method.verifier.stats.tests

        # Stage 1 — the base method's filtering (Figure 6, thread 1).
        start = time.perf_counter()
        features = method.extract_query_features(query)
        if supergraph:
            candidates = method.filter_supergraph_candidates(query, features=features)
        else:
            candidates = method.filter_candidates(query, features=features)
        filter_seconds = time.perf_counter() - start

        # Stage 2 — the two iGQ components (Figure 6, threads 2 and 3).
        start = time.perf_counter()
        sub_hits = (
            self.isub.find_supergraphs(query, features) if self.isub is not None else []
        )
        super_hits = (
            self.isuper.find_subgraphs(query, features) if self.isuper is not None else []
        )
        exact_entry = self._find_exact(query, sub_hits, super_hits)

        if supergraph:
            guaranteed, pruned, remaining, skip_all = self._combine_supergraph(
                candidates, sub_hits, super_hits
            )
        else:
            guaranteed, pruned, remaining, skip_all = self._combine_subgraph(
                candidates, sub_hits, super_hits
            )

        if exact_entry is not None:
            answer_from_cache = set(exact_entry.answer)
            remaining = set()
            skip_all = True
        else:
            answer_from_cache = set(guaranteed)

        self._credit_hits(query, candidates, sub_hits, super_hits, supergraph)
        igq_seconds = time.perf_counter() - start

        # Stage 3 — verification of the surviving candidates.
        start = time.perf_counter()
        if supergraph:
            verified = method.verify_supergraph(query, remaining, features=features)
        else:
            verified = method.verify(query, remaining, features=features)
        verify_seconds = time.perf_counter() - start

        answers = verified | answer_from_cache

        # Stage 4 — window / metadata maintenance (§5.2).
        report = self._record_query(query, features, answers)

        return IGQQueryResult(
            query_name=query.name,
            answers=answers,
            candidates=set(candidates),
            num_isomorphism_tests=method.verifier.stats.tests - tests_before,
            filter_seconds=filter_seconds,
            verify_seconds=verify_seconds,
            igq_seconds=igq_seconds,
            guaranteed_answers=set(guaranteed),
            pruned_candidates=set(pruned),
            num_sub_hits=len(sub_hits),
            num_super_hits=len(super_hits),
            exact_hit=exact_entry is not None,
            verification_skipped=skip_all or not remaining,
            maintenance=report,
        )

    # ------------------------------------------------------------------
    # Candidate-set combination (formulae (3), (4), (5) and §4.4)
    # ------------------------------------------------------------------
    @staticmethod
    def _combine_subgraph(
        candidates: set, sub_hits: list[CacheEntry], super_hits: list[CacheEntry]
    ) -> tuple[set, set, set, bool]:
        """Apply the subgraph-query pruning rules.

        Returns ``(guaranteed answers, pruned candidates, remaining
        candidates, skip_all)``.
        """
        guaranteed: set = set()
        for entry in sub_hits:
            guaranteed |= entry.answer
        remaining = set(candidates) - guaranteed

        skip_all = False
        pruned_by_super: set = set()
        if super_hits:
            if any(not entry.answer for entry in super_hits):
                # §4.3 optimal case 2: a contained previous query had no
                # answers, so nothing can contain the new query either.
                pruned_by_super = set(remaining)
                remaining = set()
                skip_all = True
            else:
                allowed = set.intersection(*(set(entry.answer) for entry in super_hits))
                pruned_by_super = remaining - allowed
                remaining &= allowed
        pruned = (set(candidates) & guaranteed) | pruned_by_super
        return guaranteed, pruned, remaining, skip_all

    @staticmethod
    def _combine_supergraph(
        candidates: set, sub_hits: list[CacheEntry], super_hits: list[CacheEntry]
    ) -> tuple[set, set, set, bool]:
        """Apply the supergraph-query pruning rules (§4.4, mirrored roles)."""
        guaranteed: set = set()
        for entry in super_hits:
            guaranteed |= entry.answer
        remaining = set(candidates) - guaranteed

        skip_all = False
        pruned_by_sub: set = set()
        if sub_hits:
            if any(not entry.answer for entry in sub_hits):
                # Mirrored optimal case: a containing previous query had no
                # answers, so the new (smaller) query cannot have any either.
                pruned_by_sub = set(remaining)
                remaining = set()
                skip_all = True
            else:
                allowed = set.intersection(*(set(entry.answer) for entry in sub_hits))
                pruned_by_sub = remaining - allowed
                remaining &= allowed
        pruned = (set(candidates) & guaranteed) | pruned_by_sub
        return guaranteed, pruned, remaining, skip_all

    @staticmethod
    def _find_exact(
        query: LabeledGraph, sub_hits: list[CacheEntry], super_hits: list[CacheEntry]
    ) -> CacheEntry | None:
        """§4.3 optimal case 1: a containment hit of identical size is the
        same query, so its stored answer can be returned directly."""
        for entry in list(sub_hits) + list(super_hits):
            if entry.graph.same_size(query):
                return entry
        return None

    # ------------------------------------------------------------------
    # Metadata updates (§5.1)
    # ------------------------------------------------------------------
    def _credit_hits(
        self,
        query: LabeledGraph,
        candidates: set,
        sub_hits: list[CacheEntry],
        super_hits: list[CacheEntry],
        supergraph: bool,
    ) -> None:
        """Update H, R and C for every cache entry that was hit."""
        num_labels = max(self.database.num_labels, 1)
        per_graph_cost: dict = {}

        def cost_of(graph_ids: set) -> float:
            total = 0.0
            for graph_id in graph_ids:
                cost = per_graph_cost.get(graph_id)
                if cost is None:
                    target = self.database.get(graph_id)
                    if supergraph:
                        # For supergraph queries the test is candidate ⊆ query.
                        cost = isomorphism_test_cost(
                            target.num_vertices, max(query.num_vertices, 1), num_labels
                        )
                    else:
                        cost = isomorphism_test_cost(
                            query.num_vertices, target.num_vertices, num_labels
                        )
                    per_graph_cost[graph_id] = cost
                total += cost
            return total

        guaranteed_hits = super_hits if supergraph else sub_hits
        restricting_hits = sub_hits if supergraph else super_hits
        for entry in guaranteed_hits:
            removable = set(entry.answer) & set(candidates)
            entry.record_hit(len(removable), cost_of(removable))
        for entry in restricting_hits:
            removable = set(candidates) - set(entry.answer)
            entry.record_hit(len(removable), cost_of(removable))

    def _record_query(
        self, query: LabeledGraph, features, answers: set
    ) -> MaintenanceReport | None:
        """Add the processed query to the window; flush it when full."""
        self.cache.note_query_processed()
        window_full = self.maintenance.submit(
            PendingQuery(
                graph=query,
                features=features,
                answer=frozenset(answers),
                tags={"mode": self.mode},
            )
        )
        if not window_full:
            return None
        return self.maintenance.flush(self.cache, self.isub, self.isuper)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def warm_up(self, queries: list[LabeledGraph]) -> list[IGQQueryResult]:
        """Process a warm-up batch (the first ``W`` queries of a workload).

        The paper uses the first window of each workload purely to populate
        the index; the returned results let callers discard them from the
        measured statistics.
        """
        return [self.query(query) for query in queries]

    def index_size_bytes(self) -> int:
        """Estimated size of the iGQ query index (structures + cached graphs).

        This is the space *overhead* iGQ adds on top of the base method's
        dataset index (compared in Figure 18).
        """
        total = 0
        if self.isub is not None:
            total += self.isub.estimated_size_bytes()
        if self.isuper is not None:
            total += self.isuper.estimated_size_bytes()
        for entry in self.cache.entries():
            graph = entry.graph
            total += 80 + 56 * graph.num_vertices + 48 * graph.num_edges
            total += 40 + 8 * len(entry.answer)
        return total

    def __repr__(self) -> str:
        return (
            f"<IGQ method={self.method.name!r} mode={self.mode!r} "
            f"cached={len(self.cache)}>"
        )
