"""The iGQ query processing engine (Figure 6 and §4.2–4.4 of the paper).

:class:`IGQ` wraps any filter-then-verify method ``M`` and adds the query
index: for every incoming query it

1. lets ``M`` filter the dataset graphs into the candidate set ``CS(g)``,
2. consults the two iGQ components — ``Isub`` (previous queries that are
   supergraphs of ``g``) and ``Isuper`` (previous queries that are subgraphs
   of ``g``) — and prunes ``CS(g)`` with formulae (3) and (5),
3. short-circuits entirely on the two optimal cases of §4.3 (exact query
   repeat; a contained previous query with an empty answer),
4. verifies only the surviving candidates, assembles the final answer with
   formula (4), and
5. updates the replacement-policy metadata and the query window (§5).

The same engine processes *supergraph* queries (§4.4): the roles of the two
components are mirrored — answers of contained previous queries are
guaranteed answers, answers of containing previous queries bound the
candidate set from above.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..features.extractor import GraphFeatures
from ..graphs.bitset import CandidateBitmap, GraphIdSpace
from ..graphs.database import GraphDatabase
from ..graphs.graph import LabeledGraph
from ..isomorphism.cost import isomorphism_test_cost
from ..isomorphism.verifier import Verifier
from ..methods.base import QueryResult, SubgraphQueryMethod
from .cache import CacheEntry, QueryCache
from .isub import SubgraphQueryIndex
from .isuper import SupergraphQueryIndex
from .maintenance import IndexMaintenance, MaintenanceReport, PendingQuery
from .replacement import ReplacementPolicy, create_policy

__all__ = ["IGQQueryResult", "QueryPlan", "IGQ"]

SUBGRAPH_MODE = "subgraph"
SUPERGRAPH_MODE = "supergraph"


@dataclass
class IGQQueryResult(QueryResult):
    """Query outcome enriched with iGQ-specific accounting."""

    #: dataset graphs whose verification was skipped because a cached
    #: supergraph-of-the-query (subgraph case) / subgraph-of-the-query
    #: (supergraph mode) already guaranteed them to be answers
    guaranteed_answers: set = field(default_factory=set)
    #: dataset graphs pruned from the candidate set by the restricting
    #: component (supergraph case for subgraph queries)
    pruned_candidates: set = field(default_factory=set)
    #: number of cached queries found to contain the new query
    num_sub_hits: int = 0
    #: number of cached queries found to be contained in the new query
    num_super_hits: int = 0
    #: the new query was an exact repeat of a cached query (§4.3, case 1)
    exact_hit: bool = False
    #: verification was skipped entirely (exact repeat or provably empty)
    verification_skipped: bool = False
    #: a maintenance step (window flush) ran after this query
    maintenance: MaintenanceReport | None = None


@dataclass
class QueryPlan:
    """Everything the engine decides about a query *before* verification.

    Produced by :meth:`IGQ.plan_query` (stages 1–2 of Figure 6: base-method
    filtering plus the two iGQ components) and consumed by
    :meth:`IGQ.complete_query` after the surviving candidates — exposed as
    the set-like :attr:`remaining` — have been verified.  Splitting the
    pipeline here is what lets the batch executor fan the verification stage
    out to a worker pool while the planning and maintenance stages stay
    strictly sequential (and therefore deterministic).

    All candidate bookkeeping is held as integer bitmasks over the engine's
    dataset-graph id space.
    """

    query: LabeledGraph
    features: GraphFeatures
    supergraph: bool
    space: GraphIdSpace
    candidate_mask: int
    sub_hits: list
    super_hits: list
    exact_entry: CacheEntry | None
    guaranteed_mask: int
    pruned_mask: int
    remaining_mask: int
    skip_all: bool
    cache_answer_mask: int
    tests_before: int
    filter_seconds: float
    igq_seconds: float

    @property
    def remaining(self) -> CandidateBitmap:
        """Candidates that still need an isomorphism test."""
        return CandidateBitmap(self.space, self.remaining_mask)

    @property
    def candidates(self) -> CandidateBitmap:
        """The base method's candidate set ``CS(g)``."""
        return CandidateBitmap(self.space, self.candidate_mask)


class IGQ:
    """iGQ framework: a base method ``M`` plus the query index ``I``.

    Parameters
    ----------
    method:
        Any :class:`~repro.methods.base.SubgraphQueryMethod` (the paper's
        ``M``); its index over the dataset graphs is built by
        :meth:`build_index`.
    cache_size:
        Maximum number of cached query graphs (``C``; paper default 500).
    window_size:
        Query-window size (``W``; paper default 100, with ``W <= C``).
    policy:
        Replacement policy name or instance (default: the paper's utility
        policy).
    mode:
        ``"subgraph"`` (default) or ``"supergraph"`` — the query type this
        engine instance serves (the cache stores answers of that type).
    enable_isub / enable_isuper:
        Switch either component off (used by the component ablation).
    igq_compiled:
        A/B flag for the compiled containment layer of the two component
        indexes (default on): cached query graphs are compiled on insertion
        and query-vs-query containment runs on the bitset kernel.
        ``False`` restores the dict-based matcher per pair — answers,
        hit/miss accounting and replacement state are identical either way.
    """

    def __init__(
        self,
        method: SubgraphQueryMethod,
        cache_size: int = 500,
        window_size: int = 100,
        policy: str | ReplacementPolicy = "utility",
        mode: str = SUBGRAPH_MODE,
        enable_isub: bool = True,
        enable_isuper: bool = True,
        igq_verifier: Verifier | None = None,
        igq_compiled: bool = True,
    ) -> None:
        if mode not in (SUBGRAPH_MODE, SUPERGRAPH_MODE):
            raise ValueError(f"unknown mode {mode!r}")
        if not enable_isub and not enable_isuper:
            raise ValueError("at least one of Isub / Isuper must be enabled")
        self.method = method
        self.mode = mode
        self.name = f"igq_{method.name}"
        if isinstance(policy, str):
            policy = create_policy(policy)
        self._igq_verifier = igq_verifier if igq_verifier is not None else Verifier()
        self.igq_compiled = igq_compiled
        self.cache = QueryCache()
        self.isub = (
            SubgraphQueryIndex(self._igq_verifier, compiled=igq_compiled)
            if enable_isub
            else None
        )
        self.isuper = (
            SupergraphQueryIndex(self._igq_verifier, compiled=igq_compiled)
            if enable_isuper
            else None
        )
        self.maintenance = IndexMaintenance(
            cache_size=cache_size, window_size=window_size, policy=policy
        )
        self.database: GraphDatabase | None = None
        self._id_space: GraphIdSpace | None = None
        #: memoised ``entry_id -> answer bitmask`` for the cached entries;
        #: invalidated whenever a window flush changes the cache contents
        self._answer_masks: dict[int, int] = {}

    @property
    def igq_verifier(self) -> Verifier:
        """The verifier used for query-vs-cached-query containment tests.

        Kept separate from the base method's verifier so the paper's
        "isomorphism tests against dataset graphs" metric is not polluted;
        the pipelined executor snapshots its statistics around speculative
        planning.
        """
        return self._igq_verifier

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def build_index(self, database: GraphDatabase) -> None:
        """Build the base method's dataset index; the query index starts empty."""
        self.method.build_index(database)
        self.database = database
        self._id_space = self.method.id_space

    def attach_prebuilt(self, database: GraphDatabase | None = None) -> None:
        """Use a base method whose dataset index has already been built.

        Saves re-indexing when the same built method instance is shared
        between a plain run and an iGQ run (as the experiment runners do).
        """
        if database is None:
            database = self.method.database
        if database is None or self.method.id_space is None:
            raise RuntimeError("the base method has no built index to attach")
        self.database = database
        self._id_space = self.method.id_space

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------
    def query(self, query: LabeledGraph) -> IGQQueryResult:
        """Process one query of this engine's configured type."""
        if self.database is None:
            raise RuntimeError("IGQ.build_index() must be called before querying")
        if self.mode == SUBGRAPH_MODE:
            return self._process(query, supergraph=False)
        return self._process(query, supergraph=True)

    def subgraph_query(self, query: LabeledGraph) -> IGQQueryResult:
        """Process ``query`` as a subgraph query (requires subgraph mode)."""
        self._require_mode(SUBGRAPH_MODE)
        return self._process(query, supergraph=False)

    def supergraph_query(self, query: LabeledGraph) -> IGQQueryResult:
        """Process ``query`` as a supergraph query (requires supergraph mode)."""
        self._require_mode(SUPERGRAPH_MODE)
        return self._process(query, supergraph=True)

    def _require_mode(self, mode: str) -> None:
        if self.mode != mode:
            raise RuntimeError(
                f"this IGQ instance is configured for {self.mode!r} queries; "
                f"create a separate instance for {mode!r} queries"
            )

    # ------------------------------------------------------------------
    def _process(self, query: LabeledGraph, supergraph: bool) -> IGQQueryResult:
        plan = self.plan_query(query, supergraph=supergraph)

        # Stage 3 — verification of the surviving candidates.
        start = time.perf_counter()
        verified = self.verify_plan(plan)
        verify_seconds = time.perf_counter() - start

        return self.complete_query(plan, verified, verify_seconds)

    def plan_query(
        self,
        query: LabeledGraph,
        supergraph: bool = False,
        features: GraphFeatures | None = None,
        credit: bool = True,
    ) -> QueryPlan:
        """Run stages 1–2 (filtering and iGQ pruning) and return the plan.

        ``features`` may carry the query's pre-extracted features (the batch
        executor memoises extraction across repeated queries); when omitted
        they are extracted here, exactly as the sequential path always did.

        ``credit=False`` defers the §5.1 metadata update (H/R/C of the hit
        cache entries) to a later :meth:`apply_plan_credits` call.  The
        pipelined batch executor plans query *i+1* speculatively while query
        *i* still verifies; deferring the (only) state mutation of the
        planning stage keeps the replacement metadata byte-identical to the
        sequential order even when the speculative plan must be discarded.
        """
        if self.database is None:
            raise RuntimeError("IGQ.build_index() must be called before querying")
        method = self.method
        space = self._id_space
        tests_before = method.verifier.stats.tests

        # Stage 1 — the base method's filtering (Figure 6, thread 1).
        start = time.perf_counter()
        if features is None:
            features = method.extract_query_features(query)
        if supergraph:
            candidates = method.filter_supergraph_candidates(query, features=features)
        else:
            candidates = method.filter_candidates(query, features=features)
        candidate_mask = space.mask_of(candidates)
        filter_seconds = time.perf_counter() - start

        # Stage 2 — the two iGQ components (Figure 6, threads 2 and 3).
        start = time.perf_counter()
        sub_hits, super_hits = self._component_hits(query, features)
        exact_entry = self._find_exact(query, sub_hits, super_hits)

        if supergraph:
            guaranteed, pruned, remaining, skip_all = self._combine(
                candidate_mask, guaranteed_hits=super_hits, restricting_hits=sub_hits
            )
        else:
            guaranteed, pruned, remaining, skip_all = self._combine(
                candidate_mask, guaranteed_hits=sub_hits, restricting_hits=super_hits
            )

        if exact_entry is not None:
            cache_answer_mask = self._answer_mask(exact_entry)
            remaining = 0
            skip_all = True
        else:
            cache_answer_mask = guaranteed

        if credit:
            self._credit_hits(query, candidate_mask, sub_hits, super_hits, supergraph)
        igq_seconds = time.perf_counter() - start

        return QueryPlan(
            query=query,
            features=features,
            supergraph=supergraph,
            space=space,
            candidate_mask=candidate_mask,
            sub_hits=sub_hits,
            super_hits=super_hits,
            exact_entry=exact_entry,
            guaranteed_mask=guaranteed,
            pruned_mask=pruned,
            remaining_mask=remaining,
            skip_all=skip_all,
            cache_answer_mask=cache_answer_mask,
            tests_before=tests_before,
            filter_seconds=filter_seconds,
            igq_seconds=igq_seconds,
        )

    def _component_hits(
        self, query: LabeledGraph, features: GraphFeatures
    ) -> tuple[list[CacheEntry], list[CacheEntry]]:
        """Stage-2 component lookups: ``(Isub(g), Isuper(g))`` hit lists.

        The single-shard engine consults its two in-process indexes; the
        sharded engine (:class:`repro.core.shard.ShardedIGQ`) overrides this
        to fan the probe out across its shard replicas and merge the hits
        back into the global insertion order.
        """
        sub_hits = (
            self.isub.find_supergraphs(query, features) if self.isub is not None else []
        )
        super_hits = (
            self.isuper.find_subgraphs(query, features) if self.isuper is not None else []
        )
        return sub_hits, super_hits

    def apply_plan_credits(self, plan: QueryPlan) -> None:
        """Apply the deferred §5.1 metadata update of a ``credit=False`` plan.

        Must run after the *previous* query has been completed (its window
        maintenance may have flushed the cache) and before this plan's own
        :meth:`complete_query`, mirroring the position the update occupies in
        the sequential order.
        """
        self._credit_hits(
            plan.query, plan.candidate_mask, plan.sub_hits, plan.super_hits, plan.supergraph
        )

    def verify_plan(self, plan: QueryPlan) -> set:
        """Stage 3 — verify the plan's surviving candidates in-process."""
        if plan.supergraph:
            return self.method.verify_supergraph(
                plan.query, plan.remaining, features=plan.features
            )
        return self.method.verify(plan.query, plan.remaining, features=plan.features)

    def complete_query(
        self, plan: QueryPlan, verified, verify_seconds: float
    ) -> IGQQueryResult:
        """Stage 4 — assemble the result and run window maintenance.

        ``verified`` is the answer subset of ``plan.remaining`` (any iterable
        of graph ids — a plain set from :meth:`verify_plan` or the merged
        union of worker-pool chunks).
        """
        space = plan.space
        answers = CandidateBitmap(
            space, space.mask_of(verified) | plan.cache_answer_mask
        )
        report = self._record_query(plan.query, plan.features, answers)
        return IGQQueryResult(
            query_name=plan.query.name,
            answers=answers,
            candidates=CandidateBitmap(space, plan.candidate_mask),
            num_isomorphism_tests=self.method.verifier.stats.tests - plan.tests_before,
            filter_seconds=plan.filter_seconds,
            verify_seconds=verify_seconds,
            igq_seconds=plan.igq_seconds,
            guaranteed_answers=CandidateBitmap(space, plan.guaranteed_mask),
            pruned_candidates=CandidateBitmap(space, plan.pruned_mask),
            num_sub_hits=len(plan.sub_hits),
            num_super_hits=len(plan.super_hits),
            exact_hit=plan.exact_entry is not None,
            verification_skipped=plan.skip_all or not plan.remaining_mask,
            maintenance=report,
        )

    # ------------------------------------------------------------------
    # Candidate-set combination (formulae (3), (4), (5) and §4.4)
    # ------------------------------------------------------------------
    def _answer_mask(self, entry: CacheEntry) -> int:
        """Answer set of a cached entry as a bitmask (memoised per entry)."""
        mask = self._answer_masks.get(entry.entry_id)
        if mask is None:
            mask = self._id_space.mask_of(entry.answer)
            self._answer_masks[entry.entry_id] = mask
        return mask

    def _combine(
        self,
        candidate_mask: int,
        guaranteed_hits: list[CacheEntry],
        restricting_hits: list[CacheEntry],
    ) -> tuple[int, int, int, bool]:
        """Apply the pruning rules to a candidate bitmask.

        For subgraph queries the guaranteeing component is ``Isub`` and the
        restricting one ``Isuper``; for supergraph queries (§4.4) the roles
        are mirrored.  Returns ``(guaranteed answers, pruned candidates,
        remaining candidates, skip_all)``, all but the flag as bitmasks.
        """
        guaranteed = 0
        for entry in guaranteed_hits:
            guaranteed |= self._answer_mask(entry)
        remaining = candidate_mask & ~guaranteed

        skip_all = False
        pruned_by_restriction = 0
        if restricting_hits:
            if any(not entry.answer for entry in restricting_hits):
                # §4.3 optimal case 2 (and its §4.4 mirror): a restricting
                # previous query had no answers, so the new query cannot
                # have any beyond the guaranteed ones either.
                pruned_by_restriction = remaining
                remaining = 0
                skip_all = True
            else:
                allowed = -1
                for entry in restricting_hits:
                    allowed &= self._answer_mask(entry)
                pruned_by_restriction = remaining & ~allowed
                remaining &= allowed
        pruned = (candidate_mask & guaranteed) | pruned_by_restriction
        return guaranteed, pruned, remaining, skip_all

    @staticmethod
    def _find_exact(
        query: LabeledGraph, sub_hits: list[CacheEntry], super_hits: list[CacheEntry]
    ) -> CacheEntry | None:
        """§4.3 optimal case 1: a containment hit of identical size is the
        same query, so its stored answer can be returned directly."""
        for entry in list(sub_hits) + list(super_hits):
            if entry.graph.same_size(query):
                return entry
        return None

    # ------------------------------------------------------------------
    # Metadata updates (§5.1)
    # ------------------------------------------------------------------
    def _credit_hits(
        self,
        query: LabeledGraph,
        candidate_mask: int,
        sub_hits: list[CacheEntry],
        super_hits: list[CacheEntry],
        supergraph: bool,
    ) -> None:
        """Update H, R and C for every cache entry that was hit."""
        num_labels = max(self.database.num_labels, 1)
        space = self._id_space
        per_graph_cost: dict = {}

        def cost_of(mask: int) -> float:
            total = 0.0
            for graph_id in space.to_ids(mask):
                cost = per_graph_cost.get(graph_id)
                if cost is None:
                    target = self.database.get(graph_id)
                    if supergraph:
                        # For supergraph queries the test is candidate ⊆ query.
                        cost = isomorphism_test_cost(
                            target.num_vertices, max(query.num_vertices, 1), num_labels
                        )
                    else:
                        cost = isomorphism_test_cost(
                            query.num_vertices, target.num_vertices, num_labels
                        )
                    per_graph_cost[graph_id] = cost
                total += cost
            return total

        guaranteed_hits = super_hits if supergraph else sub_hits
        restricting_hits = sub_hits if supergraph else super_hits
        for entry in guaranteed_hits:
            removable = self._answer_mask(entry) & candidate_mask
            entry.record_hit(removable.bit_count(), cost_of(removable))
        for entry in restricting_hits:
            removable = candidate_mask & ~self._answer_mask(entry)
            entry.record_hit(removable.bit_count(), cost_of(removable))

    def _record_query(
        self, query: LabeledGraph, features, answers
    ) -> MaintenanceReport | None:
        """Add the processed query to the window; flush it when full."""
        self.cache.note_query_processed()
        window_full = self.maintenance.submit(
            PendingQuery(
                graph=query,
                features=features,
                answer=frozenset(answers),
                tags={"mode": self.mode},
            )
        )
        if not window_full:
            return None
        report = self._flush_window()
        # The flush evicted and inserted entries; drop the memoised masks.
        self._answer_masks.clear()
        return report

    def _flush_window(self) -> MaintenanceReport:
        """Apply a full query window to the cache and the component indexes.

        The single-shard engine performs the §5.2 shadow rebuild through
        :class:`IndexMaintenance`; the sharded engine overrides this to emit
        ordered :class:`~repro.core.shard.CacheDelta` records instead.
        """
        return self.maintenance.flush(self.cache, self.isub, self.isuper)

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: list[LabeledGraph],
        num_workers: int = 1,
        backend: str = "auto",
        chunk_size: int | None = None,
        pipeline: bool = True,
    ) -> list[IGQQueryResult]:
        """Process a batch of queries, optionally verifying in parallel.

        With ``num_workers=1`` (the default) this is the deterministic
        sequential path — exactly equivalent to calling :meth:`query` once
        per query.  With more workers the verification stage of each query
        is fanned out to a :mod:`concurrent.futures` pool and (unless
        ``pipeline=False``) the next query is planned while the pool works;
        answers, cache contents and replacement metadata stay identical to
        the sequential run either way.  See
        :class:`repro.core.batch.BatchExecutor` for the streaming API.
        """
        from .batch import BatchExecutor

        with BatchExecutor(
            self,
            num_workers=num_workers,
            backend=backend,
            chunk_size=chunk_size,
            pipeline=pipeline,
        ) as executor:
            return executor.run_batch(queries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def warm_up(self, queries: list[LabeledGraph]) -> list[IGQQueryResult]:
        """Process a warm-up batch (the first ``W`` queries of a workload).

        The paper uses the first window of each workload purely to populate
        the index; the returned results let callers discard them from the
        measured statistics.
        """
        return [self.query(query) for query in queries]

    def index_size_bytes(self) -> int:
        """Estimated size of the iGQ query index (structures + cached graphs).

        This is the space *overhead* iGQ adds on top of the base method's
        dataset index (compared in Figure 18).
        """
        total = 0
        if self.isub is not None:
            total += self.isub.estimated_size_bytes()
        if self.isuper is not None:
            total += self.isuper.estimated_size_bytes()
        for entry in self.cache.entries():
            graph = entry.graph
            total += 80 + 56 * graph.num_vertices + 48 * graph.num_edges
            total += 40 + 8 * len(entry.answer)
        return total

    def __repr__(self) -> str:
        return (
            f"<IGQ method={self.method.name!r} mode={self.mode!r} "
            f"cached={len(self.cache)}>"
        )
