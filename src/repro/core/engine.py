"""The iGQ query processing engine (Figure 6 and §4.2–4.4 of the paper).

:class:`IGQ` wraps any filter-then-verify method ``M`` and adds the query
index: for every incoming query it

1. lets ``M`` filter the dataset graphs into the candidate set ``CS(g)``,
2. consults the two iGQ components — ``Isub`` (previous queries that are
   supergraphs of ``g``) and ``Isuper`` (previous queries that are subgraphs
   of ``g``) — and prunes ``CS(g)`` with formulae (3) and (5),
3. short-circuits entirely on the two optimal cases of §4.3 (exact query
   repeat; a contained previous query with an empty answer),
4. verifies only the surviving candidates, assembles the final answer with
   formula (4), and
5. updates the replacement-policy metadata and the query window (§5).

The same engine processes *supergraph* queries (§4.4): the roles of the two
components are mirrored — answers of contained previous queries are
guaranteed answers, answers of containing previous queries bound the
candidate set from above.
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings
from dataclasses import dataclass, field, replace

from ..features.extractor import GraphFeatures
from ..graphs.bitset import CandidateBitmap, GraphIdSpace
from ..graphs.database import GraphDatabase
from ..graphs.graph import LabeledGraph
from ..isomorphism.cost import isomorphism_test_cost
from ..isomorphism.verifier import Verifier
from ..methods.base import QueryResult, SubgraphQueryMethod
from .cache import CacheEntry, QueryCache
from .config import (
    MIXED_MODE,
    SUBGRAPH_MODE,
    SUPERGRAPH_MODE,
    CacheConfig,
    ConfigError,
    EngineConfig,
    VerifierConfig,
    validate_query_mode,
)
from .isub import SubgraphQueryIndex
from .isuper import SupergraphQueryIndex
from .maintenance import IndexMaintenance, MaintenanceReport, PendingQuery
from .replacement import ReplacementPolicy, create_policy

__all__ = ["IGQQueryResult", "QueryPlan", "IGQ"]

#: sentinel distinguishing "kwarg not passed" from every real value
_UNSET = object()

#: legacy flat kwarg -> its EngineConfig home (drives shims and warnings)
_LEGACY_ENGINE_KWARGS = {
    "mode": "EngineConfig.mode",
    "enable_isub": "EngineConfig.enable_isub",
    "enable_isuper": "EngineConfig.enable_isuper",
    "cache_size": "EngineConfig.cache.size",
    "window_size": "EngineConfig.cache.window",
    "policy": "EngineConfig.cache.policy",
    "igq_compiled": "EngineConfig.verifier.igq_compiled",
}


def _warn_legacy(kwargs: dict, stacklevel: int = 4) -> None:
    """Emit one DeprecationWarning naming each kwarg's config equivalent."""
    mapping = ", ".join(
        f"{name}= -> {_LEGACY_ENGINE_KWARGS.get(name, name)}" for name in sorted(kwargs)
    )
    warnings.warn(
        f"flat engine kwargs are deprecated and will be removed in "
        f"repro 2.0; build an EngineConfig instead ({mapping})",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _legacy_engine_config(
    kwargs: dict, stacklevel: int = 4
) -> tuple[EngineConfig, "ReplacementPolicy | None"]:
    """Build an :class:`EngineConfig` from legacy flat kwargs (shim path).

    Returns the config plus the replacement-policy *instance* when one was
    passed directly (instances cannot ride in a JSON-serialisable config, so
    the engine keeps using the object while the config records its name).
    """
    unknown = sorted(set(kwargs) - set(_LEGACY_ENGINE_KWARGS))
    if unknown:
        raise TypeError(f"unexpected engine kwarg(s) {unknown}")
    if kwargs:
        _warn_legacy(kwargs, stacklevel=stacklevel)
    policy_instance: ReplacementPolicy | None = None
    policy = kwargs.get("policy", "utility")
    if isinstance(policy, ReplacementPolicy):
        policy_instance = policy
        # The config records the registered name when there is one; custom
        # policy objects keep working but serialise as the default name.
        policy = getattr(policy, "name", "utility")
        if policy not in ("utility", "hit_rate", "fifo"):
            policy = "utility"
    cache = CacheConfig(
        size=kwargs.get("cache_size", 500),
        window=kwargs.get("window_size", 100),
        policy=policy,
    )
    verifier = VerifierConfig(igq_compiled=kwargs.get("igq_compiled", True))
    config = EngineConfig(
        mode=kwargs.get("mode", SUBGRAPH_MODE),
        enable_isub=kwargs.get("enable_isub", True),
        enable_isuper=kwargs.get("enable_isuper", True),
        cache=cache,
        verifier=verifier,
    )
    return config, policy_instance


@dataclass
class IGQQueryResult(QueryResult):
    """Query outcome enriched with iGQ-specific accounting."""

    #: dataset graphs whose verification was skipped because a cached
    #: supergraph-of-the-query (subgraph case) / subgraph-of-the-query
    #: (supergraph mode) already guaranteed them to be answers
    guaranteed_answers: set = field(default_factory=set)
    #: dataset graphs pruned from the candidate set by the restricting
    #: component (supergraph case for subgraph queries)
    pruned_candidates: set = field(default_factory=set)
    #: number of cached queries found to contain the new query
    num_sub_hits: int = 0
    #: number of cached queries found to be contained in the new query
    num_super_hits: int = 0
    #: the new query was an exact repeat of a cached query (§4.3, case 1)
    exact_hit: bool = False
    #: verification was skipped entirely (exact repeat or provably empty)
    verification_skipped: bool = False
    #: a maintenance step (window flush) ran after this query
    maintenance: MaintenanceReport | None = None


@dataclass
class QueryPlan:
    """Everything the engine decides about a query *before* verification.

    Produced by :meth:`IGQ.plan_query` (stages 1–2 of Figure 6: base-method
    filtering plus the two iGQ components) and consumed by
    :meth:`IGQ.complete_query` after the surviving candidates — exposed as
    the set-like :attr:`remaining` — have been verified.  Splitting the
    pipeline here is what lets the batch executor fan the verification stage
    out to a worker pool while the planning and maintenance stages stay
    strictly sequential (and therefore deterministic).

    All candidate bookkeeping is held as integer bitmasks over the engine's
    dataset-graph id space.
    """

    query: LabeledGraph
    features: GraphFeatures
    supergraph: bool
    space: GraphIdSpace
    candidate_mask: int
    sub_hits: list
    super_hits: list
    exact_entry: CacheEntry | None
    guaranteed_mask: int
    pruned_mask: int
    remaining_mask: int
    skip_all: bool
    cache_answer_mask: int
    tests_before: int
    filter_seconds: float
    igq_seconds: float

    @property
    def remaining(self) -> CandidateBitmap:
        """Candidates that still need an isomorphism test."""
        return CandidateBitmap(self.space, self.remaining_mask)

    @property
    def candidates(self) -> CandidateBitmap:
        """The base method's candidate set ``CS(g)``."""
        return CandidateBitmap(self.space, self.candidate_mask)


class IGQ:
    """iGQ framework: a base method ``M`` plus the query index ``I``.

    Parameters
    ----------
    method:
        Any :class:`~repro.methods.base.SubgraphQueryMethod` (the paper's
        ``M``); its index over the dataset graphs is built by
        :meth:`build_index`.
    config:
        An :class:`~repro.core.config.EngineConfig` — the one public way to
        configure the engine.  ``config.mode`` selects the query type
        (``"subgraph"``, ``"supergraph"`` or ``"mixed"``: per-call dispatch),
        ``config.cache`` sizes the query cache, ``config.verifier`` picks
        the containment verifier and A/B flags, ``config.batch`` supplies
        :meth:`run_batch` defaults.  Prefer :meth:`from_config`, which also
        routes sharded configs to :class:`~repro.core.shard.ShardedIGQ`.
    igq_verifier:
        Injection point for a pre-configured containment verifier (tests,
        A/B baselines); overrides ``config.verifier``'s constructed one.

    The historical flat kwargs (``cache_size=``, ``window_size=``,
    ``policy=``, ``mode=``, ``enable_isub=``, ``enable_isuper=``,
    ``igq_compiled=``) still work as deprecation shims: they build the same
    :class:`EngineConfig` and emit a :class:`DeprecationWarning` naming the
    config field to move to.
    """

    def __init__(
        self,
        method: SubgraphQueryMethod,
        config: EngineConfig | None = None,
        *,
        igq_verifier: Verifier | None = None,
        _policy_instance: ReplacementPolicy | None = None,
        **legacy_kwargs,
    ) -> None:
        policy_instance = _policy_instance
        if config is None:
            config, policy_instance = _legacy_engine_config(legacy_kwargs)
        elif legacy_kwargs:
            raise ConfigError(
                f"pass either config= or legacy kwargs, not both "
                f"(got {sorted(legacy_kwargs)} alongside an EngineConfig)"
            )
        elif not isinstance(config, EngineConfig):
            raise ConfigError(
                f"config must be an EngineConfig, got {type(config).__name__} "
                "(legacy positional cache_size is no longer accepted)"
            )
        if config.shard.shards > 1 and type(self) is IGQ:
            raise ConfigError(
                f"config.shard.shards={config.shard.shards} needs the sharded "
                "engine; construct it through IGQ.from_config(method, config) "
                "or ShardedIGQ directly"
            )
        self.config = config
        self.method = method
        self.mode = config.mode
        self.name = f"igq_{method.name}"
        policy = (
            policy_instance
            if policy_instance is not None
            else create_policy(config.cache.policy)
        )
        self._igq_verifier = (
            igq_verifier if igq_verifier is not None else config.verifier.build()
        )
        self.igq_compiled = config.verifier.igq_compiled
        self.cache = QueryCache()
        self.isub = (
            SubgraphQueryIndex(self._igq_verifier, compiled=self.igq_compiled)
            if config.enable_isub
            else None
        )
        self.isuper = (
            SupergraphQueryIndex(self._igq_verifier, compiled=self.igq_compiled)
            if config.enable_isuper
            else None
        )
        self.maintenance = IndexMaintenance(
            cache_size=config.cache.size, window_size=config.cache.window, policy=policy
        )
        self.database: GraphDatabase | None = None
        self._id_space: GraphIdSpace | None = None
        #: memoised ``entry_id -> answer bitmask`` for the cached entries;
        #: invalidated whenever a window flush changes the cache contents
        self._answer_masks: dict[int, int] = {}
        #: ``id(query) -> (query, features)`` — repeat-heavy streams reuse
        #: the same graph objects (workload pools, batch inputs), and
        #: feature extraction is a pure function of the graph, so repeats
        #: skip the path enumeration.  The graph reference pins the object
        #: alive, keeping the id stable (same scheme as the sharded
        #: engine's routing memo and the batch executor's feature memo).
        self._feature_memo: dict[int, tuple[LabeledGraph, GraphFeatures]] = {}
        #: durable WAL/snapshot store (:mod:`repro.persist`), attached when
        #: ``config.persist.dir`` is set; the sharded subclass defers the
        #: attach until its own state exists (warm restart needs it).
        self.persister = None
        if not self._defer_persist:
            self._attach_persistence()

    #: subclasses with post-``__init__`` state of their own set this and
    #: call :meth:`_attach_persistence` themselves once that state exists
    _defer_persist = False

    def _attach_persistence(self) -> None:
        """Attach (and possibly warm-start from) the configured persister.

        ``REPRO_FORCE_PERSIST_DIR`` force-enables write-only persistence
        into a fresh private directory under the named path for engines
        with no ``persist`` section — the CI lever that runs the whole
        suite with the durability path exercised.
        """
        persist = self.config.persist
        if not persist.enabled:
            forced = os.environ.get("REPRO_FORCE_PERSIST_DIR")
            if not forced:
                return
            os.makedirs(forced, exist_ok=True)
            persist = replace(
                persist,
                dir=tempfile.mkdtemp(prefix="engine-", dir=forced),
                fsync="never",
            )
        from ..persist.restore import attach_persistence

        self.persister = attach_persistence(self, persist)

    def _persist_flush(self) -> None:
        """Hand a just-completed window flush to the persister (if any)."""
        if self.persister is not None:
            self.persister.record_flush(self)

    def _close_persister(self) -> None:
        """Flush and close the durable store before anything else tears down."""
        persister = getattr(self, "persister", None)
        if persister is not None:
            persister.close()

    # ------------------------------------------------------------------
    # Persistence state capture / restore (see :mod:`repro.persist.restore`)
    # ------------------------------------------------------------------
    def persist_state(self) -> dict:
        """The engine's small mutable state, captured at a flush boundary.

        Everything the warm restart cannot rebuild from the delta records
        themselves: the global query counter, the id allocator, and the
        per-entry §5.1 replacement statistics.  The sharded engine extends
        this with its placement/replication state.
        """
        cache = self.cache
        return {
            "format": 1,
            "mode": self.mode,
            "shards": getattr(self, "num_shards", 1),
            "query_counter": cache.query_counter,
            "next_id": cache.next_entry_id,
            "entry_stats": {
                entry.entry_id: (entry.hits, entry.removed, entry.alleviated_cost)
                for entry in cache.entries()
            },
        }

    def persist_entry_meta(self, entry_id: int) -> dict:
        """An entry's immutable extras that delta records do not carry."""
        entry = self.cache.get(entry_id)
        return {
            "answer": entry.answer,
            "tags": dict(entry.tags),
            "added_at": entry.added_at,
        }

    def apply_persist_state(self, entries, state: dict) -> None:
        """Rebuild the cache and component indexes from recovered state.

        ``entries`` is the recovered live set — ``(kind, shard_entry,
        targets, meta)`` tuples in ascending id order; ``state`` is the
        matching :meth:`persist_state` capture.  Compiled payloads ride in
        on the shard entries, so nothing recompiles.
        """
        cache = self.cache
        stats = state.get("entry_stats", {})
        for _kind, shard_entry, _targets, meta in entries:
            hits, removed, cost = stats.get(shard_entry.entry_id, (0, 0, 0.0))
            cache.restore_entry(
                shard_entry.entry_id,
                shard_entry.graph,
                shard_entry.features,
                meta["answer"],
                meta["added_at"],
                meta["tags"],
                hits=hits,
                removed=removed,
                alleviated_cost=cost,
                compiled_target=shard_entry.compiled_target,
                compiled_plan=shard_entry.compiled_plan,
            )
        cache.query_counter = state.get("query_counter", 0)
        cache.reserve_ids(state.get("next_id", 0))
        if self.isub is not None:
            self.isub.rebuild(cache)
        if self.isuper is not None:
            self.isuper.rebuild(cache)

    @classmethod
    def from_config(
        cls,
        method: SubgraphQueryMethod,
        config: EngineConfig | None = None,
        *,
        igq_verifier: Verifier | None = None,
    ) -> "IGQ":
        """Construct the engine a config describes (the one public factory).

        A config with ``shard.shards > 1`` yields a
        :class:`~repro.core.shard.ShardedIGQ`; everything else yields the
        single-shard engine.  ``config=None`` means all defaults.
        """
        if config is None:
            config = EngineConfig()
        if cls is IGQ and config.shard.shards > 1:
            from .shard import ShardedIGQ

            return ShardedIGQ(method, config, igq_verifier=igq_verifier)
        return cls(method, config, igq_verifier=igq_verifier)

    @property
    def igq_verifier(self) -> Verifier:
        """The verifier used for query-vs-cached-query containment tests.

        Kept separate from the base method's verifier so the paper's
        "isomorphism tests against dataset graphs" metric is not polluted;
        the pipelined executor snapshots its statistics around speculative
        planning.
        """
        return self._igq_verifier

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def build_index(self, database: GraphDatabase) -> None:
        """Build the base method's dataset index; the query index starts empty."""
        self.method.build_index(database)
        self.database = database
        self._id_space = self.method.id_space

    def attach_prebuilt(self, database: GraphDatabase | None = None) -> None:
        """Use a base method whose dataset index has already been built.

        Saves re-indexing when the same built method instance is shared
        between a plain run and an iGQ run (as the experiment runners do).
        """
        if database is None:
            database = self.method.database
        if database is None or self.method.id_space is None:
            raise RuntimeError("the base method has no built index to attach")
        self.database = database
        self._id_space = self.method.id_space

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------
    def query(self, query: LabeledGraph, mode: str | None = None) -> IGQQueryResult:
        """Process one query — the engine's configured type, or ``mode``.

        Fixed-mode engines (``"subgraph"`` / ``"supergraph"``) use their
        configured type when ``mode`` is omitted; a mixed-mode engine serves
        both types through this one endpoint and requires ``mode`` per call
        (:class:`~repro.service.GraphQueryService` supplies it).
        """
        if self.database is None:
            raise RuntimeError("IGQ.build_index() must be called before querying")
        if mode is None:
            if self.mode == MIXED_MODE:
                raise ValueError(
                    "a mixed-mode engine needs mode='subgraph' or "
                    "mode='supergraph' per query (GraphQueryService passes it)"
                )
            mode = self.mode
        validate_query_mode(mode)
        self._require_mode(mode)
        return self._process(query, supergraph=mode == SUPERGRAPH_MODE)

    def subgraph_query(self, query: LabeledGraph) -> IGQQueryResult:
        """Process ``query`` as a subgraph query (requires subgraph/mixed mode)."""
        self._require_mode(SUBGRAPH_MODE)
        return self._process(query, supergraph=False)

    def supergraph_query(self, query: LabeledGraph) -> IGQQueryResult:
        """Process ``query`` as a supergraph query (requires supergraph/mixed mode)."""
        self._require_mode(SUPERGRAPH_MODE)
        return self._process(query, supergraph=True)

    def _require_mode(self, mode: str) -> None:
        if self.mode != mode and self.mode != MIXED_MODE:
            raise RuntimeError(
                f"this IGQ instance is configured for {self.mode!r} queries; "
                f"create a separate instance for {mode!r} queries"
            )

    # ------------------------------------------------------------------
    def _process(self, query: LabeledGraph, supergraph: bool) -> IGQQueryResult:
        plan = self.plan_query(query, supergraph=supergraph)

        # Stage 3 — verification of the surviving candidates.
        start = time.perf_counter()
        verified = self.verify_plan(plan)
        verify_seconds = time.perf_counter() - start

        return self.complete_query(plan, verified, verify_seconds)

    def plan_query(
        self,
        query: LabeledGraph,
        supergraph: bool = False,
        features: GraphFeatures | None = None,
        credit: bool = True,
    ) -> QueryPlan:
        """Run stages 1–2 (filtering and iGQ pruning) and return the plan.

        ``features`` may carry the query's pre-extracted features (the batch
        executor memoises extraction across repeated queries); when omitted
        they are extracted here, exactly as the sequential path always did.

        ``credit=False`` defers the §5.1 metadata update (H/R/C of the hit
        cache entries) to a later :meth:`apply_plan_credits` call.  The
        pipelined batch executor plans query *i+1* speculatively while query
        *i* still verifies; deferring the (only) state mutation of the
        planning stage keeps the replacement metadata byte-identical to the
        sequential order even when the speculative plan must be discarded.
        """
        if self.database is None:
            raise RuntimeError("IGQ.build_index() must be called before querying")
        method = self.method
        space = self._id_space
        tests_before = method.verifier.stats.tests

        # Stage 1 — the base method's filtering (Figure 6, thread 1).
        start = time.perf_counter()
        if features is None:
            memo = self._feature_memo
            cached = memo.get(id(query))
            if cached is not None and cached[0] is query:
                features = cached[1]
            else:
                features = method.extract_query_features(query)
                if len(memo) >= 8192:
                    memo.clear()
                memo[id(query)] = (query, features)
        if supergraph:
            candidates = method.filter_supergraph_candidates(query, features=features)
        else:
            candidates = method.filter_candidates(query, features=features)
        candidate_mask = space.mask_of(candidates)
        filter_seconds = time.perf_counter() - start

        # Stage 2 — the two iGQ components (Figure 6, threads 2 and 3).
        start = time.perf_counter()
        sub_hits, super_hits = self._component_hits(query, features)
        if self.mode == MIXED_MODE:
            # A mixed-mode cache holds subgraph- and supergraph-typed answer
            # sets side by side; a hit only carries meaning for a query of
            # the same type (a subgraph answer set says nothing about which
            # dataset graphs a supergraph query contains), so restrict the
            # hit lists before the exact-repeat check and the §5.1 credits.
            # Fixed-mode engines skip this: every entry shares their mode.
            mode = SUPERGRAPH_MODE if supergraph else SUBGRAPH_MODE
            sub_hits = [e for e in sub_hits if e.tags.get("mode") == mode]
            super_hits = [e for e in super_hits if e.tags.get("mode") == mode]
        exact_entry = self._find_exact(query, sub_hits, super_hits)

        if supergraph:
            guaranteed, pruned, remaining, skip_all = self._combine(
                candidate_mask, guaranteed_hits=super_hits, restricting_hits=sub_hits
            )
        else:
            guaranteed, pruned, remaining, skip_all = self._combine(
                candidate_mask, guaranteed_hits=sub_hits, restricting_hits=super_hits
            )

        if exact_entry is not None:
            cache_answer_mask = self._answer_mask(exact_entry)
            remaining = 0
            skip_all = True
        else:
            cache_answer_mask = guaranteed

        if credit:
            self._credit_hits(query, candidate_mask, sub_hits, super_hits, supergraph)
        igq_seconds = time.perf_counter() - start

        return QueryPlan(
            query=query,
            features=features,
            supergraph=supergraph,
            space=space,
            candidate_mask=candidate_mask,
            sub_hits=sub_hits,
            super_hits=super_hits,
            exact_entry=exact_entry,
            guaranteed_mask=guaranteed,
            pruned_mask=pruned,
            remaining_mask=remaining,
            skip_all=skip_all,
            cache_answer_mask=cache_answer_mask,
            tests_before=tests_before,
            filter_seconds=filter_seconds,
            igq_seconds=igq_seconds,
        )

    def _component_hits(
        self, query: LabeledGraph, features: GraphFeatures
    ) -> tuple[list[CacheEntry], list[CacheEntry]]:
        """Stage-2 component lookups: ``(Isub(g), Isuper(g))`` hit lists.

        The single-shard engine consults its two in-process indexes; the
        sharded engine (:class:`repro.core.shard.ShardedIGQ`) overrides this
        to fan the probe out across its shard replicas and merge the hits
        back into the global insertion order.
        """
        sub_hits = (
            self.isub.find_supergraphs(query, features) if self.isub is not None else []
        )
        super_hits = (
            self.isuper.find_subgraphs(query, features) if self.isuper is not None else []
        )
        return sub_hits, super_hits

    def apply_plan_credits(self, plan: QueryPlan) -> None:
        """Apply the deferred §5.1 metadata update of a ``credit=False`` plan.

        Must run after the *previous* query has been completed (its window
        maintenance may have flushed the cache) and before this plan's own
        :meth:`complete_query`, mirroring the position the update occupies in
        the sequential order.
        """
        self._credit_hits(
            plan.query, plan.candidate_mask, plan.sub_hits, plan.super_hits, plan.supergraph
        )

    def verify_plan(self, plan: QueryPlan) -> set:
        """Stage 3 — verify the plan's surviving candidates in-process."""
        if plan.supergraph:
            return self.method.verify_supergraph(
                plan.query, plan.remaining, features=plan.features
            )
        return self.method.verify(plan.query, plan.remaining, features=plan.features)

    def complete_query(
        self, plan: QueryPlan, verified, verify_seconds: float
    ) -> IGQQueryResult:
        """Stage 4 — assemble the result and run window maintenance.

        ``verified`` is the answer subset of ``plan.remaining`` (any iterable
        of graph ids — a plain set from :meth:`verify_plan` or the merged
        union of worker-pool chunks).
        """
        space = plan.space
        answers = CandidateBitmap(
            space, space.mask_of(verified) | plan.cache_answer_mask
        )
        report = self._record_query(
            plan.query, plan.features, answers, supergraph=plan.supergraph
        )
        return IGQQueryResult(
            query_name=plan.query.name,
            answers=answers,
            candidates=CandidateBitmap(space, plan.candidate_mask),
            num_isomorphism_tests=self.method.verifier.stats.tests - plan.tests_before,
            filter_seconds=plan.filter_seconds,
            verify_seconds=verify_seconds,
            igq_seconds=plan.igq_seconds,
            guaranteed_answers=CandidateBitmap(space, plan.guaranteed_mask),
            pruned_candidates=CandidateBitmap(space, plan.pruned_mask),
            num_sub_hits=len(plan.sub_hits),
            num_super_hits=len(plan.super_hits),
            exact_hit=plan.exact_entry is not None,
            verification_skipped=plan.skip_all or not plan.remaining_mask,
            maintenance=report,
        )

    # ------------------------------------------------------------------
    # Candidate-set combination (formulae (3), (4), (5) and §4.4)
    # ------------------------------------------------------------------
    def _answer_mask(self, entry: CacheEntry) -> int:
        """Answer set of a cached entry as a bitmask (memoised per entry)."""
        mask = self._answer_masks.get(entry.entry_id)
        if mask is None:
            mask = self._id_space.mask_of(entry.answer)
            self._answer_masks[entry.entry_id] = mask
        return mask

    def _combine(
        self,
        candidate_mask: int,
        guaranteed_hits: list[CacheEntry],
        restricting_hits: list[CacheEntry],
    ) -> tuple[int, int, int, bool]:
        """Apply the pruning rules to a candidate bitmask.

        For subgraph queries the guaranteeing component is ``Isub`` and the
        restricting one ``Isuper``; for supergraph queries (§4.4) the roles
        are mirrored.  Returns ``(guaranteed answers, pruned candidates,
        remaining candidates, skip_all)``, all but the flag as bitmasks.
        """
        guaranteed = 0
        for entry in guaranteed_hits:
            guaranteed |= self._answer_mask(entry)
        remaining = candidate_mask & ~guaranteed

        skip_all = False
        pruned_by_restriction = 0
        if restricting_hits:
            if any(not entry.answer for entry in restricting_hits):
                # §4.3 optimal case 2 (and its §4.4 mirror): a restricting
                # previous query had no answers, so the new query cannot
                # have any beyond the guaranteed ones either.
                pruned_by_restriction = remaining
                remaining = 0
                skip_all = True
            else:
                allowed = -1
                for entry in restricting_hits:
                    allowed &= self._answer_mask(entry)
                pruned_by_restriction = remaining & ~allowed
                remaining &= allowed
        pruned = (candidate_mask & guaranteed) | pruned_by_restriction
        return guaranteed, pruned, remaining, skip_all

    @staticmethod
    def _find_exact(
        query: LabeledGraph, sub_hits: list[CacheEntry], super_hits: list[CacheEntry]
    ) -> CacheEntry | None:
        """§4.3 optimal case 1: a containment hit of identical size is the
        same query, so its stored answer can be returned directly."""
        for entry in list(sub_hits) + list(super_hits):
            if entry.graph.same_size(query):
                return entry
        return None

    # ------------------------------------------------------------------
    # Metadata updates (§5.1)
    # ------------------------------------------------------------------
    def _credit_hits(
        self,
        query: LabeledGraph,
        candidate_mask: int,
        sub_hits: list[CacheEntry],
        super_hits: list[CacheEntry],
        supergraph: bool,
    ) -> None:
        """Update H, R and C for every cache entry that was hit."""
        num_labels = max(self.database.num_labels, 1)
        space = self._id_space
        per_graph_cost: dict = {}

        def cost_of(mask: int) -> float:
            total = 0.0
            for graph_id in space.to_ids(mask):
                cost = per_graph_cost.get(graph_id)
                if cost is None:
                    target = self.database.get(graph_id)
                    if supergraph:
                        # For supergraph queries the test is candidate ⊆ query.
                        cost = isomorphism_test_cost(
                            target.num_vertices, max(query.num_vertices, 1), num_labels
                        )
                    else:
                        cost = isomorphism_test_cost(
                            query.num_vertices, target.num_vertices, num_labels
                        )
                    per_graph_cost[graph_id] = cost
                total += cost
            return total

        guaranteed_hits = super_hits if supergraph else sub_hits
        restricting_hits = sub_hits if supergraph else super_hits
        for entry in guaranteed_hits:
            removable = self._answer_mask(entry) & candidate_mask
            entry.record_hit(removable.bit_count(), cost_of(removable))
        for entry in restricting_hits:
            removable = candidate_mask & ~self._answer_mask(entry)
            entry.record_hit(removable.bit_count(), cost_of(removable))

    def _record_query(
        self, query: LabeledGraph, features, answers, supergraph: bool = False
    ) -> MaintenanceReport | None:
        """Add the processed query to the window; flush it when full."""
        self.cache.note_query_processed()
        # The entry is tagged with the *query's* type, not the engine's —
        # identical for fixed-mode engines, and what lets a mixed-mode cache
        # tell its two answer-set flavours apart.
        mode = SUPERGRAPH_MODE if supergraph else SUBGRAPH_MODE
        window_full = self.maintenance.submit(
            PendingQuery(
                graph=query,
                features=features,
                answer=frozenset(answers),
                tags={"mode": mode},
            )
        )
        if not window_full:
            return None
        report = self._flush_window()
        # The flush evicted and inserted entries; drop the memoised masks.
        self._answer_masks.clear()
        return report

    def _flush_window(self) -> MaintenanceReport:
        """Apply a full query window to the cache and the component indexes.

        The single-shard engine performs the §5.2 shadow rebuild through
        :class:`IndexMaintenance`; the sharded engine overrides this to emit
        ordered :class:`~repro.core.shard.CacheDelta` records instead.
        Either way the flush boundary is where the durable store commits —
        crash recovery always lands on a state some flush produced.
        """
        report = self.maintenance.flush(self.cache, self.isub, self.isuper)
        self._persist_flush()
        return report

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: list[LabeledGraph],
        num_workers=_UNSET,
        backend=_UNSET,
        chunk_size=_UNSET,
        pipeline=_UNSET,
    ) -> list[IGQQueryResult]:
        """Process a batch of queries, optionally verifying in parallel.

        The execution parameters come from ``self.config.batch`` — with the
        default :class:`~repro.core.config.BatchConfig` this is the
        deterministic sequential path, exactly equivalent to calling
        :meth:`query` once per query; with workers configured the
        verification stage of each query fans out to a
        :mod:`concurrent.futures` pool and (unless pipelining is off) the
        next query is planned while the pool works.  Answers, cache contents
        and replacement metadata are identical in every configuration.  The
        flat ``num_workers=`` / ``backend=`` / ``chunk_size=`` /
        ``pipeline=`` kwargs are deprecated shims over
        ``EngineConfig.batch``.  See :class:`repro.core.batch.BatchExecutor`
        for the streaming API.
        """
        from .batch import BatchExecutor

        overrides = {
            name: value
            for name, value in (
                ("num_workers", num_workers),
                ("backend", backend),
                ("chunk_size", chunk_size),
                ("pipeline", pipeline),
            )
            if value is not _UNSET
        }
        batch = self.config.batch
        if overrides:
            mapping = ", ".join(
                f"{name}= -> EngineConfig.batch.{name}" for name in sorted(overrides)
            )
            warnings.warn(
                f"run_batch kwargs are deprecated and will be removed in repro 2.0; "
                f"configure EngineConfig.batch instead ({mapping})",
                DeprecationWarning,
                stacklevel=2,
            )
            batch = replace(batch, **overrides)
        with BatchExecutor(self, config=batch) as executor:
            return executor.run_batch(queries)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine-owned execution resources (idempotent).

        The single-shard engine owns none — verification pools belong to the
        :class:`~repro.core.batch.BatchExecutor` driving it and shut down
        with it — but the method is part of the engine contract so callers
        (and :class:`~repro.service.GraphQueryService`) can close any engine
        uniformly; :class:`~repro.core.shard.ShardedIGQ` terminates its
        long-lived shard worker pools here.  The durable store (when
        configured) flushes and fsyncs its WAL tail *first* — durability
        must never race pool teardown.  Any shared-memory snapshot
        segments the method still holds (e.g. because an executor crashed
        before its own ``close``) are force-unlinked as a safety net.
        """
        self._close_persister()
        self.method.release_shared_payloads()

    def __enter__(self) -> "IGQ":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def warm_up(self, queries: list[LabeledGraph]) -> list[IGQQueryResult]:
        """Process a warm-up batch (the first ``W`` queries of a workload).

        The paper uses the first window of each workload purely to populate
        the index; the returned results let callers discard them from the
        measured statistics.
        """
        return [self.query(query) for query in queries]

    def index_size_bytes(self) -> int:
        """Estimated size of the iGQ query index (structures + cached graphs).

        This is the space *overhead* iGQ adds on top of the base method's
        dataset index (compared in Figure 18).
        """
        total = 0
        if self.isub is not None:
            total += self.isub.estimated_size_bytes()
        if self.isuper is not None:
            total += self.isuper.estimated_size_bytes()
        for entry in self.cache.entries():
            graph = entry.graph
            total += 80 + 56 * graph.num_vertices + 48 * graph.num_edges
            total += 40 + 8 * len(entry.answer)
        return total

    def __repr__(self) -> str:
        return (
            f"<IGQ method={self.method.name!r} mode={self.mode!r} "
            f"cached={len(self.cache)}>"
        )
