"""Shared-memory dataset snapshots for process workers.

Process workers need the dataset-side verification state — the graphs and
their precompiled targets/plans (:meth:`~repro.methods.base.
SubgraphQueryMethod.verification_snapshot`).  Before this module, every
worker received its own copy of the pickled snapshot through the pool's
``initargs`` pipe: with ``k`` workers the parent serialised once but paid
``k`` pipe transfers, and each transfer rides the fork/spawn handshake.

This module publishes the pickled snapshot **once** into a
:mod:`multiprocessing.shared_memory` segment at pool-creation time.  Workers
receive only a tiny :class:`SnapshotHandle` (name + size) and attach to the
one published segment, so the snapshot bytes cross no pipe regardless of
worker count, and a re-created pool re-uses the already-published segment.

Lifecycle: the owning side (the query method) keeps a refcount per published
segment — the batch executor and the sharded runtime acquire on pool
creation and release on close, and :meth:`repro.core.engine.IGQ.close`
force-releases as a safety net — with the segment unlinked when the last
reference drops.  Publishing degrades gracefully: when shared memory is
unavailable (platform without ``/dev/shm``, permission errors, or tests
forcing the fallback) :func:`publish` returns ``None`` and callers fall back
to the classic ``initargs`` pickle bytes.

After a crash that skipped ``close()``, a stale ``psm_*`` segment can
survive under ``/dev/shm``; ``docs/operations.md`` describes recovery (the
resource tracker removes it at interpreter exit in the common case).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

__all__ = [
    "SnapshotHandle",
    "SharedSnapshot",
    "publish",
    "shared_memory_available",
]

try:  # pragma: no cover - import guard, exercised via monkeypatch in tests
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stdlib module, present on CPython
    _shared_memory = None

#: test hook: force the pickle fallback even where shared memory works
_force_disabled = False


def shared_memory_available() -> bool:
    """True if snapshots can be published through shared memory here."""
    return _shared_memory is not None and not _force_disabled


def _attach(name: str):
    """Attach to an existing segment without registering it for tracking.

    Only the publishing side owns the segment; an attaching worker that
    also registers it with the resource tracker would fight the owner over
    cleanup (forked workers share the parent's tracker process, so the
    worker's registration/unregistration mutates the owner's bookkeeping).
    Python 3.13+ exposes ``track=False`` for exactly this; on <= 3.12 the
    registration call is suppressed for the duration of the attach —
    workers attach once, single-threaded, inside the pool initializer, so
    the swap cannot race another register.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python <= 3.12: no track param
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(resource_name, rtype):
            if rtype != "shared_memory":
                original(resource_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class SnapshotHandle:
    """Address of a published snapshot: segment name plus payload size.

    This is what actually crosses the process boundary — a few dozen bytes
    instead of the multi-megabyte snapshot pickle.  Workers call
    :meth:`load` once at initialisation.
    """

    name: str
    size: int

    def load(self):
        """Attach to the segment, unpickle the snapshot, detach."""
        segment = _attach(self.name)
        try:
            payload = bytes(segment.buf[: self.size])
        finally:
            segment.close()
        return pickle.loads(payload)


class SharedSnapshot:
    """Owning side of one published snapshot segment.

    Created by :func:`publish`; hand :attr:`handle` to workers.  The segment
    stays readable until :meth:`close`, which closes the mapping and unlinks
    the name (idempotent — double close is a no-op, and an already-removed
    segment is tolerated).
    """

    __slots__ = ("_segment", "_handle")

    def __init__(self, segment, size: int) -> None:
        self._segment = segment
        self._handle = SnapshotHandle(name=segment.name, size=size)

    @property
    def handle(self) -> SnapshotHandle:
        """The picklable worker-side address of this segment."""
        return self._handle

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has unlinked the segment."""
        return self._segment is None

    def close(self) -> None:
        """Close the mapping and unlink the segment name (idempotent)."""
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup won
            pass

    def __enter__(self) -> "SharedSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"size={self._handle.size}"
        return f"<SharedSnapshot {self._handle.name} {state}>"


def publish(obj) -> SharedSnapshot | None:
    """Pickle ``obj`` into a fresh shared-memory segment.

    Returns the owning :class:`SharedSnapshot`, or ``None`` when shared
    memory is unavailable or the segment cannot be created — callers then
    fall back to shipping the pickle bytes through pool ``initargs``.
    """
    if not shared_memory_available():
        return None
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        segment = _shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    except OSError:
        return None
    segment.buf[: len(payload)] = payload
    return SharedSnapshot(segment, len(payload))
