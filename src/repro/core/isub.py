"""The iGQ subgraph component ``Isub`` (§4.2.1 and §6.1 of the paper).

``Isub`` answers the question: *which previously executed queries are
supergraphs of the new query g?*  As §6.1 observes, this is "a microcosm of
the original problem" — a subgraph query posed against the collection of
cached query graphs instead of the dataset graphs — so any subgraph index
works.  Following the paper we reuse the path-trie filtering of the base
methods: cached query features are kept in a
:class:`~repro.features.trie.FeatureTrie`, a new query is filtered by
occurrence-count dominance and the surviving cached graphs are verified with
a (cheap — query graphs are small) subgraph isomorphism test, which makes
formula (1) hold: every reported entry is a true supergraph of ``g``.
"""

from __future__ import annotations

from ..features.extractor import GraphFeatures
from ..features.trie import FeatureTrie
from ..graphs.bitset import DensePositions
from ..graphs.graph import LabeledGraph
from ..isomorphism.verifier import Verifier
from .cache import CacheEntry, QueryCache

__all__ = ["SubgraphQueryIndex"]


class SubgraphQueryIndex:
    """Index of cached queries supporting "is g a subgraph of a cached query?"."""

    def __init__(self, verifier: Verifier | None = None) -> None:
        #: verifier for the (small) query-vs-query containment tests; kept
        #: separate from the base method's verifier so that the paper's
        #: "number of subgraph isomorphism tests" metric (tests against
        #: dataset graphs) is not polluted.
        self.verifier = verifier if verifier is not None else Verifier()
        self._trie = FeatureTrie()
        self._entries: dict[int, CacheEntry] = {}
        #: dense bit positions for candidate bitmasks (raw entry ids are
        #: monotonic, so masks keyed by them would grow without bound)
        self._slots = DensePositions()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, entry: CacheEntry) -> None:
        """Index a cached query entry."""
        self._entries[entry.entry_id] = entry
        self._slots.add(entry.entry_id)
        for key, count in entry.features.counts.items():
            self._trie.insert(key, entry.entry_id, count)

    def remove(self, entry_id: int) -> None:
        """Remove a cached query entry from the index."""
        if entry_id in self._entries:
            del self._entries[entry_id]
            self._slots.remove(entry_id)
            self._trie.remove_graph(entry_id)

    def rebuild(self, cache: QueryCache) -> None:
        """Rebuild from scratch over the current contents of ``cache``.

        This is the "shadow index" construction of §5.2: the caller builds a
        fresh index and swaps it in, so queries keep being served while the
        rebuild is in progress.
        """
        self._trie = FeatureTrie()
        self._entries = {}
        self._slots.reset()
        for entry in cache.entries():
            self.add(entry)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def find_supergraphs(
        self, query: LabeledGraph, features: GraphFeatures
    ) -> list[CacheEntry]:
        """Return the cached entries ``G`` with ``query ⊆ G`` (``Isub(g)``).

        Filtering: a cached query can only be a supergraph of ``query`` if it
        contains every feature of ``query`` at least as often (the exact
        dual of the dataset-side filtering).  Each surviving candidate is
        verified with a subgraph isomorphism test, so no false positives are
        possible (formula (1)).
        """
        if not self._entries:
            return []
        # Candidate bookkeeping as an integer bitmask over dense entry
        # positions (insertion order within the current index generation,
        # so iteration yields entries oldest-first — the same order the
        # previous sorted-id traversal produced).
        slots = self._slots
        candidate_mask: int | None = None
        for key, required in features.counts.items():
            postings = self._trie.get(key)
            matching = 0
            for entry_id, count in postings.items():
                if count >= required:
                    matching |= slots.bit(entry_id)
            candidate_mask = (
                matching if candidate_mask is None else candidate_mask & matching
            )
            if not candidate_mask:
                return []
        if candidate_mask is None:
            candidate_mask = 0
            for entry_id in self._entries:
                candidate_mask |= slots.bit(entry_id)
        results = []
        for entry_id in slots.keys_of(candidate_mask):
            entry = self._entries[entry_id]
            if entry.graph.num_vertices < query.num_vertices:
                continue
            if entry.graph.num_edges < query.num_edges:
                continue
            if self.verifier.is_subgraph(query, entry.graph):
                results.append(entry)
        return results

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def estimated_size_bytes(self) -> int:
        """Approximate in-memory size of the index structure (Figure 18)."""
        return self._trie.estimated_size_bytes()
