"""The iGQ subgraph component ``Isub`` (§4.2.1 and §6.1 of the paper).

``Isub`` answers the question: *which previously executed queries are
supergraphs of the new query g?*  As §6.1 observes, this is "a microcosm of
the original problem" — a subgraph query posed against the collection of
cached query graphs instead of the dataset graphs — so any subgraph index
works.  Following the paper we reuse the path-trie filtering of the base
methods: cached query features are kept in a
:class:`~repro.features.trie.FeatureTrie`, a new query is filtered by
occurrence-count dominance and the surviving cached graphs are verified with
a (cheap — query graphs are small) subgraph isomorphism test, which makes
formula (1) hold: every reported entry is a true supergraph of ``g``.

The lifecycle and verification machinery is shared with ``Isuper`` through
:class:`~repro.core.containment.ContainmentIndex`: cached graphs are
compiled into bitset targets on insertion and every containment test runs
on the compiled kernel (the new query's plan is compiled once per lookup).
"""

from __future__ import annotations

from ..features.extractor import GraphFeatures
from ..graphs.graph import LabeledGraph
from .cache import CacheEntry
from .containment import ContainmentIndex

__all__ = ["SubgraphQueryIndex"]


class SubgraphQueryIndex(ContainmentIndex):
    """Index of cached queries supporting "is g a subgraph of a cached query?".

    The cached queries play the *target* role: each entry carries a
    ``CompiledTarget`` built when it entered the index and reused against
    every incoming query until eviction.
    """

    entry_is_target = True

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def find_supergraphs(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        query_side_cache: dict | None = None,
        restrict_ids=None,
    ) -> list[CacheEntry]:
        """Return the cached entries ``G`` with ``query ⊆ G`` (``Isub(g)``).

        Filtering: a cached query can only be a supergraph of ``query`` if it
        contains every feature of ``query`` at least as often (the exact
        dual of the dataset-side filtering).  Each surviving candidate is
        verified with a subgraph isomorphism test, so no false positives are
        possible (formula (1)).  ``query_side_cache`` lets a sharded probe
        share the query's compiled plan across several index partitions;
        ``restrict_ids`` limits the lookup to a subset of the indexed
        entries (the sharded runtime's per-probe replica assignment).
        """
        if not self._entries:
            return []
        if restrict_ids is None and self.lite:
            # A lite index has no trie to filter with; the per-entry
            # dominance check below is its (equivalent) filtering path.
            restrict_ids = tuple(self._entries)
        if restrict_ids is not None:
            # Small explicit candidate set: test the dominance condition
            # per entry against its own feature counts (the same counts the
            # trie postings hold) instead of walking every posting list —
            # O(|restrict_ids| x query features), so a covering probe for a
            # handful of replicas costs almost nothing.
            slots = self._slots
            candidate_mask = 0
            for entry_id in restrict_ids:
                entry = self._entries.get(entry_id)
                if entry is None:
                    continue
                counts = entry.features.counts
                for key, required in features.counts.items():
                    if counts.get(key, 0) < required:
                        break
                else:
                    candidate_mask |= slots.bit(entry_id)
            if not candidate_mask:
                return []
            return self._verified_hits(query, candidate_mask, query_side_cache)
        # Candidate bookkeeping as an integer bitmask over dense entry
        # positions (the allocation order of the current index generation,
        # which matches insertion order until a removed slot is recycled).
        slots = self._slots
        candidate_mask: int | None = None
        for key, required in features.counts.items():
            postings = self._trie.get(key)
            matching = 0
            for entry_id, count in postings.items():
                if count >= required:
                    matching |= slots.bit(entry_id)
            candidate_mask = (
                matching if candidate_mask is None else candidate_mask & matching
            )
            if not candidate_mask:
                return []
        if candidate_mask is None:
            candidate_mask = self._full_mask()
        return self._verified_hits(query, candidate_mask, query_side_cache)
