"""Windowed maintenance of the iGQ index (§5.2 of the paper).

New queries are not folded into the iGQ index one by one.  They accumulate in
a temporary store ``Itemp`` (the *query window*, of size ``W``); when the
window fills up the maintenance step

1. consults the metadata to find the lowest-utility cached graphs (only as
   many as needed to respect the cache capacity ``C``),
2. removes them from the graph store and inserts the windowed queries,
3. rebuilds a *shadow* index over the new contents and swaps it in,

so that query processing is never blocked by index updates.  In this
single-process reproduction the "swap" is simply a rebuild of the two
component indexes after the cache contents have been updated; the structure
of the algorithm (windowing, batched eviction, full rebuild) is preserved.

Compiled-state lifecycle: evicting through
:meth:`~repro.core.cache.QueryCache.remove` releases the victim entries'
compiled representations (``CompiledTarget`` / ``CompiledQueryPlan``), while
the shadow rebuild re-adds the surviving entries *with* their compiled state
intact — so across any number of window flushes each cached query is
compiled at most once per direction, and the number of live compiled objects
stays bounded by the cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..features.extractor import GraphFeatures
from ..graphs.graph import LabeledGraph
from .cache import QueryCache
from .isub import SubgraphQueryIndex
from .isuper import SupergraphQueryIndex
from .replacement import ReplacementPolicy, UtilityReplacementPolicy

__all__ = ["PendingQuery", "MaintenanceReport", "IndexMaintenance"]


@dataclass
class PendingQuery:
    """A processed query waiting in the window (``Itemp``)."""

    graph: LabeledGraph
    features: GraphFeatures
    answer: frozenset
    tags: dict = field(default_factory=dict)


@dataclass
class MaintenanceReport:
    """What one maintenance (window flush) step did."""

    inserted: int = 0
    evicted: int = 0
    evicted_entry_ids: list[int] = field(default_factory=list)
    cache_size_after: int = 0


class IndexMaintenance:
    """Window buffer + batched replacement for the iGQ cache."""

    def __init__(
        self,
        cache_size: int = 500,
        window_size: int = 100,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        if window_size < 1:
            raise ValueError("window_size must be positive")
        if window_size > cache_size:
            raise ValueError("window_size cannot exceed cache_size (W <= C)")
        self.cache_size = cache_size
        self.window_size = window_size
        self.policy = policy if policy is not None else UtilityReplacementPolicy()
        self._window: list[PendingQuery] = []

    # ------------------------------------------------------------------
    @property
    def window_fill(self) -> int:
        """Number of queries currently waiting in the window."""
        return len(self._window)

    def submit(self, pending: PendingQuery) -> bool:
        """Add a processed query to the window; True if the window is full."""
        self._window.append(pending)
        return len(self._window) >= self.window_size

    def drain_window(self) -> list[PendingQuery]:
        """Take (and clear) the windowed queries.

        Used by flush implementations that apply the window themselves —
        the sharded engine turns it into delta-log records instead of the
        in-place rebuild below.
        """
        window = self._window
        self._window = []
        return window

    def select_evictions(self, cache: QueryCache, incoming: int) -> list[int]:
        """Victim entry ids for absorbing ``incoming`` insertions.

        Exactly the capacity rule of :meth:`flush`: evict only as many
        lowest-utility entries as needed to respect ``C`` after the
        insertions; none while the cache is still warming up.
        """
        overflow = len(cache) + incoming - self.cache_size
        if overflow <= 0:
            return []
        return self.policy.select_victims(cache, overflow)

    def flush(
        self,
        cache: QueryCache,
        isub: SubgraphQueryIndex | None,
        isuper: SupergraphQueryIndex | None,
    ) -> MaintenanceReport:
        """Apply the windowed queries to the cache and rebuild the indexes.

        Evicts exactly as many lowest-utility entries as needed to keep the
        cache within its capacity after the insertions (during warm-up, when
        the cache is not yet full, nothing is evicted).
        """
        report = MaintenanceReport()
        if not self._window:
            report.cache_size_after = len(cache)
            return report
        window = self.drain_window()
        victims = self.select_evictions(cache, len(window))
        for entry_id in victims:
            cache.remove(entry_id)
        report.evicted = len(victims)
        report.evicted_entry_ids = victims
        for pending in window:
            cache.add(
                pending.graph,
                pending.features,
                pending.answer,
                tags=pending.tags,
            )
            report.inserted += 1
        # Shadow-index rebuild over the updated graph store, then swap.
        if isub is not None:
            isub.rebuild(cache)
        if isuper is not None:
            isuper.rebuild(cache)
        report.cache_size_after = len(cache)
        return report
