"""Graph replacement policies for the iGQ cache (§5.1 of the paper).

The paper's utility of a cached query graph ``g`` is

    U(g) = H(g)/M(g) × R(g)/H(g) × C(g)/R(g) = C(g)/M(g)

i.e. the probability of the entry being useful for an incoming query, times
the average number of isomorphism tests it saves per hit, times the average
cost of one saved test — which telescopes to the alleviated cost per query
processed since the entry was cached.  The entry with the smallest utility is
evicted first.

Two simpler policies are provided for the ablation benchmark
(``bench_ablation_replacement``): least-recently-hit (an LRU stand-in for
"popularity only, no cost model") and hit-rate-only (``H/M``), which is the
paper's first principle without the cost-aware refinement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .cache import CacheEntry, QueryCache

__all__ = [
    "ReplacementPolicy",
    "UtilityReplacementPolicy",
    "HitRateReplacementPolicy",
    "LeastRecentlyAddedPolicy",
    "create_policy",
]


class ReplacementPolicy(ABC):
    """Strategy deciding which cache entries to evict."""

    name: str = "abstract"

    @abstractmethod
    def score(self, entry: CacheEntry, cache: QueryCache) -> float:
        """Score an entry; *lower* scores are evicted first."""

    def select_victims(self, cache: QueryCache, count: int) -> list[int]:
        """Return the ids of the ``count`` entries to evict (lowest scores).

        Ties are broken by insertion order (older entries evicted first) so
        the policy is fully deterministic.
        """
        if count <= 0:
            return []
        ranked = sorted(
            cache.entries(),
            key=lambda entry: (self.score(entry, cache), entry.added_at, entry.entry_id),
        )
        return [entry.entry_id for entry in ranked[:count]]


class UtilityReplacementPolicy(ReplacementPolicy):
    """The paper's utility ``U(g) = C(g) / M(g)`` (cost alleviated per query)."""

    name = "utility"

    def score(self, entry: CacheEntry, cache: QueryCache) -> float:
        queries = entry.queries_since_added(cache.query_counter)
        if queries == 0:
            # Entries from the current window have not had a chance to be
            # useful yet; treat them as maximally valuable so they are not
            # evicted the moment they are cached.
            return float("inf")
        return entry.alleviated_cost / queries


class HitRateReplacementPolicy(ReplacementPolicy):
    """Popularity-only policy: ``P(g) = H(g) / M(g)`` (no cost model)."""

    name = "hit_rate"

    def score(self, entry: CacheEntry, cache: QueryCache) -> float:
        queries = entry.queries_since_added(cache.query_counter)
        if queries == 0:
            return float("inf")
        return entry.hits / queries


class LeastRecentlyAddedPolicy(ReplacementPolicy):
    """FIFO-style baseline: evict the oldest entries regardless of benefit."""

    name = "fifo"

    def score(self, entry: CacheEntry, cache: QueryCache) -> float:
        return float(entry.added_at)


_POLICIES = {
    UtilityReplacementPolicy.name: UtilityReplacementPolicy,
    HitRateReplacementPolicy.name: HitRateReplacementPolicy,
    LeastRecentlyAddedPolicy.name: LeastRecentlyAddedPolicy,
}


def create_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``utility``, ``hit_rate``, ``fifo``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
