"""iGQ core: query cache, component indexes, replacement policy, engine."""

from .batch import (
    BatchExecutor,
    BatchStats,
    FeatureMemo,
    default_num_workers,
    effective_cpu_count,
)
from .cache import CacheEntry, QueryCache
from .config import (
    BatchConfig,
    CacheConfig,
    ConfigError,
    EngineConfig,
    ServiceConfig,
    ShardConfig,
    TenantConfig,
    VerifierConfig,
)
from .containment import ContainmentIndex
from .engine import IGQ, IGQQueryResult, QueryPlan
from .isub import SubgraphQueryIndex
from .isuper import SupergraphQueryIndex
from .maintenance import IndexMaintenance, MaintenanceReport, PendingQuery
from .replacement import (
    HitRateReplacementPolicy,
    LeastRecentlyAddedPolicy,
    ReplacementPolicy,
    UtilityReplacementPolicy,
    create_policy,
)
from .shard import (
    CacheDelta,
    DeltaLog,
    DeltaLogTruncated,
    QueryIndexShard,
    ShardedIGQ,
    ShardEntry,
    shard_of_key,
)

__all__ = [
    "IGQ",
    "IGQQueryResult",
    "QueryPlan",
    "EngineConfig",
    "CacheConfig",
    "VerifierConfig",
    "BatchConfig",
    "ShardConfig",
    "ServiceConfig",
    "TenantConfig",
    "ConfigError",
    "ShardedIGQ",
    "CacheDelta",
    "DeltaLog",
    "DeltaLogTruncated",
    "QueryIndexShard",
    "ShardEntry",
    "shard_of_key",
    "BatchExecutor",
    "BatchStats",
    "FeatureMemo",
    "default_num_workers",
    "effective_cpu_count",
    "CacheEntry",
    "QueryCache",
    "ContainmentIndex",
    "SubgraphQueryIndex",
    "SupergraphQueryIndex",
    "IndexMaintenance",
    "MaintenanceReport",
    "PendingQuery",
    "ReplacementPolicy",
    "UtilityReplacementPolicy",
    "HitRateReplacementPolicy",
    "LeastRecentlyAddedPolicy",
    "create_policy",
]
