"""Sharded query cache with delta-replicated compiled state.

The single-shard engine keeps the whole query index — cache entries, the two
containment indexes, and every per-entry compiled payload — in one process,
and worker pools only ever receive a one-shot immutable snapshot of the
*dataset* state.  That is fine while the query-index state never leaves the
parent, but it blocks two scaling moves the ROADMAP asks for: probing the
(CPU-heavy) containment indexes concurrently, and eventually serving the
cache from separate processes or machines.  This module supplies both in one
architecture:

* **Partitioning** — the cached queries are split across ``N`` shards by a
  stable hash of their canonical form (:func:`shard_of_key`), so an entry's
  owning shard is a pure function of its graph: routing never changes under
  insert/evict churn and is identical in every process that computes it.

* **Delta replication** — shards are kept coherent through an ordered
  :class:`DeltaLog` of :class:`CacheDelta` records (``insert`` / ``evict`` /
  ``flush``).  Insert deltas carry the *already compiled*
  ``CompiledTarget``/``CompiledQueryPlan`` payloads built once in the
  parent, so a shard never recompiles an entry; ``flush`` markers carry a
  monotonically increasing *epoch* (one per window flush), so a replica that
  missed any number of flushes simply replays the log tail instead of being
  re-snapshotted.  A replica older than the log's compaction floor resets
  and replays from the beginning — the only case that degenerates to a
  rebuild.

* **Execution** — :class:`ShardedIGQ` is a drop-in :class:`IGQ` engine.
  With ``shards=1`` it *is* today's engine (the A/B baseline: same code
  paths, no delta log).  With ``shards>1`` the window flush emits deltas and
  applies them incrementally (no shadow rebuild of the full cache — flush
  cost is proportional to the window, not the capacity), and every probe
  fans out across the shards: in-process replicas under the ``inline``
  backend, or one long-lived single-worker process per shard under the
  ``process`` backend, where each worker subscribes to the delta log —
  pending records ride along with the next probe — and doubles as a
  verification worker for the batch executor (its one-shot snapshot now
  carries only dataset state).  Answers, hit/miss accounting and replacement
  state are byte-identical across all of these configurations.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..features.canonical import canonical_graph_key
from ..features.extractor import GraphFeatures
from ..graphs.graph import LabeledGraph
from ..isomorphism.compiled import compile_query_plan, compile_target
from ..isomorphism.verifier import Verifier
from .batch import _init_worker, _init_worker_shared, effective_cpu_count
from .cache import CacheEntry
from .config import ConfigError, EngineConfig, ShardConfig
from .engine import _UNSET, IGQ, _legacy_engine_config
from .isub import SubgraphQueryIndex
from .isuper import SupergraphQueryIndex
from .maintenance import MaintenanceReport

__all__ = [
    "SHARD_BACKENDS",
    "DELTA_INSERT",
    "DELTA_EVICT",
    "DELTA_FLUSH",
    "CacheDelta",
    "DeltaLog",
    "DeltaLogTruncated",
    "ShardEntry",
    "QueryIndexShard",
    "ShardVerifyPool",
    "ShardedIGQ",
    "shard_of_key",
]

#: accepted ``shard_backend`` values; ``"auto"`` resolves to ``"process"``
#: when the machine can actually run the shard workers concurrently and to
#: ``"inline"`` otherwise
SHARD_BACKENDS = ("auto", "inline", "process")

DELTA_INSERT = "insert"
DELTA_EVICT = "evict"
DELTA_FLUSH = "flush"

#: ``CacheDelta.shard`` value of flush markers, which address every shard
BROADCAST = -1


def shard_of_key(key: tuple, num_shards: int) -> int:
    """Owning shard of a canonical graph key — stable across processes.

    Built-in ``hash`` is salted per interpreter, so replicas in different
    processes could disagree; a keyed-less BLAKE2 digest of the key's
    canonical repr is deterministic everywhere.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


@dataclass
class ShardEntry:
    """Replica-side view of one cached query: what a shard needs to probe.

    Deliberately *not* the full :class:`~repro.core.cache.CacheEntry` — the
    answer set and the §5.1 replacement metadata stay authoritative in the
    parent (shards return entry ids, the parent credits its own entries), so
    a delta ships only the graph, its features and the compiled payloads.
    Inside the parent process the referenced objects are shared with the
    cache entry; across a process boundary pickling copies them once.
    """

    entry_id: int
    graph: LabeledGraph
    features: GraphFeatures
    compiled_target: object | None = None
    compiled_plan: object | None = None

    # The containment indexes manage compiled state through these hooks
    # (same protocol as CacheEntry), so replicas release exactly like the
    # parent-side entries do.
    def release_compiled_target(self) -> None:
        """Drop the bitset target payload (mirrors ``CacheEntry``)."""
        self.compiled_target = None

    def release_compiled_plan(self) -> None:
        """Drop the matching-plan payload (mirrors ``CacheEntry``)."""
        self.compiled_plan = None

    def release_compiled(self) -> None:
        """Drop both compiled payloads."""
        self.release_compiled_target()
        self.release_compiled_plan()


@dataclass(frozen=True)
class CacheDelta:
    """One ordered replication record of the sharded query cache."""

    #: global log sequence number (1-based, dense)
    version: int
    #: window-flush generation the record belongs to
    epoch: int
    #: one of :data:`DELTA_INSERT` / :data:`DELTA_EVICT` / :data:`DELTA_FLUSH`
    op: str
    #: owning shard, or :data:`BROADCAST` for flush markers
    shard: int
    entry_id: int | None = None
    entry: ShardEntry | None = None


class DeltaLogTruncated(RuntimeError):
    """A subscriber asked for records older than the compaction floor."""


class DeltaLog:
    """Ordered, compactable log of :class:`CacheDelta` records.

    ``version`` increases by one per record; ``epoch`` increases by one per
    ``flush`` marker.  :meth:`compact` folds a fully-acknowledged prefix
    into its net effect (the inserts still live at the horizon, with their
    original versions), so the log stays bounded on long streams while a
    fresh replica can still bootstrap by replaying from version 0.
    """

    def __init__(self) -> None:
        self._records: list[CacheDelta] = []
        self._version = 0
        self._epoch = 0
        self._floor_version = 0

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Version of the newest record (0 for an empty log)."""
        return self._version

    @property
    def epoch(self) -> int:
        """Current flush generation."""
        return self._epoch

    @property
    def floor_version(self) -> int:
        """Oldest version a non-fresh subscriber may still replay from."""
        return self._floor_version

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_insert(self, shard: int, entry: ShardEntry) -> CacheDelta:
        """Record that ``entry`` entered the cache, owned by ``shard``."""
        return self._append(
            CacheDelta(
                version=self._version + 1,
                epoch=self._epoch,
                op=DELTA_INSERT,
                shard=shard,
                entry_id=entry.entry_id,
                entry=entry,
            )
        )

    def append_evict(self, shard: int, entry_id: int) -> CacheDelta:
        """Record that the entry ``entry_id`` left the cache."""
        return self._append(
            CacheDelta(
                version=self._version + 1,
                epoch=self._epoch,
                op=DELTA_EVICT,
                shard=shard,
                entry_id=entry_id,
            )
        )

    def append_flush(self) -> CacheDelta:
        """Close the current flush generation with an epoch marker."""
        self._epoch += 1
        return self._append(
            CacheDelta(
                version=self._version + 1,
                epoch=self._epoch,
                op=DELTA_FLUSH,
                shard=BROADCAST,
            )
        )

    def _append(self, record: CacheDelta) -> CacheDelta:
        self._records.append(record)
        self._version = record.version
        return record

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def since(self, version: int, shard: int | None = None) -> list[CacheDelta]:
        """Records after ``version``, oldest first.

        ``shard`` filters to one shard's inserts/evicts plus every flush
        marker (markers are broadcast so each replica tracks the epoch).
        ``version=0`` always means "bootstrap from scratch" and is valid on
        a compacted log — the retained prefix is the net state.  Any other
        version below the compaction floor raises :class:`DeltaLogTruncated`
        (the subscriber may hold entries whose eviction records were folded
        away, so replaying the tail cannot repair it).
        """
        if 0 < version < self._floor_version:
            raise DeltaLogTruncated(
                f"version {version} predates the compaction floor "
                f"{self._floor_version}; reset and replay from 0"
            )
        if version >= self._version:
            # The common steady-state case — a subscriber probing between
            # flushes has nothing to replay; skip the scan entirely.
            return []
        # Records are version-sorted, so the tail starts at a bisect.
        start = bisect_right(self._records, version, key=lambda record: record.version)
        records = self._records[start:]
        if shard is None:
            return records
        return [
            record
            for record in records
            if record.shard == shard or record.op == DELTA_FLUSH
        ]

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, up_to_version: int) -> int:
        """Fold every record up to ``up_to_version`` into its net effect.

        Only call with a version every subscriber has already applied (the
        sharded engine uses the minimum shipped version).  Insert records
        whose entry is still live at the horizon are retained with their
        original versions; matched insert/evict pairs and flush markers in
        the prefix are dropped.  Returns the number of records removed.
        """
        up_to_version = min(up_to_version, self._version)
        if up_to_version <= self._floor_version:
            return 0
        live: dict[int, CacheDelta] = {}
        suffix: list[CacheDelta] = []
        for record in self._records:
            if record.version > up_to_version:
                suffix.append(record)
            elif record.op == DELTA_INSERT:
                live[record.entry_id] = record
            elif record.op == DELTA_EVICT:
                live.pop(record.entry_id, None)
        removed = len(self._records) - len(live) - len(suffix)
        self._records = sorted(live.values(), key=lambda r: r.version) + suffix
        self._floor_version = up_to_version
        return removed


class QueryIndexShard:
    """One replica: a partition of the query index, driven by the delta log.

    Holds the same two containment indexes the single-shard engine uses,
    restricted to the entries routed to this shard, plus the replication
    cursor (``applied_version``/``epoch``).  Lives either in the parent
    process (inline backend) or inside a dedicated worker process.
    """

    def __init__(
        self,
        shard_id: int,
        verifier: Verifier | None = None,
        compiled: bool = True,
        enable_isub: bool = True,
        enable_isuper: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.verifier = verifier if verifier is not None else Verifier()
        self.compiled = compiled
        self.enable_isub = enable_isub
        self.enable_isuper = enable_isuper
        self.applied_version = 0
        self.epoch = 0
        self._entries: dict[int, ShardEntry] = {}
        self._make_indexes()

    def _make_indexes(self) -> None:
        self.isub = (
            SubgraphQueryIndex(self.verifier, compiled=self.compiled)
            if self.enable_isub
            else None
        )
        self.isuper = (
            SupergraphQueryIndex(self.verifier, compiled=self.compiled)
            if self.enable_isuper
            else None
        )

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def apply(self, delta: CacheDelta) -> None:
        """Apply one delta; records must arrive in increasing version order."""
        if delta.version <= self.applied_version:
            raise ValueError(
                f"shard {self.shard_id} at version {self.applied_version} "
                f"received stale delta {delta.version}"
            )
        if delta.op == DELTA_FLUSH:
            self.epoch = delta.epoch
        elif delta.op == DELTA_INSERT:
            if delta.shard != self.shard_id:
                raise ValueError(
                    f"delta for shard {delta.shard} misrouted to shard {self.shard_id}"
                )
            entry = delta.entry
            self._entries[entry.entry_id] = entry
            if self.isub is not None:
                self.isub.add(entry)
            if self.isuper is not None:
                self.isuper.add(entry)
        elif delta.op == DELTA_EVICT:
            entry = self._entries.pop(delta.entry_id, None)
            if entry is None:
                raise ValueError(
                    f"shard {self.shard_id} cannot evict unknown entry {delta.entry_id}"
                )
            if self.isub is not None:
                self.isub.remove(entry.entry_id)
            if self.isuper is not None:
                self.isuper.remove(entry.entry_id)
            # A disabled index would leave its direction unreleased.
            entry.release_compiled()
        else:
            raise ValueError(f"unknown delta op {delta.op!r}")
        self.applied_version = delta.version

    def catch_up(self, log: DeltaLog) -> int:
        """Replay every missed record; returns the number applied.

        A replica that fell behind the log's compaction floor resets and
        replays the retained net state from version 0 — the re-snapshot
        fallback; every younger replica replays only the tail, however many
        window flushes it missed.
        """
        try:
            deltas = log.since(self.applied_version, shard=self.shard_id)
        except DeltaLogTruncated:
            self.reset()
            deltas = log.since(0, shard=self.shard_id)
        for delta in deltas:
            self.apply(delta)
        return len(deltas)

    def reset(self) -> None:
        """Drop all replica state (compiled payloads released)."""
        for entry in self._entries.values():
            entry.release_compiled()
        self._entries = {}
        self.applied_version = 0
        self.epoch = 0
        self._make_indexes()

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def find_supergraph_ids(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        query_side_cache: dict | None = None,
    ) -> list[int]:
        """Entry ids of this shard's ``Isub`` hits (local order)."""
        if self.isub is None or not self._entries:
            return []
        return [
            entry.entry_id
            for entry in self.isub.find_supergraphs(query, features, query_side_cache)
        ]

    def find_subgraph_ids(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        query_side_cache: dict | None = None,
    ) -> list[int]:
        """Entry ids of this shard's ``Isuper`` hits (local order)."""
        if self.isuper is None or not self._entries:
            return []
        return [
            entry.entry_id
            for entry in self.isuper.find_subgraphs(query, features, query_side_cache)
        ]

    def entry_ids(self) -> list[int]:
        """Ids of the entries this replica currently serves."""
        return sorted(self._entries)

    def estimated_size_bytes(self) -> int:
        """Approximate index-structure size of this shard (Figure 18)."""
        total = 0
        if self.isub is not None:
            total += self.isub.estimated_size_bytes()
        if self.isuper is not None:
            total += self.isuper.estimated_size_bytes()
        return total

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<QueryIndexShard id={self.shard_id} entries={len(self._entries)} "
            f"version={self.applied_version} epoch={self.epoch}>"
        )


# ----------------------------------------------------------------------
# Worker-side state (process backend)
# ----------------------------------------------------------------------
#: per-process shard replica, installed by the pool initializer
_WORKER_SHARD: QueryIndexShard | None = None


def _init_shard_worker(payload: bytes) -> None:
    global _WORKER_SHARD
    config = pickle.loads(payload)
    _WORKER_SHARD = QueryIndexShard(
        config["shard_id"],
        verifier=config["verifier"],
        compiled=config["compiled"],
        enable_isub=config["enable_isub"],
        enable_isuper=config["enable_isuper"],
    )
    # The same long-lived process also serves dataset verification chunks
    # for the batch executor, so install the method snapshot the way the
    # executor's own pool initializers would: by attaching to the published
    # shared-memory segment when one exists, else from the pickle bytes.
    if config.get("method_handle") is not None:
        _init_worker_shared(config["method_handle"])
    elif config["method_payload"] is not None:
        _init_worker(config["method_payload"])


def _shard_probe(
    deltas: list[CacheDelta],
    reset: bool,
    query: LabeledGraph,
    features: GraphFeatures,
    want_sub: bool,
    want_super: bool,
) -> tuple[list[int], list[int], int, int, list[float], int]:
    """Worker entry point: catch up on the log tail, then probe.

    Returns the two hit-id lists plus the verifier-stat deltas of the probe
    (positives, negatives, per-test samples — folded back by the parent so
    the §4 containment-test accounting stays byte-identical to the inline
    path) and the replica's applied version.
    """
    shard = _WORKER_SHARD
    if reset:
        shard.reset()
    for delta in deltas:
        shard.apply(delta)
    stats = shard.verifier.stats
    positives, negatives = stats.positives, stats.negatives
    samples_before = len(stats.per_test_seconds)
    sub_ids = shard.find_supergraph_ids(query, features) if want_sub else []
    super_ids = shard.find_subgraph_ids(query, features) if want_super else []
    samples = stats.per_test_seconds[samples_before:]
    del stats.per_test_seconds[samples_before:]
    return (
        sub_ids,
        super_ids,
        stats.positives - positives,
        stats.negatives - negatives,
        samples,
        shard.applied_version,
    )


class ShardVerifyPool:
    """Executor facade spreading verification chunks over the shard pools.

    The batch executor talks to one object with ``submit``; routing is a
    deterministic round-robin over the per-shard single-worker pools, whose
    processes already hold the method snapshot.  Lifetime belongs to the
    engine's runtime, so ``shutdown`` is a no-op.

    Trade-off: probes and verification chunks share the same single-worker
    queues, so with ``pipeline=True`` the speculative probe of query *i+1*
    waits behind query *i*'s verification chunks — the planner overlap of
    the single-shard process pool does not materialise here.  Results and
    accounting are unaffected; workloads that need both the overlap and
    sharded probing should give the executor its own pool
    (``shard_backend="inline"`` plus a process-backed executor).
    """

    def __init__(self, pools: list[ProcessPoolExecutor]) -> None:
        self._pools = pools
        self._next = 0

    def submit(self, fn, /, *args, **kwargs):
        """Schedule ``fn`` on the next shard pool (round-robin)."""
        pool = self._pools[self._next]
        self._next = (self._next + 1) % len(self._pools)
        return pool.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        """No-op: the owning :class:`ShardedIGQ` closes the real pools."""


class _InlineShardRuntime:
    """Shard replicas living in the parent process.

    Probes run serially and count on the parent's iGQ verifier directly;
    replication is synchronous (replicas catch up at the end of each
    flush), so this backend isolates the *incremental maintenance* gain —
    and is the 1-CPU fallback of ``shard_backend="auto"``.
    """

    uses_processes = False

    def __init__(self, engine: "ShardedIGQ") -> None:
        self.shards = [
            QueryIndexShard(
                shard_id,
                verifier=engine.igq_verifier,
                compiled=engine.igq_compiled,
                enable_isub=engine.probe_isub,
                enable_isuper=engine.probe_isuper,
            )
            for shard_id in range(engine.num_shards)
        ]

    def probe(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        want_sub: bool,
        want_super: bool,
    ) -> tuple[list[int], list[int]]:
        sub_ids: list[int] = []
        super_ids: list[int] = []
        # The query-side compiled form (plan for Isub, target for Isuper) is
        # shared across the partitions: compiled lazily by the first shard
        # that needs it, reused by the rest — exactly one compile per
        # direction per probe, like the single-shard lookup.
        sub_side: dict = {}
        super_side: dict = {}
        for shard in self.shards:
            if want_sub:
                sub_ids.extend(shard.find_supergraph_ids(query, features, sub_side))
            if want_super:
                super_ids.extend(shard.find_subgraph_ids(query, features, super_side))
        return sub_ids, super_ids

    def sync(self, log: DeltaLog) -> None:
        for shard in self.shards:
            shard.catch_up(log)

    def progress(self) -> int:
        return min(shard.applied_version for shard in self.shards)

    def verify_pool(self) -> ShardVerifyPool | None:
        return None

    def estimated_size_bytes(self) -> int:
        return sum(shard.estimated_size_bytes() for shard in self.shards)

    def close(self) -> None:
        """Nothing to release for in-process replicas."""


class _ProcessShardRuntime:
    """One long-lived single-worker process per shard, fed by the delta log.

    Tasks submitted to a single-worker pool execute in order, so the parent
    ships each shard the log tail it has not yet seen together with the
    next probe — no acknowledgement round-trip is needed, and a worker that
    missed several window flushes replays them before probing.  The worker
    processes double as dataset-verification workers for the batch executor
    (:meth:`verify_pool`).
    """

    uses_processes = True

    def __init__(self, engine: "ShardedIGQ") -> None:
        self._engine = engine
        self._pools: list[ProcessPoolExecutor] | None = None
        self._shipped = [0] * engine.num_shards
        self._needs_reset = [False] * engine.num_shards
        self._acquired_mode: str | None = None

    # ------------------------------------------------------------------
    def _ensure_pools(self) -> list[ProcessPoolExecutor]:
        if self._pools is None:
            engine = self._engine
            method_payload = None
            method_handle = None
            if engine.method.database is not None:
                # Mixed-mode engines precompile both verification directions
                # into the snapshot; fixed-mode ones only their own.  Publish
                # the snapshot once through shared memory so every shard
                # worker attaches to the same segment; without shared memory
                # each per-shard config carries its own pickle copy.
                method_handle = engine.method.acquire_shared_payload(mode=engine.mode)
                if method_handle is not None:
                    self._acquired_mode = engine.mode
                else:
                    method_payload = engine.method.verification_payload(mode=engine.mode)
            verifier = engine.igq_verifier.fresh_clone()
            self._pools = []
            for shard_id in range(engine.num_shards):
                payload = pickle.dumps(
                    {
                        "shard_id": shard_id,
                        "verifier": verifier,
                        "compiled": engine.igq_compiled,
                        "enable_isub": engine.probe_isub,
                        "enable_isuper": engine.probe_isuper,
                        "method_payload": method_payload,
                        "method_handle": method_handle,
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                self._pools.append(
                    ProcessPoolExecutor(
                        max_workers=1,
                        initializer=_init_shard_worker,
                        initargs=(payload,),
                    )
                )
        return self._pools

    def probe(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        want_sub: bool,
        want_super: bool,
    ) -> tuple[list[int], list[int]]:
        pools = self._ensure_pools()
        log = self._engine.delta_log
        futures = []
        for shard_id, pool in enumerate(pools):
            reset = self._needs_reset[shard_id]
            try:
                deltas = log.since(self._shipped[shard_id], shard=shard_id)
            except DeltaLogTruncated:
                reset = True
                deltas = log.since(0, shard=shard_id)
            self._shipped[shard_id] = log.version
            self._needs_reset[shard_id] = False
            futures.append(
                pool.submit(
                    _shard_probe, deltas, reset, query, features, want_sub, want_super
                )
            )
        sub_ids: list[int] = []
        super_ids: list[int] = []
        stats = self._engine.igq_verifier.stats
        try:
            for future in futures:
                shard_sub, shard_super, positives, negatives, samples, _ = future.result()
                sub_ids.extend(shard_sub)
                super_ids.extend(shard_super)
                stats.tests += len(samples)
                stats.positives += positives
                stats.negatives += negatives
                stats.total_seconds += sum(samples)
                stats.per_test_seconds.extend(samples)
        except BaseException:
            # The deltas were optimistically marked shipped at submit time;
            # if any worker failed we can no longer tell which replicas
            # applied them, so force a reset-and-replay on the next probe
            # instead of silently serving from a desynced partition.
            self._shipped = [0] * self._engine.num_shards
            self._needs_reset = [True] * self._engine.num_shards
            raise
        return sub_ids, super_ids

    def sync(self, log: DeltaLog) -> None:
        """Replication is lazy: pending records ship with the next probe."""

    def progress(self) -> int:
        return min(self._shipped)

    def verify_pool(self) -> ShardVerifyPool | None:
        return ShardVerifyPool(self._ensure_pools())

    def estimated_size_bytes(self) -> int:
        """Replica tries live in the workers; report only parent-side state."""
        return 0

    def close(self) -> None:
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None
            self._shipped = [0] * self._engine.num_shards
            self._needs_reset = [True] * self._engine.num_shards
        if self._acquired_mode is not None:
            self._engine.method.release_shared_payload(self._acquired_mode)
            self._acquired_mode = None


class ShardedIGQ(IGQ):
    """iGQ engine whose query index is partitioned across delta-fed shards.

    Configured through :class:`~repro.core.config.EngineConfig` like the
    base engine; its ``shard`` section supplies

    ``shard.shards``:
        Number of cache partitions.  ``1`` (the default) is the A/B
        baseline: the engine behaves exactly like :class:`IGQ` — same code
        paths, no delta log.
    ``shard.backend``:
        One of :data:`SHARD_BACKENDS`.  ``"inline"`` keeps the replicas in
        the parent process (incremental delta maintenance, serial probes);
        ``"process"`` gives every shard a long-lived worker process that
        subscribes to the delta log; ``"auto"`` picks ``"process"`` when
        the machine has more than one usable CPU.
    ``shard.compact_threshold``:
        Compact the delta log down to the slowest replica's position
        whenever it exceeds this many records.  Retained insert records
        keep their compiled payloads alive until they fold, so the
        threshold bounds the engine's peak compiled-object count at
        roughly ``cache_size + compact_threshold``; it also bounds how far
        an *external* subscriber can lag before it must reset-and-replay.
        ``None`` disables automatic compaction — the log (and the evicted
        entries' payloads it retains) then grows with the stream, so only
        use it when something else calls :meth:`DeltaLog.compact`.

    The historical flat kwargs (``shards=``, ``shard_backend=``,
    ``compact_threshold=``, plus :class:`IGQ`'s) remain as deprecation
    shims building the same config.  Process-backed shard pools are
    long-lived: call :meth:`close` (or use the engine as a context manager,
    or let :class:`~repro.service.GraphQueryService` own it) to terminate
    the workers deterministically.

    Whatever the configuration, answers, per-query accounting, cache
    contents and replacement metadata are byte-identical to ``shards=1``;
    the test suite asserts it and the ``bench_sharded`` CI gate enforces it
    alongside the throughput floor.
    """

    def __init__(
        self,
        method,
        config: EngineConfig | None = None,
        *,
        igq_verifier: Verifier | None = None,
        shards=_UNSET,
        shard_backend=_UNSET,
        compact_threshold=_UNSET,
        **legacy_kwargs,
    ) -> None:
        shard_overrides = {
            name: value
            for name, value in (
                ("shards", shards),
                ("backend", shard_backend),
                ("compact_threshold", compact_threshold),
            )
            if value is not _UNSET
        }
        policy_instance = None
        if config is None:
            if shard_overrides:
                mapping = ", ".join(
                    f"{legacy}= -> EngineConfig.shard.{field_name}"
                    for legacy, field_name in (
                        ("shards", "shards"),
                        ("shard_backend", "backend"),
                        ("compact_threshold", "compact_threshold"),
                    )
                    if field_name in shard_overrides
                )
                warnings.warn(
                    f"flat shard kwargs are deprecated; build an EngineConfig "
                    f"instead ({mapping})",
                    DeprecationWarning,
                    stacklevel=2,
                )
            base_config, policy_instance = _legacy_engine_config(
                legacy_kwargs, stacklevel=4
            )
            config = base_config.replace(shard=ShardConfig(**shard_overrides))
        elif shard_overrides or legacy_kwargs:
            raise ConfigError(
                "pass either config= or legacy kwargs, not both (got "
                f"{sorted(shard_overrides) + sorted(legacy_kwargs)} alongside "
                "an EngineConfig)"
            )
        super().__init__(
            method, config, igq_verifier=igq_verifier, _policy_instance=policy_instance
        )
        self.num_shards = config.shard.shards
        self.compact_threshold = config.shard.compact_threshold
        shard_backend = config.shard.backend
        #: which components the shard replicas serve (captured before the
        #: in-process indexes are handed over to the shards)
        self.probe_isub = self.isub is not None
        self.probe_isuper = self.isuper is not None
        self.delta_log: DeltaLog | None = None
        self.shard_runtime = None
        self._entry_shard: dict[int, int] = {}
        if self.num_shards == 1:
            # A/B baseline: exactly today's single-shard engine.
            self.shard_backend = "inline"
            return
        if shard_backend == "auto":
            shard_backend = "process" if effective_cpu_count() > 1 else "inline"
        self.shard_backend = shard_backend
        # The shards own the containment structures; keeping the inherited
        # in-process indexes would double-index (and double-compile) every
        # insertion.
        self.isub = None
        self.isuper = None
        self.delta_log = DeltaLog()
        if shard_backend == "process":
            self.shard_runtime = _ProcessShardRuntime(self)
        else:
            self.shard_runtime = _InlineShardRuntime(self)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, graph: LabeledGraph) -> int:
        """Owning shard of a query graph (stable canonical-key hash)."""
        return shard_of_key(canonical_graph_key(graph), self.num_shards)

    def entry_shard(self, entry_id: int) -> int:
        """Owning shard of a live cache entry."""
        return self._entry_shard[entry_id]

    # ------------------------------------------------------------------
    # Probe fan-out (stage 2)
    # ------------------------------------------------------------------
    def _component_hits(self, query, features):
        if self.num_shards == 1:
            return super()._component_hits(query, features)
        sub_ids, super_ids = self.shard_runtime.probe(
            query, features, self.probe_isub, self.probe_isuper
        )
        # Shards return their hits in local slot order; the single-shard
        # engine reports hits in cache insertion order, which (ids being
        # monotonic) is ascending entry-id order — merge back into it so
        # exact-repeat detection and crediting see the identical sequence.
        cache = self.cache
        sub_hits = [cache.get(entry_id) for entry_id in sorted(sub_ids)]
        super_hits = [cache.get(entry_id) for entry_id in sorted(super_ids)]
        return sub_hits, super_hits

    # ------------------------------------------------------------------
    # Delta-emitting window flush (§5.2, replacing the shadow rebuild)
    # ------------------------------------------------------------------
    def _flush_window(self) -> MaintenanceReport:
        if self.num_shards == 1:
            return super()._flush_window()
        report = MaintenanceReport()
        window = self.maintenance.drain_window()
        if not window:
            report.cache_size_after = len(self.cache)
            return report
        log = self.delta_log
        victims = self.maintenance.select_evictions(self.cache, len(window))
        for entry_id in victims:
            self.cache.remove(entry_id)  # releases the parent-side payloads
            log.append_evict(self._entry_shard.pop(entry_id), entry_id)
        report.evicted = len(victims)
        report.evicted_entry_ids = victims
        for pending in window:
            entry = self.cache.add(
                pending.graph, pending.features, pending.answer, tags=pending.tags
            )
            shard_id = self.shard_of(pending.graph)
            self._entry_shard[entry.entry_id] = shard_id
            log.append_insert(shard_id, self._make_shard_entry(entry))
            report.inserted += 1
        log.append_flush()
        self.shard_runtime.sync(log)
        if self.compact_threshold is not None and len(log) > self.compact_threshold:
            log.compact(self.shard_runtime.progress())
        report.cache_size_after = len(self.cache)
        return report

    def _make_shard_entry(self, entry: CacheEntry) -> ShardEntry:
        """Build the replica payload, compiling each direction exactly once.

        Compilation happens here — in the parent, when the entry enters the
        log — for the same reason the single-shard indexes compile on
        insertion: the entry will be containment-tested against every
        future query.  The compiled objects are stored on the cache entry
        too (released on eviction), so no shard ever recompiles them.
        """
        if self.igq_compiled and self.igq_verifier.supports_compiled():
            if self.probe_isub and entry.compiled_target is None:
                entry.compiled_target = compile_target(entry.graph)
            if self.probe_isuper and entry.compiled_plan is None:
                entry.compiled_plan = compile_query_plan(entry.graph)
        return ShardEntry(
            entry_id=entry.entry_id,
            graph=entry.graph,
            features=entry.features,
            compiled_target=entry.compiled_target,
            compiled_plan=entry.compiled_plan,
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def index_size_bytes(self) -> int:
        """Estimated bytes of the query index including shard structures."""
        # With shards>1 the inherited isub/isuper are None, so the parent
        # implementation contributes exactly the cached-graph/answer bytes;
        # the shard structures are added on top.
        total = super().index_size_bytes()
        if self.num_shards > 1:
            total += self.shard_runtime.estimated_size_bytes()
        return total

    def shard_balance(self) -> list[int]:
        """Live cache entries per shard (service introspection).

        A heavily skewed balance on a Zipf workload is the signal the
        ROADMAP's hot-key-replication item exists to address.
        """
        counts = [0] * self.num_shards
        if self.num_shards == 1:
            counts[0] = len(self.cache)
        else:
            for shard_id in self._entry_shard.values():
                counts[shard_id] += 1
        return counts

    def close(self) -> None:
        """Shut down the shard runtime (worker pools); idempotent.

        Order matters: the runtime releases its reference on the published
        snapshot segment first, then the base class force-unlinks whatever
        is left (see :meth:`repro.core.engine.IGQ.close`).
        """
        if self.shard_runtime is not None:
            self.shard_runtime.close()
        super().close()

    def __repr__(self) -> str:
        return (
            f"<ShardedIGQ method={self.method.name!r} mode={self.mode!r} "
            f"shards={self.num_shards} backend={self.shard_backend!r} "
            f"cached={len(self.cache)}>"
        )
