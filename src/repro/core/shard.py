"""Sharded query cache with delta-replicated compiled state.

The single-shard engine keeps the whole query index — cache entries, the two
containment indexes, and every per-entry compiled payload — in one process,
and worker pools only ever receive a one-shot immutable snapshot of the
*dataset* state.  That is fine while the query-index state never leaves the
parent, but it blocks two scaling moves the ROADMAP asks for: probing the
(CPU-heavy) containment indexes concurrently, and eventually serving the
cache from separate processes or machines.  This module supplies both in one
architecture:

* **Partitioning** — the cached queries are split across ``N`` shards by a
  stable hash of their canonical form (:func:`shard_of_key`), so an entry's
  owning shard is a pure function of its graph: routing never changes under
  insert/evict churn and is identical in every process that computes it.

* **Delta replication** — shards are kept coherent through an ordered
  :class:`DeltaLog` of :class:`CacheDelta` records (``insert`` / ``evict`` /
  ``flush``).  Insert deltas carry the *already compiled*
  ``CompiledTarget``/``CompiledQueryPlan`` payloads built once in the
  parent, so a shard never recompiles an entry; ``flush`` markers carry a
  monotonically increasing *epoch* (one per window flush), so a replica that
  missed any number of flushes simply replays the log tail instead of being
  re-snapshotted.  A replica older than the log's compaction floor resets
  and replays from the beginning — the only case that degenerates to a
  rebuild.

* **Hot-key replication and rebalancing** — static canonical-key partitions
  send every probe for a popular query to the same shard, so a Zipf-skewed
  stream saturates one partition while the rest idle.  With
  ``shard.hot_threshold`` set, the parent counts per-entry probe hits and,
  at the next window flush, emits ``replicate`` records installing the hot
  entries' already-compiled payloads on other shards (all of them, or a
  ``replication_factor``-sized holder group), while per-partition feature
  summaries let each probe *skip* shards whose partition provably cannot
  contain a hit — exactly one shard containment-tests each live entry per
  probe, so answers and accounting stay byte-identical.
  ``shard.rebalance_interval`` additionally emits ``move`` records shifting
  cold entries from the hottest partition to the coldest at flush
  boundaries, so partitions equalise under topic drift.  Both knobs default
  to off, which reproduces the static-partition behaviour (and its delta
  stream) byte-for-byte.

* **Execution** — :class:`ShardedIGQ` is a drop-in :class:`IGQ` engine.
  With ``shards=1`` it *is* today's engine (the A/B baseline: same code
  paths, no delta log).  With ``shards>1`` the window flush emits deltas and
  applies them incrementally (no shadow rebuild of the full cache — flush
  cost is proportional to the window, not the capacity), and every probe
  fans out across the shards: in-process replicas under the ``inline``
  backend, or one long-lived single-worker process per shard under the
  ``process`` backend, where each worker subscribes to the delta log —
  pending records ride along with the next probe — and doubles as a
  verification worker for the batch executor (its one-shot snapshot now
  carries only dataset state).  Answers, hit/miss accounting and replacement
  state are byte-identical across all of these configurations.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import warnings
from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace as dataclass_replace

from ..features.canonical import canonical_graph_key
from ..features.extractor import GraphFeatures
from ..graphs.graph import LabeledGraph
from ..isomorphism.compiled import compile_query_plan, compile_target
from ..isomorphism.verifier import Verifier
from .batch import _init_worker, _init_worker_shared, effective_cpu_count
from .cache import CacheEntry
from .config import ConfigError, EngineConfig, ShardConfig
from .engine import _UNSET, IGQ, _legacy_engine_config
from .isub import SubgraphQueryIndex
from .isuper import SupergraphQueryIndex
from .maintenance import MaintenanceReport

__all__ = [
    "SHARD_BACKENDS",
    "DELTA_INSERT",
    "DELTA_EVICT",
    "DELTA_FLUSH",
    "DELTA_REPLICATE",
    "DELTA_MOVE",
    "CacheDelta",
    "DeltaLog",
    "DeltaLogTruncated",
    "ShardEntry",
    "QueryIndexShard",
    "ShardVerifyPool",
    "ShardedIGQ",
    "shard_of_key",
]

#: accepted ``shard_backend`` values; ``"auto"`` resolves to ``"process"``
#: when the machine can actually run the shard workers concurrently and to
#: ``"inline"`` otherwise
SHARD_BACKENDS = ("auto", "inline", "process")

DELTA_INSERT = "insert"
DELTA_EVICT = "evict"
DELTA_FLUSH = "flush"
#: install a hot entry's compiled payload on shards beyond its home
DELTA_REPLICATE = "replicate"
#: transfer a (non-replicated) entry from one home partition to another
DELTA_MOVE = "move"

#: ``CacheDelta.shard`` value of records addressing every shard (flush
#: markers, replicate records, and evictions of replicated entries —
#: optionally narrowed by ``CacheDelta.targets``)
BROADCAST = -1


def shard_of_key(key: tuple, num_shards: int) -> int:
    """Owning shard of a canonical graph key — stable across processes.

    Built-in ``hash`` is salted per interpreter, so replicas in different
    processes could disagree; a keyed-less BLAKE2 digest of the key's
    canonical repr is deterministic everywhere.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


@dataclass
class ShardEntry:
    """Replica-side view of one cached query: what a shard needs to probe.

    Deliberately *not* the full :class:`~repro.core.cache.CacheEntry` — the
    answer set and the §5.1 replacement metadata stay authoritative in the
    parent (shards return entry ids, the parent credits its own entries), so
    a delta ships only the graph, its features and the compiled payloads.
    Inside the parent process the referenced objects are shared with the
    cache entry; across a process boundary pickling copies them once.
    """

    entry_id: int
    graph: LabeledGraph
    features: GraphFeatures
    compiled_target: object | None = None
    compiled_plan: object | None = None

    # The containment indexes manage compiled state through these hooks
    # (same protocol as CacheEntry), so replicas release exactly like the
    # parent-side entries do.
    def release_compiled_target(self) -> None:
        """Drop the bitset target payload (mirrors ``CacheEntry``)."""
        self.compiled_target = None

    def release_compiled_plan(self) -> None:
        """Drop the matching-plan payload (mirrors ``CacheEntry``)."""
        self.compiled_plan = None

    def release_compiled(self) -> None:
        """Drop both compiled payloads."""
        self.release_compiled_target()
        self.release_compiled_plan()


@dataclass(frozen=True)
class CacheDelta:
    """One ordered replication record of the sharded query cache."""

    #: global log sequence number (1-based, dense)
    version: int
    #: window-flush generation the record belongs to
    epoch: int
    #: one of :data:`DELTA_INSERT` / :data:`DELTA_EVICT` / :data:`DELTA_FLUSH`
    #: / :data:`DELTA_REPLICATE` / :data:`DELTA_MOVE`
    op: str
    #: addressed shard — the owning shard for inserts/evicts, the
    #: *destination* shard for moves, or :data:`BROADCAST`
    shard: int
    entry_id: int | None = None
    entry: ShardEntry | None = None
    #: the shard a ``move`` record transfers the entry away from (the
    #: record addresses both ``src_shard`` and ``shard``)
    src_shard: int | None = None
    #: for :data:`BROADCAST` records, the shards actually addressed
    #: (``None`` = all of them); a ``replication_factor`` below the shard
    #: count narrows replicate records (and the matching evictions) to the
    #: entry's holder group
    targets: tuple[int, ...] | None = None


def record_size_bytes(record: CacheDelta) -> int:
    """Estimated in-memory footprint of one delta record.

    Same per-graph cost model as ``IGQ.index_size_bytes`` (compiled
    payloads excluded — they are shared with the live cache entry, so
    folding a record does not reclaim them).
    """
    size = 96
    entry = record.entry
    if entry is not None:
        graph = entry.graph
        size += 80 + 56 * graph.num_vertices + 48 * graph.num_edges
        size += 40 + 24 * len(entry.features.counts)
    if record.targets is not None:
        size += 8 * len(record.targets)
    return size


class DeltaLogTruncated(RuntimeError):
    """A subscriber asked for records older than the compaction floor."""


class DeltaLog:
    """Ordered, compactable log of :class:`CacheDelta` records.

    ``version`` increases by one per record; ``epoch`` increases by one per
    ``flush`` marker.  :meth:`compact` folds a fully-acknowledged prefix
    into its net effect (the inserts still live at the horizon, with their
    original versions), so the log stays bounded on long streams while a
    fresh replica can still bootstrap by replaying from version 0.
    """

    def __init__(self) -> None:
        self._records: list[CacheDelta] = []
        self._version = 0
        self._epoch = 0
        self._floor_version = 0
        # Lifetime compaction totals (compact_stats); unlike the engine's
        # per-phase counters these are never reset.
        self._records_folded_total = 0
        self._bytes_reclaimed = 0

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Version of the newest record (0 for an empty log)."""
        return self._version

    @property
    def epoch(self) -> int:
        """Current flush generation."""
        return self._epoch

    @property
    def floor_version(self) -> int:
        """Oldest version a non-fresh subscriber may still replay from."""
        return self._floor_version

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_insert(self, shard: int, entry: ShardEntry) -> CacheDelta:
        """Record that ``entry`` entered the cache, owned by ``shard``."""
        return self._append(
            CacheDelta(
                version=self._version + 1,
                epoch=self._epoch,
                op=DELTA_INSERT,
                shard=shard,
                entry_id=entry.entry_id,
                entry=entry,
            )
        )

    def append_evict(
        self, shard: int, entry_id: int, targets: tuple[int, ...] | None = None
    ) -> CacheDelta:
        """Record that the entry ``entry_id`` left the cache.

        ``shard`` is the entry's home shard, or :data:`BROADCAST` for a
        replicated entry (every holder drops its copy; ``targets`` narrows
        the broadcast to the holder group when the entry was replicated
        with a factor below the shard count).
        """
        return self._append(
            CacheDelta(
                version=self._version + 1,
                epoch=self._epoch,
                op=DELTA_EVICT,
                shard=shard,
                entry_id=entry_id,
                targets=targets,
            )
        )

    def append_replicate(
        self, entry: ShardEntry, targets: tuple[int, ...] | None = None
    ) -> CacheDelta:
        """Record that ``entry`` went hot: install it on the target shards.

        The payload carries the compiled state built once in the parent, so
        no holder recompiles; on the entry's home shard the record also
        retires the home-partition copy (the entry is served from the
        replica store everywhere from now on, by exactly one covering shard
        per probe).
        """
        return self._append(
            CacheDelta(
                version=self._version + 1,
                epoch=self._epoch,
                op=DELTA_REPLICATE,
                shard=BROADCAST,
                entry_id=entry.entry_id,
                entry=entry,
                targets=targets,
            )
        )

    def append_move(
        self, entry: ShardEntry, src_shard: int, dst_shard: int
    ) -> CacheDelta:
        """Record a rebalance transfer of ``entry`` between home partitions.

        Addresses both sides: ``src_shard`` drops its copy, ``dst_shard``
        installs the carried payload.  The payload keeps bootstrap-from-0
        replays compile-free even after the source copy released its
        instance pointers.
        """
        return self._append(
            CacheDelta(
                version=self._version + 1,
                epoch=self._epoch,
                op=DELTA_MOVE,
                shard=dst_shard,
                entry_id=entry.entry_id,
                entry=entry,
                src_shard=src_shard,
            )
        )

    def append_flush(self) -> CacheDelta:
        """Close the current flush generation with an epoch marker."""
        self._epoch += 1
        return self._append(
            CacheDelta(
                version=self._version + 1,
                epoch=self._epoch,
                op=DELTA_FLUSH,
                shard=BROADCAST,
            )
        )

    def _append(self, record: CacheDelta) -> CacheDelta:
        self._records.append(record)
        self._version = record.version
        return record

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def since(self, version: int, shard: int | None = None) -> list[CacheDelta]:
        """Records after ``version``, oldest first.

        ``shard`` filters to the records addressing that shard: its own
        inserts/evicts, moves it is the source or destination of, broadcast
        records whose ``targets`` include it (or are unrestricted), and
        every flush marker (markers are broadcast so each replica tracks
        the epoch).  ``version=0`` always means "bootstrap from scratch"
        and is valid on a compacted log — the retained prefix is the net
        state.  Any other version below the compaction floor raises
        :class:`DeltaLogTruncated` (the subscriber may hold entries whose
        eviction records were folded away, so replaying the tail cannot
        repair it).
        """
        if 0 < version < self._floor_version:
            raise DeltaLogTruncated(
                f"version {version} predates the compaction floor "
                f"{self._floor_version}; reset and replay from 0"
            )
        if version >= self._version:
            # The common steady-state case — a subscriber probing between
            # flushes has nothing to replay; skip the scan entirely.
            return []
        # Records are version-sorted, so the tail starts at a bisect.
        start = bisect_right(self._records, version, key=lambda record: record.version)
        records = self._records[start:]
        if shard is None:
            return records
        return [record for record in records if self._addresses(record, shard)]

    @staticmethod
    def _addresses(record: CacheDelta, shard: int) -> bool:
        """Does ``record`` address ``shard``? (the ``since`` filter)"""
        if record.op == DELTA_FLUSH:
            return True
        if record.src_shard == shard:
            return True
        if record.shard == BROADCAST:
            return record.targets is None or shard in record.targets
        return record.shard == shard

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, up_to_version: int) -> int:
        """Fold every record up to ``up_to_version`` into its net effect.

        Only call with a version every subscriber has already applied (the
        sharded engine uses the minimum shipped version).  Insert records
        whose entry is still live at the horizon are retained with their
        original versions; matched insert/evict pairs and flush markers in
        the prefix are dropped.  A ``move`` folds into its entry's retained
        insert (home shard and payload rewritten — the move's payload, not
        the original, because the source replica released the original
        instance's compiled pointers on transfer).  A ``replicate``
        supersedes its entry's insert outright: replaying the replicate
        alone reinstalls the entry in every holder's replica store, which
        *is* the net state of a hot entry.  Returns the number of records
        removed.
        """
        up_to_version = min(up_to_version, self._version)
        if up_to_version <= self._floor_version:
            return 0
        live: dict[int, CacheDelta] = {}
        replicated: dict[int, CacheDelta] = {}
        suffix: list[CacheDelta] = []
        for record in self._records:
            if record.version > up_to_version:
                suffix.append(record)
            elif record.op == DELTA_INSERT:
                live[record.entry_id] = record
            elif record.op == DELTA_EVICT:
                live.pop(record.entry_id, None)
                replicated.pop(record.entry_id, None)
            elif record.op == DELTA_MOVE:
                insert = live.get(record.entry_id)
                if insert is not None:
                    live[record.entry_id] = dataclass_replace(
                        insert, shard=record.shard, entry=record.entry
                    )
            elif record.op == DELTA_REPLICATE:
                replicated[record.entry_id] = record
                live.pop(record.entry_id, None)
        retained = sorted(
            list(live.values()) + list(replicated.values()),
            key=lambda r: r.version,
        )
        kept = {id(record) for record in retained}
        self._bytes_reclaimed += sum(
            record_size_bytes(record)
            for record in self._records
            if record.version <= up_to_version and id(record) not in kept
        )
        removed = len(self._records) - len(retained) - len(suffix)
        self._records = retained + suffix
        self._floor_version = up_to_version
        self._records_folded_total += removed
        return removed

    def compact_stats(self) -> dict:
        """Lifetime compaction totals: what folding has bought so far.

        ``records_folded`` and ``bytes_reclaimed`` (the estimated in-memory
        size of the dropped records, same per-graph cost model as
        ``index_size_bytes``) accumulate across every :meth:`compact` call;
        ``floor_version`` is the current replay floor.
        """
        return {
            "records_folded": self._records_folded_total,
            "bytes_reclaimed": self._bytes_reclaimed,
            "floor_version": self._floor_version,
        }


class ReplicaGroup:
    """One physical copy of the replicated-entry indexes, shared by shards.

    Replicated entries are by definition identical on every holder, so
    co-resident shards (the inline backend) would otherwise maintain
    ``num_shards`` copies of every hot entry's postings — and pay
    ``num_shards`` trie insertions per replicate record.  Shards attached
    to a group bind their replica store and index pair to the group's;
    :meth:`QueryIndexShard.apply` installs a replicate record only for the
    first member that sees it and removal is already lenient, so replay
    stays correct record-by-record.  Cross-process shards cannot share
    memory and simply run without a group (one copy per worker).
    """

    def __init__(
        self,
        verifier: Verifier,
        compiled: bool = True,
        enable_isub: bool = True,
        enable_isuper: bool = True,
    ) -> None:
        self.replicas: dict[int, ShardEntry] = {}
        self.isub = (
            SubgraphQueryIndex(verifier, compiled=compiled, lite=True)
            if enable_isub
            else None
        )
        self.isuper = (
            SupergraphQueryIndex(verifier, compiled=compiled, lite=True)
            if enable_isuper
            else None
        )
        #: the member that accounts for the shared structures (sizes)
        self.owner: int | None = None

    def clear(self) -> None:
        """Drop every replica *in place* (member index references stay valid).

        Idempotent: a reset wave hits every member in turn, and each
        member's replay from version 0 reinstalls the same replicate
        records, so clearing on each reset converges to the right state.
        """
        for entry_id in list(self.replicas):
            entry = self.replicas.pop(entry_id)
            if self.isub is not None:
                self.isub.remove(entry_id)
            if self.isuper is not None:
                self.isuper.remove(entry_id)
            entry.release_compiled()


class QueryIndexShard:
    """One replica: a partition of the query index, driven by the delta log.

    Holds the same two containment indexes the single-shard engine uses,
    restricted to the entries routed to this shard, plus the replication
    cursor (``applied_version``/``epoch``).  Replicated (hot) entries live
    in a *second* index pair — the replica store, optionally shared with
    co-resident shards through a :class:`ReplicaGroup` — so home-partition
    probes never walk them and a covering probe can be restricted to
    exactly the replicas assigned to this shard.  Lives either in the
    parent process (inline backend) or inside a dedicated worker process.
    """

    def __init__(
        self,
        shard_id: int,
        verifier: Verifier | None = None,
        compiled: bool = True,
        enable_isub: bool = True,
        enable_isuper: bool = True,
        replica_group: ReplicaGroup | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.verifier = verifier if verifier is not None else Verifier()
        self.compiled = compiled
        self.enable_isub = enable_isub
        self.enable_isuper = enable_isuper
        self.applied_version = 0
        self.epoch = 0
        self._entries: dict[int, ShardEntry] = {}
        self._replica_group = replica_group
        if replica_group is not None and replica_group.owner is None:
            replica_group.owner = shard_id
        self._make_indexes()

    def _make_indexes(self) -> None:
        self.isub = (
            SubgraphQueryIndex(self.verifier, compiled=self.compiled)
            if self.enable_isub
            else None
        )
        self.isuper = (
            SupergraphQueryIndex(self.verifier, compiled=self.compiled)
            if self.enable_isuper
            else None
        )
        group = self._replica_group
        if group is not None:
            self._replicas = group.replicas
            self.replica_isub = group.isub
            self.replica_isuper = group.isuper
            return
        self._replicas = {}
        # Replica lookups are always restricted (to the probe's cover
        # assignment, or to the whole store), so the replica indexes are
        # lite: no posting lists, constant-time replicate installs.
        self.replica_isub = (
            SubgraphQueryIndex(self.verifier, compiled=self.compiled, lite=True)
            if self.enable_isub
            else None
        )
        self.replica_isuper = (
            SupergraphQueryIndex(self.verifier, compiled=self.compiled, lite=True)
            if self.enable_isuper
            else None
        )

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def apply(self, delta: CacheDelta) -> None:
        """Apply one delta; records must arrive in increasing version order."""
        if delta.version <= self.applied_version:
            raise ValueError(
                f"shard {self.shard_id} at version {self.applied_version} "
                f"received stale delta {delta.version}"
            )
        if delta.op == DELTA_FLUSH:
            self.epoch = delta.epoch
        elif delta.op == DELTA_INSERT:
            if delta.shard != self.shard_id:
                raise ValueError(
                    f"delta for shard {delta.shard} misrouted to shard {self.shard_id}"
                )
            self._install_home(delta.entry)
        elif delta.op == DELTA_EVICT:
            if delta.shard == BROADCAST:
                # Replicated-entry eviction: drop whichever copy this
                # holder has (home copy too, for a pre-compaction replay
                # where the original insert precedes the replicate).
                # Absence is fine — targets may over-approximate after a
                # reset, and non-holding shards simply no-op.
                self._remove_home(delta.entry_id)
                self._remove_replica(delta.entry_id)
            else:
                entry = self._remove_home(delta.entry_id)
                if entry is None:
                    raise ValueError(
                        f"shard {self.shard_id} cannot evict unknown entry "
                        f"{delta.entry_id}"
                    )
        elif delta.op == DELTA_REPLICATE:
            if delta.targets is not None and self.shard_id not in delta.targets:
                raise ValueError(
                    f"replicate delta for shards {delta.targets} misrouted "
                    f"to shard {self.shard_id}"
                )
            # The home copy (if this is the entry's home shard) retires:
            # the entry is served from the replica stores only, by exactly
            # one covering shard per probe.
            self._remove_home(delta.entry_id)
            entry = delta.entry
            # With a shared ReplicaGroup another member may have installed
            # this very record already; one physical copy is the point.
            if entry.entry_id not in self._replicas:
                self._replicas[entry.entry_id] = entry
                if self.replica_isub is not None:
                    self.replica_isub.add(entry)
                if self.replica_isuper is not None:
                    self.replica_isuper.add(entry)
        elif delta.op == DELTA_MOVE:
            if delta.src_shard == self.shard_id:
                entry = self._remove_home(delta.entry_id)
                if entry is None:
                    raise ValueError(
                        f"shard {self.shard_id} cannot move out unknown entry "
                        f"{delta.entry_id}"
                    )
            elif delta.shard == self.shard_id:
                self._install_home(delta.entry)
            else:
                raise ValueError(
                    f"move delta {delta.src_shard}->{delta.shard} misrouted "
                    f"to shard {self.shard_id}"
                )
        else:
            raise ValueError(f"unknown delta op {delta.op!r}")
        self.applied_version = delta.version

    def _install_home(self, entry: ShardEntry) -> None:
        self._entries[entry.entry_id] = entry
        if self.isub is not None:
            self.isub.add(entry)
        if self.isuper is not None:
            self.isuper.add(entry)

    def _remove_home(self, entry_id: int) -> ShardEntry | None:
        entry = self._entries.pop(entry_id, None)
        if entry is not None:
            if self.isub is not None:
                self.isub.remove(entry_id)
            if self.isuper is not None:
                self.isuper.remove(entry_id)
            # A disabled index would leave its direction unreleased.  Only
            # this instance's pointers drop — the compiled objects stay
            # alive on the parent cache entry and any newer payload.
            entry.release_compiled()
        return entry

    def _remove_replica(self, entry_id: int) -> ShardEntry | None:
        entry = self._replicas.pop(entry_id, None)
        if entry is not None:
            if self.replica_isub is not None:
                self.replica_isub.remove(entry_id)
            if self.replica_isuper is not None:
                self.replica_isuper.remove(entry_id)
            entry.release_compiled()
        return entry

    def catch_up(self, log: DeltaLog) -> int:
        """Replay every missed record; returns the number applied.

        A replica that fell behind the log's compaction floor resets and
        replays the retained net state from version 0 — the re-snapshot
        fallback; every younger replica replays only the tail, however many
        window flushes it missed.
        """
        try:
            deltas = log.since(self.applied_version, shard=self.shard_id)
        except DeltaLogTruncated:
            self.reset()
            deltas = log.since(0, shard=self.shard_id)
        for delta in deltas:
            self.apply(delta)
        return len(deltas)

    def reset(self) -> None:
        """Drop all replica state (compiled payloads released)."""
        for entry in self._entries.values():
            entry.release_compiled()
        self._entries = {}
        if self._replica_group is not None:
            # Clear the shared store in place so the other members' index
            # references stay valid; each member's subsequent replay from
            # version 0 reinstalls the same replicate records.
            self._replica_group.clear()
        else:
            for entry in self._replicas.values():
                entry.release_compiled()
            self._replicas = {}
        self.applied_version = 0
        self.epoch = 0
        self._make_indexes()

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def find_supergraph_ids(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        query_side_cache: dict | None = None,
        home: bool = True,
        cover=None,
    ) -> list[int]:
        """Entry ids of this shard's ``Isub`` hits (local order).

        ``home`` gates the home-partition lookup (a pruned probe skips it);
        ``cover`` asks for the replicated entries this shard answers for on
        this probe — ``True`` for all of them, a sequence of entry ids for
        a subset, ``None`` for none.
        """
        if self.isub is None:
            return []
        ids: list[int] = []
        if home and self._entries:
            ids.extend(
                entry.entry_id
                for entry in self.isub.find_supergraphs(query, features, query_side_cache)
            )
        if cover is not None and self._replicas:
            ids.extend(
                entry.entry_id
                for entry in self.replica_isub.find_supergraphs(
                    query,
                    features,
                    query_side_cache,
                    restrict_ids=None if cover is True else cover,
                )
            )
        return ids

    def find_subgraph_ids(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        query_side_cache: dict | None = None,
        home: bool = True,
        cover=None,
    ) -> list[int]:
        """Entry ids of this shard's ``Isuper`` hits (local order).

        ``home`` and ``cover`` behave as in :meth:`find_supergraph_ids`.
        """
        if self.isuper is None:
            return []
        ids: list[int] = []
        if home and self._entries:
            ids.extend(
                entry.entry_id
                for entry in self.isuper.find_subgraphs(query, features, query_side_cache)
            )
        if cover is not None and self._replicas:
            ids.extend(
                entry.entry_id
                for entry in self.replica_isuper.find_subgraphs(
                    query,
                    features,
                    query_side_cache,
                    restrict_ids=None if cover is True else cover,
                )
            )
        return ids

    def entry_ids(self) -> list[int]:
        """Ids of the home-partition entries this replica currently serves."""
        return sorted(self._entries)

    def replica_ids(self) -> list[int]:
        """Ids of the replicated (hot) entries this shard holds."""
        return sorted(self._replicas)

    def estimated_size_bytes(self) -> int:
        """Approximate index-structure size of this shard (Figure 18).

        Shared (group) replica indexes are counted by their owning member
        only, so a runtime-wide sum sees each byte once.
        """
        indexes = [self.isub, self.isuper]
        group = self._replica_group
        if group is None or group.owner == self.shard_id:
            indexes += [self.replica_isub, self.replica_isuper]
        total = 0
        for index in indexes:
            if index is not None:
                total += index.estimated_size_bytes()
        return total

    def __len__(self) -> int:
        return len(self._entries) + len(self._replicas)

    def __repr__(self) -> str:
        return (
            f"<QueryIndexShard id={self.shard_id} entries={len(self._entries)} "
            f"replicas={len(self._replicas)} "
            f"version={self.applied_version} epoch={self.epoch}>"
        )


# ----------------------------------------------------------------------
# Worker-side state (process backend)
# ----------------------------------------------------------------------
#: per-process shard replica, installed by the pool initializer
_WORKER_SHARD: QueryIndexShard | None = None


def _init_shard_worker(payload: bytes) -> None:
    global _WORKER_SHARD
    config = pickle.loads(payload)
    _WORKER_SHARD = QueryIndexShard(
        config["shard_id"],
        verifier=config["verifier"],
        compiled=config["compiled"],
        enable_isub=config["enable_isub"],
        enable_isuper=config["enable_isuper"],
    )
    # The same long-lived process also serves dataset verification chunks
    # for the batch executor, so install the method snapshot the way the
    # executor's own pool initializers would: by attaching to the published
    # shared-memory segment when one exists, else from the pickle bytes.
    if config.get("method_handle") is not None:
        _init_worker_shared(config["method_handle"])
    elif config["method_payload"] is not None:
        _init_worker(config["method_payload"])


def _shard_probe(
    deltas: list[CacheDelta],
    reset: bool,
    query: LabeledGraph,
    features: GraphFeatures,
    want_sub: bool,
    want_super: bool,
    home_sub: bool = True,
    home_super: bool = True,
    cover_sub=None,
    cover_super=None,
) -> tuple[list[int], list[int], int, int, list[float], int, str]:
    """Worker entry point: catch up on the log tail, then probe.

    ``home_*`` / ``cover_*`` carry the parent's probe directive (pruning
    flags and replica assignment; see :meth:`QueryIndexShard` probes) — the
    defaults reproduce the unpruned full probe.  Returns the two hit-id
    lists plus the verifier-stat deltas of the probe (positives, negatives,
    per-test samples — folded back by the parent so the §4 containment-test
    accounting stays byte-identical to the inline path), the replica's
    applied version, and the kernel backend this worker process resolved
    (kernel resolution is per process: a shard worker that cannot load the
    native library falls back to ``"bigint"`` locally, and the parent
    surfaces that through ``shard_stats()["worker_kernels"]``).
    """
    shard = _WORKER_SHARD
    if reset:
        shard.reset()
    for delta in deltas:
        shard.apply(delta)
    stats = shard.verifier.stats
    positives, negatives = stats.positives, stats.negatives
    samples_before = len(stats.per_test_seconds)
    sub_ids = (
        shard.find_supergraph_ids(query, features, home=home_sub, cover=cover_sub)
        if want_sub and (home_sub or cover_sub is not None)
        else []
    )
    super_ids = (
        shard.find_subgraph_ids(query, features, home=home_super, cover=cover_super)
        if want_super and (home_super or cover_super is not None)
        else []
    )
    samples = stats.per_test_seconds[samples_before:]
    del stats.per_test_seconds[samples_before:]
    return (
        sub_ids,
        super_ids,
        stats.positives - positives,
        stats.negatives - negatives,
        samples,
        shard.applied_version,
        shard.verifier.resolved_kernel_name(),
    )


class _PoolLoadTracker:
    """In-flight task counts per shard pool, shared by probes and chunks.

    ``acquire()`` picks the least-loaded pool (ties broken by a rotating
    cursor so equal-load pools still alternate); ``acquire(index)`` records
    a task routed by affinity (a shard probe must run on its own shard's
    pool).  Counts are decremented from future done-callbacks, so the lock
    only guards the counter array.
    """

    def __init__(self, size: int) -> None:
        self._counts = [0] * size
        self._next = 0
        self._lock = threading.Lock()

    def acquire(self, index: int | None = None) -> int:
        with self._lock:
            size = len(self._counts)
            if index is None:
                best_count = None
                index = self._next
                for offset in range(size):
                    candidate = (self._next + offset) % size
                    count = self._counts[candidate]
                    if best_count is None or count < best_count:
                        best_count = count
                        index = candidate
                self._next = (index + 1) % size
            self._counts[index] += 1
            return index

    def release(self, index: int) -> None:
        with self._lock:
            self._counts[index] -= 1

    def snapshot(self) -> list[int]:
        """Current in-flight counts (service introspection)."""
        with self._lock:
            return list(self._counts)


class ShardVerifyPool:
    """Executor facade spreading verification chunks over the shard pools.

    The batch executor talks to one object with ``submit``; routing prefers
    the least-loaded per-shard single-worker pool (shard probes in flight
    count toward a pool's load, since they share its one worker), falling
    back to round-robin order among equally loaded pools.  The processes
    already hold the method snapshot.  Lifetime belongs to the engine's
    runtime, so ``shutdown`` is a no-op.

    Trade-off: probes and verification chunks share the same single-worker
    queues, so with ``pipeline=True`` the speculative probe of query *i+1*
    waits behind query *i*'s verification chunks — the planner overlap of
    the single-shard process pool does not materialise here.  Results and
    accounting are unaffected; workloads that need both the overlap and
    sharded probing should give the executor its own pool
    (``shard_backend="inline"`` plus a process-backed executor).
    """

    def __init__(
        self, pools: list[ProcessPoolExecutor], tracker: _PoolLoadTracker | None = None
    ) -> None:
        self._pools = pools
        self._tracker = tracker if tracker is not None else _PoolLoadTracker(len(pools))

    def submit(self, fn, /, *args, **kwargs):
        """Schedule ``fn`` on the least-loaded shard pool."""
        index = self._tracker.acquire()
        future = self._pools[index].submit(fn, *args, **kwargs)
        future.add_done_callback(lambda _, i=index: self._tracker.release(i))
        return future

    def shutdown(self, wait: bool = True) -> None:
        """No-op: the owning :class:`ShardedIGQ` closes the real pools."""


class _PartitionSummary:
    """Parent-side prune summary of one shard's home partition.

    Rows are ``(entry_id, feature_mask, num_vertices, num_edges)`` per live
    entry.  The two ``may_contain_*`` tests apply *necessary* conditions for
    an entry to survive the shard's own candidate filtering plus the
    uncounted size pre-checks — feature-mask dominance is implied by the
    trie filters' occurrence-count dominance, and the size bounds mirror
    :meth:`ContainmentIndex._verified_hits`'s ``continue`` guards — so a
    shard pruned on their say-so would have produced zero hits *and* zero
    counted containment tests: skipping it cannot perturb the byte-identity
    invariant.  Rebuilt at flush boundaries (the cache is static between
    flushes).
    """

    __slots__ = ("rows", "union_mask", "min_vertices", "min_edges", "max_vertices", "max_edges")

    def __init__(self, rows) -> None:
        self.rows = tuple(rows)
        union = 0
        min_v = min_e = max_v = max_e = 0
        for index, (_, mask, vertices, edges) in enumerate(self.rows):
            union |= mask
            if index == 0:
                min_v = max_v = vertices
                min_e = max_e = edges
            else:
                min_v = min(min_v, vertices)
                max_v = max(max_v, vertices)
                min_e = min(min_e, edges)
                max_e = max(max_e, edges)
        self.union_mask = union
        self.min_vertices, self.max_vertices = min_v, max_v
        self.min_edges, self.max_edges = min_e, max_e

    def may_contain_super(self, query_mask: int, vertices: int, edges: int) -> bool:
        """Could some entry be a supergraph of the query (Isub side)?"""
        if not self.rows:
            return False
        if query_mask & ~self.union_mask:
            return False
        if self.max_vertices < vertices or self.max_edges < edges:
            return False
        for _, mask, entry_vertices, entry_edges in self.rows:
            if (
                not query_mask & ~mask
                and entry_vertices >= vertices
                and entry_edges >= edges
            ):
                return True
        return False

    def may_contain_sub(self, query_mask: int, vertices: int, edges: int) -> bool:
        """Could some entry be a subgraph of the query (Isuper side)?"""
        if not self.rows:
            return False
        if self.min_vertices > vertices or self.min_edges > edges:
            return False
        for _, mask, entry_vertices, entry_edges in self.rows:
            if (
                not mask & ~query_mask
                and entry_vertices <= vertices
                and entry_edges <= edges
            ):
                return True
        return False


_EMPTY_SUMMARY = _PartitionSummary(())


class _InlineShardRuntime:
    """Shard replicas living in the parent process.

    Probes run serially and count on the parent's iGQ verifier directly;
    replication is synchronous (replicas catch up at the end of each
    flush), so this backend isolates the *incremental maintenance* gain —
    and is the 1-CPU fallback of ``shard_backend="auto"``.
    """

    uses_processes = False

    def __init__(self, engine: "ShardedIGQ") -> None:
        # Co-resident shards share one physical replica store: a replicate
        # record installs (and an evict removes) one trie posting set, not
        # ``num_shards`` of them.
        group = ReplicaGroup(
            engine.igq_verifier,
            compiled=engine.igq_compiled,
            enable_isub=engine.probe_isub,
            enable_isuper=engine.probe_isuper,
        )
        self.shards = [
            QueryIndexShard(
                shard_id,
                verifier=engine.igq_verifier,
                compiled=engine.igq_compiled,
                enable_isub=engine.probe_isub,
                enable_isuper=engine.probe_isuper,
                replica_group=group,
            )
            for shard_id in range(engine.num_shards)
        ]

    def probe(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        want_sub: bool,
        want_super: bool,
        directives=None,
    ) -> tuple[list[int], list[int]]:
        sub_ids: list[int] = []
        super_ids: list[int] = []
        # The query-side compiled form (plan for Isub, target for Isuper) is
        # shared across the partitions: compiled lazily by the first shard
        # that needs it, reused by the rest — exactly one compile per
        # direction per probe, like the single-shard lookup.
        sub_side: dict = {}
        super_side: dict = {}
        for shard in self.shards:
            if directives is None:
                home_sub = home_super = True
                cover_sub = cover_super = None
            else:
                directive = directives[shard.shard_id]
                if directive is None:
                    continue
                home_sub, home_super, cover_sub, cover_super = directive
            if want_sub and (home_sub or cover_sub is not None):
                sub_ids.extend(
                    shard.find_supergraph_ids(
                        query, features, sub_side, home=home_sub, cover=cover_sub
                    )
                )
            if want_super and (home_super or cover_super is not None):
                super_ids.extend(
                    shard.find_subgraph_ids(
                        query, features, super_side, home=home_super, cover=cover_super
                    )
                )
        return sub_ids, super_ids

    def sync(self, log: DeltaLog) -> None:
        for shard in self.shards:
            shard.catch_up(log)

    def progress(self) -> int:
        return min(shard.applied_version for shard in self.shards)

    def worker_kernels(self) -> dict[int, str]:
        """Kernel backend per shard — inline replicas share the parent's."""
        resolved = self.shards[0].verifier.resolved_kernel_name() if self.shards else None
        return {shard.shard_id: resolved for shard in self.shards}

    def verify_pool(self) -> ShardVerifyPool | None:
        return None

    def estimated_size_bytes(self) -> int:
        return sum(shard.estimated_size_bytes() for shard in self.shards)

    def close(self) -> None:
        """Nothing to release for in-process replicas."""


class _ProcessShardRuntime:
    """One long-lived single-worker process per shard, fed by the delta log.

    Tasks submitted to a single-worker pool execute in order, so the parent
    ships each shard the log tail it has not yet seen together with the
    next probe — no acknowledgement round-trip is needed, and a worker that
    missed several window flushes replays them before probing.  The worker
    processes double as dataset-verification workers for the batch executor
    (:meth:`verify_pool`).
    """

    uses_processes = True

    def __init__(self, engine: "ShardedIGQ") -> None:
        self._engine = engine
        self._pools: list[ProcessPoolExecutor] | None = None
        self._shipped = [0] * engine.num_shards
        self._needs_reset = [False] * engine.num_shards
        self._acquired_mode: str | None = None
        #: in-flight counts shared with the batch executor's verify pool, so
        #: chunk routing sees probe load and vice versa
        self._tracker = _PoolLoadTracker(engine.num_shards)
        #: kernel backend each shard worker reported with its last probe
        #: (kernel resolution is per process; see ``worker_kernels()``)
        self._worker_kernels: dict[int, str] = {}

    # ------------------------------------------------------------------
    def _ensure_pools(self) -> list[ProcessPoolExecutor]:
        if self._pools is None:
            engine = self._engine
            method_payload = None
            method_handle = None
            if engine.method.database is not None:
                # Mixed-mode engines precompile both verification directions
                # into the snapshot; fixed-mode ones only their own.  Publish
                # the snapshot once through shared memory so every shard
                # worker attaches to the same segment; without shared memory
                # each per-shard config carries its own pickle copy.
                method_handle = engine.method.acquire_shared_payload(mode=engine.mode)
                if method_handle is not None:
                    self._acquired_mode = engine.mode
                else:
                    method_payload = engine.method.verification_payload(mode=engine.mode)
            verifier = engine.igq_verifier.fresh_clone()
            # Stamp the parent's kernel resolution onto the shipped clone;
            # each shard worker re-resolves locally and reports its own name
            # with every probe (see _shard_probe / worker_kernels()).
            verifier.parent_resolved_kernel = engine.igq_verifier.resolved_kernel_name()
            self._pools = []
            for shard_id in range(engine.num_shards):
                payload = pickle.dumps(
                    {
                        "shard_id": shard_id,
                        "verifier": verifier,
                        "compiled": engine.igq_compiled,
                        "enable_isub": engine.probe_isub,
                        "enable_isuper": engine.probe_isuper,
                        "method_payload": method_payload,
                        "method_handle": method_handle,
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                self._pools.append(
                    ProcessPoolExecutor(
                        max_workers=1,
                        initializer=_init_shard_worker,
                        initargs=(payload,),
                    )
                )
        return self._pools

    def probe(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        want_sub: bool,
        want_super: bool,
        directives=None,
    ) -> tuple[list[int], list[int]]:
        pools = self._ensure_pools()
        log = self._engine.delta_log
        futures = []
        probed_shards: list[int] = []
        for shard_id, pool in enumerate(pools):
            reset = self._needs_reset[shard_id]
            try:
                deltas = log.since(self._shipped[shard_id], shard=shard_id)
            except DeltaLogTruncated:
                reset = True
                deltas = log.since(0, shard=shard_id)
            if directives is None:
                home_sub = home_super = True
                cover_sub = cover_super = None
            else:
                directive = directives[shard_id]
                if directive is None:
                    if not deltas and not reset:
                        # Pruned and current: skip the round-trip entirely.
                        continue
                    # Pruned but lagging: ship the log tail with a no-op
                    # probe so the replica stays current (and the log can
                    # keep compacting past its position).
                    home_sub = home_super = False
                    cover_sub = cover_super = None
                else:
                    home_sub, home_super, cover_sub, cover_super = directive
            self._shipped[shard_id] = log.version
            self._needs_reset[shard_id] = False
            self._tracker.acquire(shard_id)
            future = pool.submit(
                _shard_probe,
                deltas,
                reset,
                query,
                features,
                want_sub,
                want_super,
                home_sub,
                home_super,
                cover_sub,
                cover_super,
            )
            future.add_done_callback(
                lambda _, i=shard_id: self._tracker.release(i)
            )
            futures.append(future)
            probed_shards.append(shard_id)
        sub_ids: list[int] = []
        super_ids: list[int] = []
        stats = self._engine.igq_verifier.stats
        try:
            for shard_id, future in zip(probed_shards, futures):
                (
                    shard_sub,
                    shard_super,
                    positives,
                    negatives,
                    samples,
                    _,
                    kernel,
                ) = future.result()
                sub_ids.extend(shard_sub)
                super_ids.extend(shard_super)
                stats.tests += len(samples)
                stats.positives += positives
                stats.negatives += negatives
                stats.total_seconds += sum(samples)
                stats.per_test_seconds.extend(samples)
                self._worker_kernels[shard_id] = kernel
        except BaseException:
            # The deltas were optimistically marked shipped at submit time;
            # if any worker failed we can no longer tell which replicas
            # applied them, so force a reset-and-replay on the next probe
            # instead of silently serving from a desynced partition.
            self._shipped = [0] * self._engine.num_shards
            self._needs_reset = [True] * self._engine.num_shards
            raise
        return sub_ids, super_ids

    def sync(self, log: DeltaLog) -> None:
        """Replication is lazy: pending records ship with the next probe."""

    def progress(self) -> int:
        return min(self._shipped)

    def worker_kernels(self) -> dict[int, str]:
        """Kernel backend each shard worker last reported (by shard id).

        Empty until the first probe round-trip; thereafter one entry per
        probed worker.  A worker process that could not load the native
        library shows up as ``"bigint"`` here even when the parent resolved
        ``"native"`` — the mixed dict is the observable signal of a
        heterogeneous (and silently slower) pool.
        """
        return dict(self._worker_kernels)

    def verify_pool(self) -> ShardVerifyPool | None:
        return ShardVerifyPool(self._ensure_pools(), self._tracker)

    def pool_loads(self) -> list[int]:
        """In-flight tasks per shard pool (probes plus verify chunks)."""
        return self._tracker.snapshot()

    def estimated_size_bytes(self) -> int:
        """Replica tries live in the workers; report only parent-side state."""
        return 0

    def close(self) -> None:
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None
            self._shipped = [0] * self._engine.num_shards
            self._needs_reset = [True] * self._engine.num_shards
        if self._acquired_mode is not None:
            self._engine.method.release_shared_payload(self._acquired_mode)
            self._acquired_mode = None


class ShardedIGQ(IGQ):
    """iGQ engine whose query index is partitioned across delta-fed shards.

    Configured through :class:`~repro.core.config.EngineConfig` like the
    base engine; its ``shard`` section supplies

    ``shard.shards``:
        Number of cache partitions.  ``1`` (the default) is the A/B
        baseline: the engine behaves exactly like :class:`IGQ` — same code
        paths, no delta log.
    ``shard.backend``:
        One of :data:`SHARD_BACKENDS`.  ``"inline"`` keeps the replicas in
        the parent process (incremental delta maintenance, serial probes);
        ``"process"`` gives every shard a long-lived worker process that
        subscribes to the delta log; ``"auto"`` picks ``"process"`` when
        the machine has more than one usable CPU.
    ``shard.compact_threshold``:
        Compact the delta log down to the slowest replica's position
        whenever it exceeds this many records.  Retained insert records
        keep their compiled payloads alive until they fold, so the
        threshold bounds the engine's peak compiled-object count at
        roughly ``cache_size + compact_threshold``; it also bounds how far
        an *external* subscriber can lag before it must reset-and-replay.
        ``None`` disables automatic compaction — the log (and the evicted
        entries' payloads it retains) then grows with the stream, so only
        use it when something else calls :meth:`DeltaLog.compact`.
    ``shard.hot_threshold``:
        Hot-key replication: an entry whose probe-hit count crosses this
        threshold is replicated (a ``replicate`` delta record carrying the
        already-compiled payload) at the next flush boundary, after which
        any shard can answer for it.  Enabling it also turns on probe-side
        pruning: per-shard feature-bitmask summaries let the fan-out skip
        shards whose partition cannot contain a hit for the query, which is
        where the skewed-traffic speedup comes from on a single CPU.
        ``None`` (the default) reproduces the plain sharded engine
        byte-for-byte, delta stream included.
    ``shard.rebalance_interval``:
        Adaptive rebalancing: every this-many window flushes the engine
        compares per-shard hit-weighted loads and emits ``move`` delta
        records shifting entries from the hottest to the coldest shard
        (replicated entries are never moved).  ``None`` disables it.
    ``shard.replication_factor``:
        Number of shards (including the home shard) that hold a hot
        entry's replica.  ``None`` (the default) replicates to every
        shard.

    Hot-key replication, rebalancing and pruning only redistribute *which
    shard* runs each containment test — never whether it runs: pruning is
    keyed on the same feature-dominance and size conditions the trie filter
    and (uncounted) pre-checks apply, so the counted-test accounting,
    answers and cache state stay byte-identical to ``shards=1``.

    The historical flat kwargs (``shards=``, ``shard_backend=``,
    ``compact_threshold=``, plus :class:`IGQ`'s) remain as deprecation
    shims building the same config.  Process-backed shard pools are
    long-lived: call :meth:`close` (or use the engine as a context manager,
    or let :class:`~repro.service.GraphQueryService` own it) to terminate
    the workers deterministically.

    Whatever the configuration, answers, per-query accounting, cache
    contents and replacement metadata are byte-identical to ``shards=1``;
    the test suite asserts it and the ``bench_sharded`` CI gate enforces it
    alongside the throughput floor.
    """

    def __init__(
        self,
        method,
        config: EngineConfig | None = None,
        *,
        igq_verifier: Verifier | None = None,
        shards=_UNSET,
        shard_backend=_UNSET,
        compact_threshold=_UNSET,
        **legacy_kwargs,
    ) -> None:
        shard_overrides = {
            name: value
            for name, value in (
                ("shards", shards),
                ("backend", shard_backend),
                ("compact_threshold", compact_threshold),
            )
            if value is not _UNSET
        }
        policy_instance = None
        if config is None:
            if shard_overrides:
                mapping = ", ".join(
                    f"{legacy}= -> EngineConfig.shard.{field_name}"
                    for legacy, field_name in (
                        ("shards", "shards"),
                        ("shard_backend", "backend"),
                        ("compact_threshold", "compact_threshold"),
                    )
                    if field_name in shard_overrides
                )
                warnings.warn(
                    f"flat shard kwargs are deprecated and will be removed in "
                    f"repro 2.0; build an EngineConfig instead ({mapping})",
                    DeprecationWarning,
                    stacklevel=2,
                )
            base_config, policy_instance = _legacy_engine_config(
                legacy_kwargs, stacklevel=4
            )
            config = base_config.replace(shard=ShardConfig(**shard_overrides))
        elif shard_overrides or legacy_kwargs:
            raise ConfigError(
                "pass either config= or legacy kwargs, not both (got "
                f"{sorted(shard_overrides) + sorted(legacy_kwargs)} alongside "
                "an EngineConfig)"
            )
        super().__init__(
            method, config, igq_verifier=igq_verifier, _policy_instance=policy_instance
        )
        self.num_shards = config.shard.shards
        self.compact_threshold = config.shard.compact_threshold
        self.hot_threshold = config.shard.hot_threshold
        self.rebalance_interval = config.shard.rebalance_interval
        self.replication_factor = config.shard.replication_factor
        shard_backend = config.shard.backend
        #: which components the shard replicas serve (captured before the
        #: in-process indexes are handed over to the shards)
        self.probe_isub = self.isub is not None
        self.probe_isuper = self.isuper is not None
        self.delta_log: DeltaLog | None = None
        self.shard_runtime = None
        self._entry_shard: dict[int, int] = {}
        #: id(graph) -> (graph, shard) routing memo (see :meth:`shard_of`)
        self._shard_memo: dict[int, tuple[LabeledGraph, int]] = {}
        # ---- hot-key replication / rebalancing state (§ROADMAP skew item).
        # Initialised unconditionally so shard_stats()/reset_stats() work on
        # every configuration; the _hot/_rebalancing gates keep the default
        # configuration's behaviour (and delta stream) bit-for-bit intact.
        self._hot = self.num_shards > 1 and self.hot_threshold is not None
        self._rebalancing = (
            self.num_shards > 1 and self.rebalance_interval is not None
        )
        self._track_hits = self._hot or self._rebalancing
        #: probe-hit count per live entry (drives replication + rebalancing)
        self._probe_hits: dict[int, int] = {}
        #: entries that crossed hot_threshold since the last flush
        self._pending_hot: set[int] = set()
        #: replicated entry -> holder shards (None = every shard)
        self._replica_targets: dict[int, tuple[int, ...] | None] = {}
        #: ``id(graph) -> graph`` for graphs whose entries earned
        #: replication — their churn replacements are born hot (replicated
        #: on insert, skipping the home install/retire round-trip)
        self._hot_graphs: dict[int, LabeledGraph] = {}
        #: probes served per shard (directive granted), drives cover routing
        self._shard_probe_load = [0] * self.num_shards
        self._moves_applied = 0
        self._replicas_created = 0
        self._records_folded = 0
        self._flush_count = 0
        #: grow-only feature-key -> bit registry for the prune bitmasks;
        #: only entry-side keys get bits, so a query key missing here means
        #: no cached entry has that feature at all
        self._feature_bits: dict = {}
        self._entry_masks: dict[int, int] = {}
        self._home_summaries: list[_PartitionSummary] = [
            _EMPTY_SUMMARY for _ in range(self.num_shards)
        ]
        self._replica_summary: _PartitionSummary = _EMPTY_SUMMARY
        if self.num_shards == 1:
            # A/B baseline: exactly today's single-shard engine.
            self.shard_backend = "inline"
            self._attach_persistence()
            return
        if shard_backend == "auto":
            shard_backend = "process" if effective_cpu_count() > 1 else "inline"
        self.shard_backend = shard_backend
        # The shards own the containment structures; keeping the inherited
        # in-process indexes would double-index (and double-compile) every
        # insertion.
        self.isub = None
        self.isuper = None
        self.delta_log = DeltaLog()
        if shard_backend == "process":
            self.shard_runtime = _ProcessShardRuntime(self)
        else:
            self.shard_runtime = _InlineShardRuntime(self)
        # Deferred from the base __init__ (``_defer_persist``): a warm
        # restart needs the delta log, the runtime and the placement maps
        # above to exist before recovered state can be applied.
        self._attach_persistence()

    #: see IGQ._defer_persist — the sharded warm restart must run after
    #: the shard runtime and placement state exist
    _defer_persist = True

    # ------------------------------------------------------------------
    # Persistence state capture / restore (see :mod:`repro.persist.restore`)
    # ------------------------------------------------------------------
    def persist_state(self) -> dict:
        """Base capture plus placement, replication and rebalance state."""
        state = super().persist_state()
        if self.num_shards == 1:
            return state
        state.update(
            entry_shard=dict(self._entry_shard),
            replica_targets=dict(self._replica_targets),
            probe_hits=dict(self._probe_hits),
            pending_hot=sorted(self._pending_hot),
            shard_probe_load=list(self._shard_probe_load),
            flush_count=self._flush_count,
            moves_applied=self._moves_applied,
            replicas_created=self._replicas_created,
            records_folded=self._records_folded,
        )
        return state

    def apply_persist_state(self, entries, state: dict) -> None:
        """Warm-start: restore the cache, then rebuild shards from a fresh log.

        The recovered placement is replayed into the (empty) delta log as
        one synthetic bootstrap flush — an ``insert`` per home entry, a
        ``replicate`` per hot entry — and synced to the runtime, so every
        replica ends up exactly where the persisted engine had it, with
        freshly numbered versions consistent with the new on-disk segment.
        """
        super().apply_persist_state(entries, state)
        if self.num_shards == 1:
            return
        self._entry_shard = dict(state["entry_shard"])
        self._replica_targets = dict(state["replica_targets"])
        self._probe_hits = dict(state["probe_hits"])
        self._pending_hot = set(state["pending_hot"])
        self._shard_probe_load = list(state["shard_probe_load"])
        self._flush_count = state["flush_count"]
        self._moves_applied = state["moves_applied"]
        self._replicas_created = state["replicas_created"]
        self._records_folded = state["records_folded"]
        for entry_id in self._replica_targets:
            graph = self.cache.get(entry_id).graph
            self._hot_graphs[id(graph)] = graph
        log = self.delta_log
        for _kind, shard_entry, _targets, _meta in entries:
            entry = self.cache.get(shard_entry.entry_id)
            payload = self._make_shard_entry(entry)
            if entry.entry_id in self._replica_targets:
                log.append_replicate(
                    payload, targets=self._replica_targets[entry.entry_id]
                )
            else:
                log.append_insert(self._entry_shard[entry.entry_id], payload)
        if entries:
            log.append_flush()
            self.shard_runtime.sync(log)
        if self._hot:
            self._rebuild_prune_state()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, graph: LabeledGraph) -> int:
        """Owning shard of a query graph (stable canonical-key hash).

        Memoized by object identity: repeat-heavy streams re-insert the
        same query objects over and over, and the exact canonical form is
        by far the most expensive step of the sharded flush path.  The memo
        holds a strong reference to each keyed graph, so an ``id`` can
        never be recycled while its entry is live; the bound just caps the
        pinned memory on unbounded streams of distinct graphs.
        """
        memo = self._shard_memo
        cached = memo.get(id(graph))
        if cached is not None and cached[0] is graph:
            return cached[1]
        shard_id = shard_of_key(canonical_graph_key(graph), self.num_shards)
        if len(memo) >= 8192:
            memo.clear()
        memo[id(graph)] = (graph, shard_id)
        return shard_id

    def entry_shard(self, entry_id: int) -> int:
        """Owning shard of a live cache entry."""
        return self._entry_shard[entry_id]

    # ------------------------------------------------------------------
    # Probe fan-out (stage 2)
    # ------------------------------------------------------------------
    def _component_hits(self, query, features):
        if self.num_shards == 1:
            return super()._component_hits(query, features)
        directives = self._probe_directives(query, features) if self._hot else None
        sub_ids, super_ids = self.shard_runtime.probe(
            query, features, self.probe_isub, self.probe_isuper, directives
        )
        # Shards return their hits in local slot order; the single-shard
        # engine reports hits in cache insertion order, which (ids being
        # monotonic) is ascending entry-id order — merge back into it so
        # exact-repeat detection and crediting see the identical sequence.
        cache = self.cache
        sub_hits = [cache.get(entry_id) for entry_id in sorted(sub_ids)]
        super_hits = [cache.get(entry_id) for entry_id in sorted(super_ids)]
        if self._track_hits:
            self._note_hits(sub_hits, super_hits)
        return sub_hits, super_hits

    def _note_hits(self, sub_hits, super_hits) -> None:
        """Credit probe hits; entries crossing ``hot_threshold`` queue up
        for replication at the next flush boundary."""
        hits = self._probe_hits
        threshold = self.hot_threshold
        for entry in sub_hits + super_hits:
            entry_id = entry.entry_id
            count = hits.get(entry_id, 0) + 1
            hits[entry_id] = count
            if (
                self._hot
                and count == threshold
                and entry_id not in self._replica_targets
            ):
                self._pending_hot.add(entry_id)

    def _probe_directives(self, query, features):
        """Per-shard probe plan: pruning flags plus replica cover assignment.

        For every shard a ``(home_sub, home_super, cover_sub, cover_super)``
        tuple, or ``None`` to skip the shard outright.  Home flags come from
        the :class:`_PartitionSummary` necessary-condition tests; replicated
        entries that could match are assigned to exactly one *covering*
        shard — the least probe-loaded shard when it holds the replica, the
        entry's home shard otherwise — so every live entry is containment-
        tested by exactly one shard per probe, same as the unpruned fan-out.
        """
        num_vertices = query.num_vertices
        num_edges = query.num_edges
        bits = self._feature_bits
        query_mask = 0
        unknown = False
        for key in features.counts:
            bit = bits.get(key)
            if bit is None:
                # No cached entry anywhere has this feature, so nothing can
                # be a supergraph of the query; no bit is allocated (the
                # registry tracks entry-side keys only).
                unknown = True
            else:
                query_mask |= bit
        want_sub = self.probe_isub
        want_super = self.probe_isuper
        home_sub_flags = []
        home_super_flags = []
        for summary in self._home_summaries:
            home_sub_flags.append(
                want_sub
                and not unknown
                and summary.may_contain_super(query_mask, num_vertices, num_edges)
            )
            home_super_flags.append(
                want_super
                and summary.may_contain_sub(query_mask, num_vertices, num_edges)
            )
        cover_sub: dict[int, list[int]] = {}
        cover_super: dict[int, list[int]] = {}
        replica_rows = self._replica_summary.rows
        if replica_rows:
            sub_ids: list[int] = []
            super_ids: list[int] = []
            for entry_id, mask, entry_vertices, entry_edges in replica_rows:
                if (
                    want_sub
                    and not unknown
                    and not query_mask & ~mask
                    and entry_vertices >= num_vertices
                    and entry_edges >= num_edges
                ):
                    sub_ids.append(entry_id)
                if (
                    want_super
                    and not mask & ~query_mask
                    and entry_vertices <= num_vertices
                    and entry_edges <= num_edges
                ):
                    super_ids.append(entry_id)
            if sub_ids or super_ids:
                loads = self._shard_probe_load
                designee = min(range(self.num_shards), key=lambda s: (loads[s], s))
                for ids, cover in ((sub_ids, cover_sub), (super_ids, cover_super)):
                    for entry_id in ids:
                        targets = self._replica_targets.get(entry_id)
                        shard_id = (
                            designee
                            if targets is None or designee in targets
                            else self._entry_shard[entry_id]
                        )
                        cover.setdefault(shard_id, []).append(entry_id)
        directives = []
        for shard_id in range(self.num_shards):
            home_sub = home_sub_flags[shard_id]
            home_super = home_super_flags[shard_id]
            ids = cover_sub.get(shard_id)
            shard_cover_sub = tuple(ids) if ids is not None else None
            ids = cover_super.get(shard_id)
            shard_cover_super = tuple(ids) if ids is not None else None
            if (
                home_sub
                or home_super
                or shard_cover_sub is not None
                or shard_cover_super is not None
            ):
                directives.append(
                    (home_sub, home_super, shard_cover_sub, shard_cover_super)
                )
                self._shard_probe_load[shard_id] += 1
            else:
                directives.append(None)
        return directives

    # ------------------------------------------------------------------
    # Delta-emitting window flush (§5.2, replacing the shadow rebuild)
    # ------------------------------------------------------------------
    def _flush_window(self) -> MaintenanceReport:
        if self.num_shards == 1:
            return super()._flush_window()
        report = MaintenanceReport()
        window = self.maintenance.drain_window()
        if not window:
            report.cache_size_after = len(self.cache)
            return report
        log = self.delta_log
        victims = self.maintenance.select_evictions(self.cache, len(window))
        for entry_id in victims:
            if entry_id in self._replica_targets:
                # A replicated entry evicted while barely probed means the
                # traffic moved on — demote its graph so a later re-insert
                # starts cold (home-partitioned) again.
                if self._hot and self._probe_hits.get(entry_id, 0) < self.hot_threshold:
                    graph = self.cache.get(entry_id).graph
                    self._hot_graphs.pop(id(graph), None)
            self.cache.remove(entry_id)  # releases the parent-side payloads
            home_shard = self._entry_shard.pop(entry_id)
            if entry_id in self._replica_targets:
                # Replicated entries live on several shards (and a reset
                # subscriber may hold none of them), so the evict is a
                # targeted broadcast applied leniently.
                targets = self._replica_targets.pop(entry_id)
                log.append_evict(BROADCAST, entry_id, targets=targets)
            else:
                log.append_evict(home_shard, entry_id)
            self._probe_hits.pop(entry_id, None)
            self._pending_hot.discard(entry_id)
            self._entry_masks.pop(entry_id, None)
        report.evicted = len(victims)
        report.evicted_entry_ids = victims
        for pending in window:
            entry = self.cache.add(
                pending.graph, pending.features, pending.answer, tags=pending.tags
            )
            shard_id = self.shard_of(pending.graph)
            self._entry_shard[entry.entry_id] = shard_id
            if self._hot and self._hot_graphs.get(id(pending.graph)) is pending.graph:
                # Born hot: this graph's previous entry was replicated, so
                # the churn replacement goes straight to the replica stores
                # — no home install that the next flush would retire again.
                # (Replication choices never change answers or accounting,
                # so this is free to be a heuristic.)
                targets = self._replication_targets_for(entry.entry_id)
                log.append_replicate(self._make_shard_entry(entry), targets=targets)
                self._replica_targets[entry.entry_id] = targets
                self._replicas_created += 1
            else:
                log.append_insert(shard_id, self._make_shard_entry(entry))
            report.inserted += 1
        if self._hot and self._pending_hot:
            for entry_id in sorted(self._pending_hot):
                entry = self.cache.get(entry_id)
                targets = self._replication_targets_for(entry_id)
                log.append_replicate(self._make_shard_entry(entry), targets=targets)
                self._replica_targets[entry_id] = targets
                self._replicas_created += 1
                if len(self._hot_graphs) >= 8192:
                    self._hot_graphs.clear()
                self._hot_graphs[id(entry.graph)] = entry.graph
            self._pending_hot.clear()
        self._flush_count += 1
        if self._rebalancing and self._flush_count % self.rebalance_interval == 0:
            self._moves_applied += self._rebalance(log)
        log.append_flush()
        # Persist before compaction: the durable batch needs the raw tail,
        # and the compaction floor never passes what was just persisted.
        self._persist_flush()
        self.shard_runtime.sync(log)
        if self.compact_threshold is not None and len(log) > self.compact_threshold:
            self._records_folded += log.compact(self.shard_runtime.progress())
        if self._hot:
            self._rebuild_prune_state()
        report.cache_size_after = len(self.cache)
        return report

    def _replication_targets_for(self, entry_id: int) -> tuple[int, ...] | None:
        """Holder shards for a newly hot entry (None = every shard)."""
        factor = self.replication_factor
        if factor is None:
            return None
        home_shard = self._entry_shard[entry_id]
        return tuple(
            sorted((home_shard + offset) % self.num_shards for offset in range(factor))
        )

    def _rebalance(self, log: DeltaLog) -> int:
        """Shift entries from the hottest shard to the coldest (§ROADMAP).

        Loads are hit-weighted entry counts (``1 + probe hits``, so cold
        entries still count for placement).  Each step moves the lightest
        entry off the hottest shard, but only while that strictly narrows
        the hot/cold gap; replicated entries are never moved (every shard
        already holds them).  Emits one ``move`` record per relocation —
        applied by the shards at this flush boundary like any other delta —
        and is capped at one window's worth of moves per rebalance so a
        pathological skew cannot stall the flush.
        """
        weights: list[dict[int, int]] = [{} for _ in range(self.num_shards)]
        for entry_id, shard_id in self._entry_shard.items():
            if entry_id in self._replica_targets:
                continue
            weights[shard_id][entry_id] = 1 + self._probe_hits.get(entry_id, 0)
        loads = [sum(shard_weights.values()) for shard_weights in weights]
        moves = 0
        max_moves = self.maintenance.window_size
        while moves < max_moves:
            hottest = max(range(self.num_shards), key=lambda s: (loads[s], -s))
            coldest = min(range(self.num_shards), key=lambda s: (loads[s], s))
            gap = loads[hottest] - loads[coldest]
            if gap <= 0 or not weights[hottest]:
                break
            entry_id, weight = min(
                weights[hottest].items(), key=lambda item: (item[1], item[0])
            )
            if weight >= gap:
                break
            log.append_move(
                self._make_shard_entry(self.cache.get(entry_id)),
                src_shard=hottest,
                dst_shard=coldest,
            )
            del weights[hottest][entry_id]
            weights[coldest][entry_id] = weight
            loads[hottest] -= weight
            loads[coldest] += weight
            self._entry_shard[entry_id] = coldest
            moves += 1
        return moves

    def _entry_mask_of(self, entry: CacheEntry) -> int:
        """Feature bitmask of a live entry (memoized; allocates new bits)."""
        mask = self._entry_masks.get(entry.entry_id)
        if mask is None:
            bits = self._feature_bits
            mask = 0
            for key in entry.features.counts:
                bit = bits.get(key)
                if bit is None:
                    bit = 1 << len(bits)
                    bits[key] = bit
                mask |= bit
            self._entry_masks[entry.entry_id] = mask
        return mask

    def _rebuild_prune_state(self) -> None:
        """Recompute the per-shard prune summaries after a flush."""
        per_shard: list[list[tuple[int, int, int, int]]] = [
            [] for _ in range(self.num_shards)
        ]
        replica_rows: list[tuple[int, int, int, int]] = []
        for entry_id in sorted(self._entry_shard):
            entry = self.cache.get(entry_id)
            row = (
                entry_id,
                self._entry_mask_of(entry),
                entry.graph.num_vertices,
                entry.graph.num_edges,
            )
            if entry_id in self._replica_targets:
                replica_rows.append(row)
            else:
                per_shard[self._entry_shard[entry_id]].append(row)
        self._home_summaries = [_PartitionSummary(rows) for rows in per_shard]
        self._replica_summary = _PartitionSummary(replica_rows)

    def _make_shard_entry(self, entry: CacheEntry) -> ShardEntry:
        """Build the replica payload, compiling each direction exactly once.

        Compilation happens here — in the parent, when the entry enters the
        log — for the same reason the single-shard indexes compile on
        insertion: the entry will be containment-tested against every
        future query.  The compiled objects are stored on the cache entry
        too (released on eviction), so no shard ever recompiles them.
        """
        if self.igq_compiled and self.igq_verifier.supports_compiled():
            if self.probe_isub and entry.compiled_target is None:
                entry.compiled_target = compile_target(entry.graph)
            if self.probe_isuper and entry.compiled_plan is None:
                entry.compiled_plan = compile_query_plan(entry.graph)
        return ShardEntry(
            entry_id=entry.entry_id,
            graph=entry.graph,
            features=entry.features,
            compiled_target=entry.compiled_target,
            compiled_plan=entry.compiled_plan,
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def index_size_bytes(self) -> int:
        """Estimated bytes of the query index including shard structures."""
        # With shards>1 the inherited isub/isuper are None, so the parent
        # implementation contributes exactly the cached-graph/answer bytes;
        # the shard structures are added on top.
        total = super().index_size_bytes()
        if self.num_shards > 1:
            total += self.shard_runtime.estimated_size_bytes()
        return total

    def shard_balance(self) -> list[int]:
        """Live cache entries per shard (service introspection).

        A heavily skewed balance on a Zipf workload is the signal the
        ROADMAP's hot-key-replication item exists to address.
        """
        counts = [0] * self.num_shards
        if self.num_shards == 1:
            counts[0] = len(self.cache)
        else:
            for shard_id in self._entry_shard.values():
                counts[shard_id] += 1
        return counts

    def replica_counts(self) -> list[int]:
        """Replicated entries held per shard (home copies excluded).

        A fully replicated entry (``replication_factor=None``) counts once
        on every shard; a factor-``r`` entry once on each of its ``r``
        holders.  ``shard_balance`` keeps attributing the entry to its
        nominal home shard, so the two views are complementary.
        """
        counts = [0] * self.num_shards
        for targets in self._replica_targets.values():
            holders = range(self.num_shards) if targets is None else targets
            for shard_id in holders:
                counts[shard_id] += 1
        return counts

    def shard_stats(self) -> dict:
        """Hot-key/rebalance and delta-log health snapshot (service layer)."""
        log = self.delta_log
        return {
            "probe_load": list(self._shard_probe_load),
            "replica_counts": self.replica_counts(),
            "replicas_live": len(self._replica_targets),
            "replicas_created": self._replicas_created,
            "moves_applied": self._moves_applied,
            "worker_kernels": (
                self.shard_runtime.worker_kernels()
                if self.shard_runtime is not None
                else {}
            ),
            "delta_log": {
                "length": len(log) if log is not None else 0,
                "version": log.version if log is not None else 0,
                "floor_version": log.floor_version if log is not None else 0,
                "records_folded": self._records_folded,
                "bytes_reclaimed": (
                    log.compact_stats()["bytes_reclaimed"] if log is not None else 0
                ),
            },
        }

    def reset_stats(self) -> None:
        """Zero the probe-hit counters and per-shard load statistics.

        Replicas stay replicated and moved entries stay put — this resets
        the *inputs* to future replication/rebalancing decisions (e.g. at a
        workload phase change), not the placement they already produced.
        Pending not-yet-flushed hot entries are requeued from scratch too.
        """
        self._probe_hits.clear()
        self._pending_hot.clear()
        self._shard_probe_load = [0] * self.num_shards
        self._moves_applied = 0
        self._replicas_created = 0
        self._records_folded = 0

    def close(self) -> None:
        """Shut down the shard runtime (worker pools); idempotent.

        Order matters: the durable store flushes and fsyncs its WAL tail
        *before* the pools go down (a close must never lose a persisted
        flush to teardown), then the runtime releases its reference on the
        published snapshot segment, then the base class force-unlinks
        whatever shared-memory is left (see
        :meth:`repro.core.engine.IGQ.close`).
        """
        self._close_persister()
        if self.shard_runtime is not None:
            self.shard_runtime.close()
        super().close()

    def __repr__(self) -> str:
        return (
            f"<ShardedIGQ method={self.method.name!r} mode={self.mode!r} "
            f"shards={self.num_shards} backend={self.shard_backend!r} "
            f"cached={len(self.cache)}>"
        )
