"""Unified compiled containment layer for the iGQ query indexes.

The two component indexes — ``Isub`` (:mod:`repro.core.isub`) and ``Isuper``
(:mod:`repro.core.isuper`) — answer mirror-image containment questions over
the *same* store of cached query graphs, and before this layer existed they
were near-duplicate trie-plus-verify loops that rebuilt dict-based VF2 state
for every ``(new query, cached query)`` pair.  :class:`ContainmentIndex`
factors out everything the two directions share:

* **lifecycle** — a :class:`~repro.features.trie.FeatureTrie` over the cached
  queries' features, the entry store, and dense bit positions
  (:class:`~repro.graphs.bitset.DensePositions`) for candidate bitmasks,
  with ``add`` / ``remove`` / ``rebuild`` maintained in one place;
* **compilation on insertion** — the whole point of the iGQ cache is that a
  cached query is containment-tested against *every* new query until it is
  evicted, so the per-entry side of the compiled kernel
  (:mod:`repro.isomorphism.compiled`) is built exactly once, when the entry
  enters an index: ``Isub`` compiles the cached graph as a
  :class:`CompiledTarget` (the new query is the pattern), ``Isuper`` compiles
  it as a :class:`CompiledQueryPlan` (the cached query is the pattern, run
  against the new query compiled once per lookup as the target).  The
  compiled objects live on the :class:`~repro.core.cache.CacheEntry` itself,
  so shadow rebuilds re-use them and eviction releases them;
* **verification dispatch** — one loop over the surviving candidates that
  applies the size pre-checks and routes each pair through the compiled
  bitset kernel (with its signature pre-reject) or, when the verifier is
  configured for the dict-based path (``compiled=False`` — the A/B
  baseline), through :meth:`Verifier.is_subgraph` exactly as before.  Both
  routes count one test per pair, so the paper's metrics are
  path-independent.

The subclasses only keep what is genuinely direction-specific: the candidate
*filtering* rule (feature-dominance for ``Isub``; Algorithm 2's occurrence
tallying for ``Isuper``) and ``Isuper``'s ``NF[g_i]`` bookkeeping.
"""

from __future__ import annotations

from ..features.trie import FeatureTrie
from ..graphs.bitset import DensePositions
from ..graphs.graph import LabeledGraph
from ..isomorphism.compiled import compile_query_plan, compile_target
from ..isomorphism.verifier import Verifier
from .cache import CacheEntry, QueryCache

__all__ = ["ContainmentIndex"]


class ContainmentIndex:
    """Shared machinery of the two iGQ containment (component) indexes.

    Parameters
    ----------
    verifier:
        The verifier used for the (small) query-vs-query containment tests;
        kept separate from the base method's verifier so the paper's "number
        of subgraph isomorphism tests" metric (tests against dataset graphs)
        is not polluted.
    compiled:
        A/B flag for the compiled containment path (default on).  The
        effective dispatch also requires the verifier to admit the kernel
        (``verifier.supports_compiled()``), so ``compiled=False`` here or
        ``Verifier(compiled=False)`` both restore the dict-based matcher.
    lite:
        Skip the feature trie.  A lite index stores entries and compiled
        state but no posting lists, so ``add``/``remove`` are O(1) instead
        of O(features) — and every lookup runs the per-entry dominance
        check (equivalent to the trie filter, see the ``restrict_ids``
        paths of the subclasses) over all entries.  Right for small stores
        whose lookups are always restricted anyway, such as the sharded
        runtime's replica stores: a replicate record then installs in
        constant time.
    """

    #: does the cached entry play the *target* role in this direction
    #: (``Isub``: new query ⊆ cached graph) or the *pattern* role
    #: (``Isuper``: cached graph ⊆ new query)?
    entry_is_target: bool = True

    def __init__(
        self,
        verifier: Verifier | None = None,
        compiled: bool = True,
        lite: bool = False,
    ) -> None:
        self.verifier = verifier if verifier is not None else Verifier()
        self.compiled = compiled
        self.lite = lite
        self._trie = FeatureTrie()
        self._entries: dict[int, CacheEntry] = {}
        #: dense bit positions for candidate bitmasks (raw entry ids are
        #: monotonic, so masks keyed by them would grow without bound)
        self._slots = DensePositions()
        #: feature keys inserted per entry, so removal walks only the
        #: entry's own keys instead of the whole trie — this is what makes
        #: delta-applied (incremental) maintenance cheaper than a rebuild
        self._feature_keys: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, entry: CacheEntry) -> None:
        """Index a cached query entry, compiling its kernel-side state.

        Compilation happens here — on insertion — because the entry will be
        containment-tested against every incoming query until it is evicted;
        an entry that already carries compiled state (a shadow rebuild
        re-adding surviving entries) keeps it.
        """
        self._entries[entry.entry_id] = entry
        self._slots.add(entry.entry_id)
        if not self.lite:
            keys = tuple(entry.features.counts)
            self._feature_keys[entry.entry_id] = keys
            counts = entry.features.counts
            for key in keys:
                self._trie.insert(key, entry.entry_id, counts[key])
        if self.use_compiled():
            self._compile_entry(entry)
        self._entry_added(entry)

    def remove(self, entry_id: int) -> None:
        """Remove a cached query entry, releasing its compiled state."""
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            return
        self._slots.remove(entry_id)
        for key in self._feature_keys.pop(entry_id, ()):
            self._trie.remove_posting(key, entry_id)
        self._release_entry(entry)
        self._entry_removed(entry_id)

    def rebuild(self, cache: QueryCache) -> None:
        """Rebuild from scratch over the current contents of ``cache``.

        This is the "shadow index" construction of §5.2: the caller builds a
        fresh index and swaps it in, so queries keep being served while the
        rebuild is in progress.  Entries surviving the rebuild keep their
        compiled state (it depends only on the entry's immutable graph).

        Entries that were indexed here but are no longer in ``cache`` are
        dropped by the rebuild; their compiled state for *this* direction is
        released explicitly — entries evicted through
        :meth:`~repro.core.cache.QueryCache.remove` were already released
        (releasing again is a no-op), but a rebuild against a cache that
        dropped entries some other way must not strand compiled payloads on
        the unreachable entry objects.
        """
        dropped = [
            entry for entry_id, entry in self._entries.items() if entry_id not in cache
        ]
        self._trie = FeatureTrie()
        self._entries = {}
        self._slots.reset()
        self._feature_keys = {}
        self._store_reset()
        for entry in cache.entries():
            self.add(entry)
        for entry in dropped:
            self._release_entry(entry)

    # ------------------------------------------------------------------
    # Direction-specific hooks
    # ------------------------------------------------------------------
    def _entry_added(self, entry: CacheEntry) -> None:
        """Extra per-entry bookkeeping of a subclass (default: none)."""

    def _entry_removed(self, entry_id: int) -> None:
        """Undo a subclass's extra per-entry bookkeeping (default: none)."""

    def _store_reset(self) -> None:
        """Reset a subclass's extra stores for a shadow rebuild."""

    # ------------------------------------------------------------------
    # Compiled-state lifecycle
    # ------------------------------------------------------------------
    def use_compiled(self) -> bool:
        """True when containment tests dispatch to the compiled kernel."""
        return self.compiled and self.verifier.supports_compiled()

    def _compile_entry(self, entry: CacheEntry) -> None:
        if self.entry_is_target:
            if entry.compiled_target is None:
                entry.compiled_target = compile_target(entry.graph)
        elif entry.compiled_plan is None:
            entry.compiled_plan = compile_query_plan(entry.graph)

    def _release_entry(self, entry: CacheEntry) -> None:
        if self.entry_is_target:
            entry.release_compiled_target()
        else:
            entry.release_compiled_plan()

    # ------------------------------------------------------------------
    # Verification dispatch
    # ------------------------------------------------------------------
    def _verified_hits(
        self,
        query: LabeledGraph,
        candidate_mask: int,
        query_side_cache: dict | None = None,
    ) -> list[CacheEntry]:
        """Verify the candidates of ``candidate_mask`` against ``query``.

        Applies the direction's size pre-checks (not counted as tests, as
        before), then one counted containment test per surviving pair —
        through the compiled kernel when enabled, through the graph-based
        matcher otherwise.  The query-side compiled representation (plan for
        ``Isub``, target for ``Isuper``) is built lazily on the first pair
        and shared by the whole lookup; a caller probing several same-
        direction indexes for one query (the sharded runtime) passes a
        ``query_side_cache`` dict so the compile happens once across all of
        them.  (The dataset verification stage compiles the same query's
        plan again in its own layer; that duplicate is one O(|query|)
        compile per query — microseconds — and threading the object across
        the method interface is not worth the coupling.)
        """
        verifier = self.verifier
        compiled = self.use_compiled()
        query_num_vertices = query.num_vertices
        query_num_edges = query.num_edges
        entry_is_target = self.entry_is_target
        query_side = (
            query_side_cache.get("query_side") if query_side_cache is not None else None
        )
        results = []
        for entry_id in self._slots.keys_of(candidate_mask):
            entry = self._entries[entry_id]
            graph = entry.graph
            if entry_is_target:
                if graph.num_vertices < query_num_vertices:
                    continue
                if graph.num_edges < query_num_edges:
                    continue
            else:
                if graph.num_vertices > query_num_vertices:
                    continue
                if graph.num_edges > query_num_edges:
                    continue
            if compiled:
                if entry_is_target:
                    if query_side is None:
                        query_side = compile_query_plan(query)
                        if query_side_cache is not None:
                            query_side_cache["query_side"] = query_side
                    target = entry.compiled_target
                    if target is None:
                        # Entry indexed while the compiled path was off (an
                        # A/B toggle mid-stream); compile-and-cache now.
                        target = compile_target(graph)
                        entry.compiled_target = target
                    matched = verifier.is_subgraph_compiled(query_side, target)
                else:
                    if query_side is None:
                        query_side = compile_target(query)
                        if query_side_cache is not None:
                            query_side_cache["query_side"] = query_side
                    plan = entry.compiled_plan
                    if plan is None:
                        plan = compile_query_plan(graph)
                        entry.compiled_plan = plan
                    matched = verifier.is_subgraph_compiled(plan, query_side)
            elif entry_is_target:
                matched = verifier.is_subgraph(query, graph)
            else:
                matched = verifier.is_subgraph(graph, query)
            if matched:
                results.append(entry)
        return results

    def _full_mask(self) -> int:
        """Mask covering every indexed entry."""
        slots = self._slots
        mask = 0
        for entry_id in self._entries:
            mask |= slots.bit(entry_id)
        return mask

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def estimated_size_bytes(self) -> int:
        """Approximate in-memory size of the index structure (Figure 18).

        The compiled per-entry state is a performance cache, excluded here
        for parity with the dataset-side compiled caches (which Figure 18's
        index-size comparison also excludes).
        """
        return self._trie.estimated_size_bytes()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} entries={len(self._entries)} compiled={self.use_compiled()}>"
