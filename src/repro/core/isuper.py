"""The iGQ supergraph component ``Isuper`` (§4.2.2 and §6.2, Algorithms 1–2).

``Isuper`` answers the question: *which previously executed queries are
subgraphs of the new query g?*  The paper proposes a purpose-built structure
instead of reusing a general supergraph-query method:

* **Algorithm 1** — every cached query ``g_i`` is decomposed into its
  features; each feature ``f`` is inserted into a trie together with the pair
  ``{g_i, o}`` where ``o`` is the number of occurrences of ``f`` in ``g_i``;
  the number of distinct features ``NF[g_i]`` is recorded.
* **Algorithm 2** — for a new query ``g``, every feature ``f`` of ``g`` is
  looked up; a cached query ``g_i`` is tallied once for every feature whose
  occurrence count in ``g_i`` does not exceed the count in ``g``; cached
  queries tallied exactly ``NF[g_i]`` times are candidate subgraphs of ``g``
  and are verified with a subgraph isomorphism test.

The candidate generation cannot miss a true subgraph (no false negatives) and
the final verification removes all false positives, establishing formula (2).

The lifecycle and verification machinery is shared with ``Isub`` through
:class:`~repro.core.containment.ContainmentIndex`: here the cached queries
play the *pattern* role, so each entry carries a ``CompiledQueryPlan``
compiled on insertion and the new query is compiled once per lookup as the
target.
"""

from __future__ import annotations

from collections import Counter

from ..features.extractor import GraphFeatures
from ..graphs.graph import LabeledGraph
from .cache import CacheEntry
from .containment import ContainmentIndex

__all__ = ["SupergraphQueryIndex"]


class SupergraphQueryIndex(ContainmentIndex):
    """Index of cached queries supporting "is a cached query a subgraph of g?"."""

    entry_is_target = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: NF[g_i] — number of distinct features of each indexed query
        self._num_features: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Maintenance (Algorithm 1) — extra NF bookkeeping on top of the shared
    # ContainmentIndex lifecycle
    # ------------------------------------------------------------------
    def _entry_added(self, entry: CacheEntry) -> None:
        self._num_features[entry.entry_id] = entry.features.num_distinct

    def _entry_removed(self, entry_id: int) -> None:
        del self._num_features[entry_id]

    def _store_reset(self) -> None:
        self._num_features = {}

    # ------------------------------------------------------------------
    # Query (Algorithm 2)
    # ------------------------------------------------------------------
    def candidate_subgraphs(self, features: GraphFeatures) -> list[int]:
        """Candidate cached-entry ids that may be subgraphs of the new query.

        Pure filtering step of Algorithm 2 (no isomorphism testing), exposed
        separately so that its no-false-negative property can be tested in
        isolation.
        """
        tally: Counter = Counter()
        for key, available in features.counts.items():
            postings = self._trie.get(key)
            for entry_id, occurrences in postings.items():
                if occurrences <= available:
                    tally[entry_id] += 1
        return [
            entry_id
            for entry_id, count in tally.items()
            if count == self._num_features[entry_id]
        ]

    def candidate_mask(self, features: GraphFeatures) -> int:
        """Bitmask (over dense entry positions) of :meth:`candidate_subgraphs`."""
        mask = 0
        for entry_id in self.candidate_subgraphs(features):
            mask |= self._slots.bit(entry_id)
        return mask

    def find_subgraphs(
        self,
        query: LabeledGraph,
        features: GraphFeatures,
        query_side_cache: dict | None = None,
        restrict_ids=None,
    ) -> list[CacheEntry]:
        """Return the cached entries ``G`` with ``G ⊆ query`` (``Isuper(g)``).

        ``query_side_cache`` lets a sharded probe share the query's compiled
        target across several index partitions; ``restrict_ids`` limits the
        lookup to a subset of the indexed entries (the sharded runtime's
        per-probe replica assignment).
        """
        if not self._entries:
            return []
        if restrict_ids is None and self.lite:
            # A lite index has no trie for Algorithm 2's tallying; the
            # per-entry check below is its (equivalent) filtering path.
            restrict_ids = tuple(self._entries)
        if restrict_ids is not None:
            # Small explicit candidate set: Algorithm 2's tally condition
            # (``tally == NF[g_i]``) holds exactly when every feature of the
            # cached query occurs in ``g`` at least as often, which is
            # checkable per entry from its own feature counts — no posting
            # walk, O(|restrict_ids| x entry features).
            available = features.counts
            slots = self._slots
            mask = 0
            for entry_id in restrict_ids:
                entry = self._entries.get(entry_id)
                if entry is None:
                    continue
                for key, occurrences in entry.features.counts.items():
                    if available.get(key, 0) < occurrences:
                        break
                else:
                    mask |= slots.bit(entry_id)
            if not mask:
                return []
            return self._verified_hits(query, mask, query_side_cache)
        mask = self.candidate_mask(features)
        return self._verified_hits(query, mask, query_side_cache)

    # ------------------------------------------------------------------
    def num_features(self, entry_id: int) -> int:
        """``NF[g_i]`` — distinct feature count of an indexed entry."""
        return self._num_features[entry_id]

    def estimated_size_bytes(self) -> int:
        """Approximate in-memory size of the index structure (Figure 18)."""
        return super().estimated_size_bytes() + 40 * len(self._num_features)
