"""The iGQ supergraph component ``Isuper`` (§4.2.2 and §6.2, Algorithms 1–2).

``Isuper`` answers the question: *which previously executed queries are
subgraphs of the new query g?*  The paper proposes a purpose-built structure
instead of reusing a general supergraph-query method:

* **Algorithm 1** — every cached query ``g_i`` is decomposed into its
  features; each feature ``f`` is inserted into a trie together with the pair
  ``{g_i, o}`` where ``o`` is the number of occurrences of ``f`` in ``g_i``;
  the number of distinct features ``NF[g_i]`` is recorded.
* **Algorithm 2** — for a new query ``g``, every feature ``f`` of ``g`` is
  looked up; a cached query ``g_i`` is tallied once for every feature whose
  occurrence count in ``g_i`` does not exceed the count in ``g``; cached
  queries tallied exactly ``NF[g_i]`` times are candidate subgraphs of ``g``
  and are verified with a subgraph isomorphism test.

The candidate generation cannot miss a true subgraph (no false negatives) and
the final verification removes all false positives, establishing formula (2).
"""

from __future__ import annotations

from collections import Counter

from ..features.extractor import GraphFeatures
from ..features.trie import FeatureTrie
from ..graphs.bitset import DensePositions
from ..graphs.graph import LabeledGraph
from ..isomorphism.verifier import Verifier
from .cache import CacheEntry, QueryCache

__all__ = ["SupergraphQueryIndex"]


class SupergraphQueryIndex:
    """Index of cached queries supporting "is a cached query a subgraph of g?"."""

    def __init__(self, verifier: Verifier | None = None) -> None:
        self.verifier = verifier if verifier is not None else Verifier()
        self._trie = FeatureTrie()
        self._entries: dict[int, CacheEntry] = {}
        #: NF[g_i] — number of distinct features of each indexed query
        self._num_features: dict[int, int] = {}
        #: dense bit positions for candidate bitmasks (see SubgraphQueryIndex)
        self._slots = DensePositions()

    # ------------------------------------------------------------------
    # Maintenance (Algorithm 1)
    # ------------------------------------------------------------------
    def add(self, entry: CacheEntry) -> None:
        """Index a cached query entry (one iteration of Algorithm 1's loop)."""
        self._entries[entry.entry_id] = entry
        self._num_features[entry.entry_id] = entry.features.num_distinct
        self._slots.add(entry.entry_id)
        for key, count in entry.features.counts.items():
            self._trie.insert(key, entry.entry_id, count)

    def remove(self, entry_id: int) -> None:
        """Remove a cached query entry from the index."""
        if entry_id in self._entries:
            del self._entries[entry_id]
            del self._num_features[entry_id]
            self._slots.remove(entry_id)
            self._trie.remove_graph(entry_id)

    def rebuild(self, cache: QueryCache) -> None:
        """Rebuild from scratch over the current contents of ``cache``."""
        self._trie = FeatureTrie()
        self._entries = {}
        self._num_features = {}
        self._slots.reset()
        for entry in cache.entries():
            self.add(entry)

    # ------------------------------------------------------------------
    # Query (Algorithm 2)
    # ------------------------------------------------------------------
    def candidate_subgraphs(self, features: GraphFeatures) -> list[int]:
        """Candidate cached-entry ids that may be subgraphs of the new query.

        Pure filtering step of Algorithm 2 (no isomorphism testing), exposed
        separately so that its no-false-negative property can be tested in
        isolation.
        """
        tally: Counter = Counter()
        for key, available in features.counts.items():
            postings = self._trie.get(key)
            for entry_id, occurrences in postings.items():
                if occurrences <= available:
                    tally[entry_id] += 1
        return [
            entry_id
            for entry_id, count in tally.items()
            if count == self._num_features[entry_id]
        ]

    def candidate_mask(self, features: GraphFeatures) -> int:
        """Bitmask (over dense entry positions) of :meth:`candidate_subgraphs`."""
        mask = 0
        for entry_id in self.candidate_subgraphs(features):
            mask |= self._slots.bit(entry_id)
        return mask

    def find_subgraphs(
        self, query: LabeledGraph, features: GraphFeatures
    ) -> list[CacheEntry]:
        """Return the cached entries ``G`` with ``G ⊆ query`` (``Isuper(g)``)."""
        if not self._entries:
            return []
        results = []
        for entry_id in self._slots.keys_of(self.candidate_mask(features)):
            entry = self._entries[entry_id]
            if entry.graph.num_vertices > query.num_vertices:
                continue
            if entry.graph.num_edges > query.num_edges:
                continue
            if self.verifier.is_subgraph(entry.graph, query):
                results.append(entry)
        return results

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def num_features(self, entry_id: int) -> int:
        """``NF[g_i]`` — distinct feature count of an indexed entry."""
        return self._num_features[entry_id]

    def estimated_size_bytes(self) -> int:
        """Approximate in-memory size of the index structure (Figure 18)."""
        return self._trie.estimated_size_bytes() + 40 * len(self._num_features)
