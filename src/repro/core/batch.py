"""Batched (and optionally parallel) query execution.

The sequential engine processes one query at a time: extract features,
filter, prune with the iGQ components, verify, maintain the cache.  Under
load two of those stages dominate and neither needs to be sequential:

* **verification** — the surviving candidates of one query are independent
  isomorphism tests, so :class:`BatchExecutor` fans them out to a
  :mod:`concurrent.futures` worker pool (processes by default — the tests
  are pure-Python CPU work);
* **feature extraction** — real workloads repeat query fragments heavily
  (that is the premise of the paper), so extraction is memoised across the
  batch: a repeated query is canonicalised and hashed once, and the memo is
  keyed by an exact *canonical form*, so isomorphic (relabeled) repeats hit
  it too;
* **planning** — while query *i*'s candidates verify on the pool, the
  executor already plans query *i+1* (base-method filtering plus the two iGQ
  component lookups).  Planning's only state mutation — the §5.1 metadata
  credit for hit cache entries — is deferred until query *i* has completed,
  and a speculative plan is discarded and redone whenever completing query
  *i* flushed the query window (the one event that can change what planning
  would have seen), so the overlap is invisible to the engine's semantics.

Everything stateful — cache hits, window maintenance, replacement metadata —
is still applied strictly in input order.  As a consequence the executor is
*deterministic*: for any worker count, with or without pipelining, the
answers, the per-query accounting and the engine's cache state after the
batch are identical to the plain sequential loop, which is what the test
suite asserts and what lets every future performance PR be gated on the
sequential path as ground truth.
"""

from __future__ import annotations

import copy
import os
import pickle
import time
from collections.abc import Hashable, Iterable, Iterator
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..features.canonical import canonical_graph_key, exact_graph_signature
from ..features.extractor import GraphFeatures
from ..graphs.graph import LabeledGraph
from ..methods.base import QueryResult, SubgraphQueryMethod
from .config import (
    MIXED_MODE,
    SUBGRAPH_MODE,
    SUPERGRAPH_MODE,
    BatchConfig,
    validate_query_mode,
)
from .engine import IGQ, IGQQueryResult, QueryPlan

__all__ = [
    "ABORTED",
    "BACKENDS",
    "DRAIN",
    "BatchStats",
    "FeatureMemo",
    "BatchExecutor",
    "default_num_workers",
    "effective_cpu_count",
    "graph_signature",
]


class _Drain:
    """Sentinel stream item: "no query is ready — finish what is in flight".

    Emitted by live task sources (the :class:`~repro.service.GraphQueryService`
    queue) between a dispatched query and the next submission, so the
    pipelined executor completes the outstanding query instead of blocking a
    caller's future on a successor that may never arrive.  Harmless in batch
    streams: the sequential path skips it outright.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DRAIN>"


DRAIN = _Drain()


class _Aborted:
    """Sentinel result: a stream item's abort hook fired before execution.

    Stream items may carry a third element — a zero-argument ``abort``
    callable (the service passes the task future's ``done`` method).  The
    executor calls it at the last moment before engine work starts; a truthy
    return skips the query entirely (no planning, no cache writes, no stats)
    and this sentinel is yielded in the item's position so a live driver can
    keep its pending-task bookkeeping aligned with the result stream.  This
    is what makes a timed-out-but-not-yet-executed submission free: the
    engine never spends a verification on a future nobody can observe.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ABORTED>"


ABORTED = _Aborted()

#: accepted ``backend`` values; ``"auto"`` resolves to ``"process"`` when
#: more than one worker is requested *and* the machine can actually run them
#: (see :func:`effective_cpu_count`), and to ``"sequential"`` otherwise
BACKENDS = ("auto", "sequential", "thread", "process")


def _cgroup_cpu_quota() -> int | None:
    """CPU limit from a cgroup-v2 quota (``docker --cpus=N``), if any."""
    try:
        with open("/sys/fs/cgroup/cpu.max", encoding="ascii") as handle:
            quota, _, period = handle.read().partition(" ")
        if quota.strip() == "max":
            return None
        return max(1, int(int(quota) / int(period)))
    except (OSError, ValueError):
        return None


def effective_cpu_count() -> int:
    """CPUs this process may actually use.

    Honours both the scheduler affinity mask and (on cgroup-v2 systems) a
    CPU quota — a ``--cpus=1`` container on an 8-core host reports 1, so
    the ``auto`` backend does not spawn a pool the kernel would serialise.
    """
    count = os.cpu_count() or 1
    if hasattr(os, "sched_getaffinity"):
        try:
            count = len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    quota = _cgroup_cpu_quota()
    if quota is not None:
        count = min(count, quota)
    return count

#: below this many surviving candidates a parallel round-trip costs more
#: than it saves, so the executor verifies in-process
_MIN_PARALLEL_CANDIDATES = 4


def graph_signature(graph: LabeledGraph) -> tuple:
    """A hashable, exact signature of a labeled graph.

    Two graphs with the same vertex ids, labels and edges share the
    signature; workload generators emit repeated queries as structural
    copies, which is precisely what the batch feature memo needs to catch.
    Delegates to :func:`repro.features.canonical.exact_graph_signature`
    (kept as an alias here because it predates the canonical-key work).
    """
    return exact_graph_signature(graph)


@dataclass
class BatchStats:
    """Counters accumulated by one :class:`BatchExecutor`."""

    queries: int = 0
    feature_memo_hits: int = 0
    feature_memo_misses: int = 0
    parallel_verifications: int = 0
    sequential_verifications: int = 0
    chunks_dispatched: int = 0
    #: queries whose planning overlapped the previous query's verification
    pipelined_plans: int = 0
    #: speculative plans discarded because the previous query's completion
    #: flushed the query window (the plan is simply recomputed)
    pipeline_replans: int = 0
    #: kernel backend each worker actually resolved, folded back per chunk
    #: (name -> chunk count).  Kernel resolution is per process, so a worker
    #: that could not load the native library quietly runs ``"bigint"``
    #: while its parent runs ``"native"`` — this counter is how that
    #: divergence becomes visible (see ``ServiceReport.kernel_resolved``).
    worker_kernels: dict = field(default_factory=dict)


class FeatureMemo:
    """Batch-wide memo of extracted query features.

    Two-level lookup: the exact graph signature catches structural copies
    (what workload generators emit for repeated queries) without paying for
    canonicalisation, and the canonical-form key from
    :func:`repro.features.canonical.canonical_graph_key` additionally
    catches *isomorphic* (relabeled) repeats — feature counts are
    isomorphism-invariant, so the memoised record is exact for every member
    of the isomorphism class.
    """

    def __init__(self, extractor) -> None:
        self._extractor = extractor
        self._features: dict[tuple, GraphFeatures] = {}
        self._canonical: dict[tuple, GraphFeatures] = {}
        self.hits = 0
        self.misses = 0
        #: subset of ``hits`` found only through the canonical-form key
        #: (an isomorphic relabeling of an earlier query, not an exact copy)
        self.canonical_hits = 0

    def extract(self, query: LabeledGraph) -> GraphFeatures:
        """Return (possibly memoised) features of ``query``."""
        key = graph_signature(query)
        features = self._features.get(key)
        if features is None:
            canonical_key = canonical_graph_key(query)
            features = self._canonical.get(canonical_key)
            if features is None:
                features = self._extractor.extract(query)
                self._canonical[canonical_key] = features
                self.misses += 1
            else:
                self.hits += 1
                self.canonical_hits += 1
            self._features[key] = features
        else:
            self.hits += 1
        return features

    def __len__(self) -> int:
        return len(self._canonical)


# ----------------------------------------------------------------------
# Worker-side verification
# ----------------------------------------------------------------------
#: per-process snapshot of the base method, installed by the pool initializer
_WORKER_METHOD: SubgraphQueryMethod | None = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_METHOD
    _WORKER_METHOD = pickle.loads(payload)


def _init_worker_shared(handle) -> None:
    """Pool initializer attaching to a published shared-memory snapshot.

    ``handle`` is a :class:`~repro.core.shm.SnapshotHandle`: only the
    segment name and size cross the pipe; the snapshot itself is read from
    the one segment the parent published.
    """
    global _WORKER_METHOD
    _WORKER_METHOD = handle.load()


def _run_verify_chunk(
    method: SubgraphQueryMethod,
    query: LabeledGraph,
    candidate_ids: list,
    supergraph: bool,
    features: GraphFeatures | None,
) -> tuple[list, int, int, list[float], str]:
    """Verify one chunk against ``method``.

    Returns the answers plus the verifier-stat deltas the chunk produced:
    positives, negatives and the per-test timing samples (whose length is
    the test count and whose sum is the time delta — the parent folds them
    back so the :class:`VerifierStats` invariants hold after a batch).  The
    final element names the kernel backend this worker process actually
    resolved — answers are backend-independent, but a worker that fell back
    to ``"bigint"`` (native library unloadable in the fresh process) must
    be *visible* in the folded statistics, not silently slower.
    """
    stats = method.verifier.stats
    positives, negatives = stats.positives, stats.negatives
    samples_before = len(stats.per_test_seconds)
    if supergraph:
        answers = method.verify_supergraph(query, candidate_ids, features=features)
    else:
        answers = method.verify(query, candidate_ids, features=features)
    samples = stats.per_test_seconds[samples_before:]
    # Keep the long-lived worker's sample list from growing without bound;
    # the parent re-appends the samples to its own stats.
    del stats.per_test_seconds[samples_before:]
    return (
        list(answers),
        stats.positives - positives,
        stats.negatives - negatives,
        samples,
        method.verifier.resolved_kernel_name(),
    )


def _process_verify_chunk(
    query: LabeledGraph,
    candidate_ids: list,
    supergraph: bool,
    features: GraphFeatures | None,
) -> tuple[list, int, int, list[float], str]:
    """Process-pool entry point: verify against the worker's method snapshot."""
    return _run_verify_chunk(_WORKER_METHOD, query, candidate_ids, supergraph, features)


def _thread_verify_chunk(
    method: SubgraphQueryMethod,
    query: LabeledGraph,
    candidate_ids: list,
    supergraph: bool,
    features: GraphFeatures | None,
) -> tuple[list, int, int, list[float], str]:
    """Thread-pool entry point.

    Threads share the index structures (read-only during querying) but each
    call gets a private :class:`Verifier` carrying the parent's full
    configuration — algorithm, induced semantics *and* the
    ``compiled``/``precheck`` fast-path flags, so A/B baselines keep their
    meaning on the pool — with zeroed statistics, so the shared counters are
    never raced; the deltas are merged by the parent deterministically.
    """
    clone = copy.copy(method)
    clone.verifier = method.verifier.fresh_clone()
    return _run_verify_chunk(clone, query, candidate_ids, supergraph, features)


@dataclass
class _ChunkOutcome:
    """Merged result of all verification chunks of one query."""

    answers: set = field(default_factory=set)
    positives: int = 0
    negatives: int = 0
    per_test_seconds: list[float] = field(default_factory=list)


@dataclass
class _PendingVerification:
    """One query whose verification has been dispatched but not completed."""

    plan: QueryPlan
    #: outstanding pool futures, or ``None`` when verified in-process
    futures: list | None
    #: in-process answers (``None`` while pool futures are outstanding)
    verified: set | None
    #: feature-extraction time to fold back into ``filter_seconds``
    extract_seconds: float
    #: verification wall time observed so far: the full in-process run, or
    #: just the chunk submission for pool runs — :meth:`BatchExecutor._finish`
    #: adds the collection wait, so time the main thread spends planning the
    #: next query between the two is *not* billed to verification
    verify_seconds: float


@dataclass
class _VerifierStatsMark:
    """Rollback point for a :class:`VerifierStats` (speculative planning)."""

    tests: int
    positives: int
    negatives: int
    total_seconds: float
    num_samples: int

    @classmethod
    def capture(cls, stats) -> "_VerifierStatsMark":
        return cls(
            tests=stats.tests,
            positives=stats.positives,
            negatives=stats.negatives,
            total_seconds=stats.total_seconds,
            num_samples=len(stats.per_test_seconds),
        )

    def rollback(self, stats) -> None:
        stats.tests = self.tests
        stats.positives = self.positives
        stats.negatives = self.negatives
        stats.total_seconds = self.total_seconds
        del stats.per_test_seconds[self.num_samples:]


class BatchExecutor:
    """Run batches of queries through an :class:`IGQ` engine or a bare method.

    Parameters
    ----------
    target:
        An :class:`~repro.core.engine.IGQ` engine (its configured mode
        decides the query type) or a plain
        :class:`~repro.methods.base.SubgraphQueryMethod`.
    num_workers:
        Worker-pool size for the verification stage.  ``1`` selects the
        deterministic sequential fallback (no pool is ever created).
    backend:
        One of :data:`BACKENDS`.  ``"process"`` (the ``"auto"`` default for
        ``num_workers > 1``) ships a pickled snapshot of the base method to
        each worker once, then only candidate-id chunks per query.
    chunk_size:
        Candidates per worker task; defaults to an even split over the
        workers.
    memoize_features:
        Memoise query feature extraction across the batch (on by default).
    pipeline:
        Plan the next query while the previous one verifies on the pool (on
        by default; only takes effect when an iGQ engine is driven with a
        worker pool).  Semantics are unchanged either way — the flag exists
        so benchmarks and tests can isolate the latency contribution.
    config:
        A :class:`~repro.core.config.BatchConfig` carrying all of the above
        in one validated object (what engines and the service pass down);
        when given it supersedes the flat parameters.

    Stream items are either bare query graphs (executed as the engine's
    configured type) or ``(query, mode)`` pairs with ``mode`` one of
    ``"subgraph"`` / ``"supergraph"`` — a mixed-mode engine requires the
    pair form, which is how the service front door drives one engine with
    both query types in a single ordered stream.
    """

    def __init__(
        self,
        target: IGQ | SubgraphQueryMethod,
        num_workers: int = 1,
        backend: str = "auto",
        chunk_size: int | None = None,
        memoize_features: bool = True,
        pipeline: bool = True,
        config: BatchConfig | None = None,
    ) -> None:
        if config is not None:
            num_workers = config.num_workers
            backend = config.backend
            chunk_size = config.chunk_size
            memoize_features = config.memoize_features
            pipeline = config.pipeline
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.engine = target if isinstance(target, IGQ) else None
        self.method = target.method if isinstance(target, IGQ) else target
        if self.method.database is None:
            raise RuntimeError("the target's dataset index must be built first")
        self.num_workers = num_workers
        if backend == "auto":
            # A worker pool only pays off when the hardware can actually run
            # the workers concurrently; on a single-CPU machine the batch
            # still wins through feature memoisation, but verification stays
            # in-process (an explicit backend overrides this).
            backend = (
                "process" if num_workers > 1 and effective_cpu_count() > 1 else "sequential"
            )
        self.backend = backend
        self.chunk_size = chunk_size
        self.pipeline = pipeline
        self.stats = BatchStats()
        self._memo = FeatureMemo(self.method.extractor) if memoize_features else None
        self._pool: Executor | None = None
        self._owns_pool = True
        self._shared_mode: str | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self, supergraph: bool = False) -> Executor:
        if self._pool is None:
            if self.backend == "process":
                # A sharded engine with process-backed shards already keeps
                # one long-lived worker per shard, each initialised with the
                # method snapshot and subscribed to the cache delta log —
                # verification chunks ride on those instead of a second pool.
                runtime = getattr(self.engine, "shard_runtime", None)
                shared = runtime.verify_pool() if runtime is not None else None
                if shared is not None:
                    self._pool = shared
                    self._owns_pool = False
                    return self._pool
                if self.engine is not None:
                    mode = self.engine.mode
                else:
                    # A bare method has no configured mode; precompile for
                    # the direction of the chunk that forced pool creation
                    # (a later plain stream mixing both directions falls
                    # back to lazy per-worker compilation of the other one).
                    mode = SUPERGRAPH_MODE if supergraph else SUBGRAPH_MODE
                handle = self.method.acquire_shared_payload(mode=mode)
                if handle is not None:
                    # Publish-once: workers attach to the one shared-memory
                    # segment instead of each receiving the snapshot pickle.
                    self._shared_mode = mode
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.num_workers,
                        initializer=_init_worker_shared,
                        initargs=(handle,),
                    )
                else:
                    payload = self.method.verification_payload(mode=mode)
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.num_workers,
                        initializer=_init_worker,
                        initargs=(payload,),
                    )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.num_workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        A pool borrowed from the engine's shard runtime is left running —
        its lifetime belongs to the engine.
        """
        if self._pool is not None:
            if self._owns_pool:
                self._pool.shutdown(wait=True)
            self._pool = None
            self._owns_pool = True
        if self._shared_mode is not None:
            self.method.release_shared_payload(self._shared_mode)
            self._shared_mode = None

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_batch(self, queries: Iterable) -> list[QueryResult]:
        """Process ``queries`` in order and return one result per query."""
        return list(self.run_stream(queries))

    def run_stream(self, queries: Iterable) -> Iterator[QueryResult]:
        """Streaming form of :meth:`run_batch`: yield results as they finish.

        Queries are verified and folded into the cache strictly in input
        order.  With an iGQ engine, a worker pool and ``pipeline=True``
        (the default), query *i+1* is planned while query *i*'s candidates
        verify on the pool; results still arrive in input order and the
        engine ends the stream in exactly the sequential state.  Items may
        be bare graphs or ``(query, mode)`` pairs; :data:`DRAIN` items make
        a live source flush the in-flight query (see :class:`_Drain`).
        """
        if self.engine is not None and self.pipeline and self._pool_enabled():
            yield from self._run_stream_pipelined(queries)
            return
        for item in queries:
            if item is DRAIN:
                continue
            query, supergraph, abort = self._task_of(item)
            if abort is not None and abort():
                yield ABORTED
                continue
            yield self._run_item(query, supergraph)

    def _pool_enabled(self) -> bool:
        return self.backend != "sequential" and self.num_workers > 1

    def _task_of(self, item) -> tuple[LabeledGraph, bool, object]:
        """Normalise a stream item to ``(query, supergraph, abort)``.

        Items are bare graphs, ``(query, mode)`` pairs, or ``(query, mode,
        abort)`` triples with ``abort`` a zero-argument cancellation hook
        (see :class:`_Aborted`).
        """
        abort = None
        if isinstance(item, tuple):
            if len(item) == 3:
                query, mode, abort = item
            else:
                query, mode = item
        else:
            query, mode = item, None
        if mode is None:
            default = self.engine.mode if self.engine is not None else SUBGRAPH_MODE
            if default == MIXED_MODE:
                raise ValueError(
                    "a mixed-mode engine takes (query, mode) stream items; "
                    "got a bare query graph"
                )
            mode = default
        validate_query_mode(mode)
        if self.engine is not None:
            self.engine._require_mode(mode)
        return query, mode == SUPERGRAPH_MODE, abort

    def _run_stream_pipelined(self, queries: Iterable) -> Iterator[IGQQueryResult]:
        """Pipelined plan/verify loop over an iGQ engine.

        Sequential order per query is plan → verify → complete; the only
        engine-state writes are the §5.1 hit credits (during planning) and
        the window maintenance (during completion).  The pipelined loop
        plans query *i+1* with the credits *deferred* while query *i*'s
        futures are outstanding, completes query *i*, and only then applies
        the credits — so every state write lands in exactly the sequential
        position.  If completing query *i* flushed the window (the one
        completion effect planning can observe), the speculative plan is
        discarded: the component-lookup statistics are rolled back and the
        query is re-planned against the post-flush index.  A :data:`DRAIN`
        item completes the in-flight query immediately (state writes land in
        the same order the sequential loop would produce — the plan overlap
        is simply skipped for that boundary).
        """
        engine = self.engine
        pending: _PendingVerification | None = None
        for item in queries:
            if item is DRAIN:
                if pending is not None:
                    yield self._finish(pending)
                    pending = None
                continue
            query, supergraph, abort = self._task_of(item)
            if abort is not None and abort():
                # The abort sentinel must land in this item's stream
                # position, so the in-flight predecessor is flushed first —
                # one lost planning overlap, only on the (rare) abort path.
                if pending is not None:
                    yield self._finish(pending)
                    pending = None
                yield ABORTED
                continue
            self.stats.queries += 1
            start = time.perf_counter()
            features = self._extract(query)
            extract_seconds = time.perf_counter() - start
            if pending is None:
                plan = engine.plan_query(query, supergraph=supergraph, features=features)
                pending = self._dispatch(plan, extract_seconds)
                continue
            mark = _VerifierStatsMark.capture(engine.igq_verifier.stats)
            plan = engine.plan_query(
                query, supergraph=supergraph, features=features, credit=False
            )
            self.stats.pipelined_plans += 1
            result = self._finish(pending)
            if result.maintenance is not None:
                mark.rollback(engine.igq_verifier.stats)
                self.stats.pipeline_replans += 1
                plan = engine.plan_query(
                    query, supergraph=supergraph, features=features, credit=False
                )
            engine.apply_plan_credits(plan)
            # The speculative plan captured the verifier's test counter
            # before query i's worker tests were folded back; re-anchor it
            # so per-query test accounting matches the sequential loop.
            plan.tests_before = engine.method.verifier.stats.tests
            pending = self._dispatch(plan, extract_seconds)
            yield result
        if pending is not None:
            yield self._finish(pending)

    def _dispatch(self, plan: QueryPlan, extract_seconds: float) -> _PendingVerification:
        """Start (or inline-run) the verification stage of a planned query."""
        candidate_ids = list(plan.remaining)
        start = time.perf_counter()
        if self._use_pool(candidate_ids):
            futures = self._submit_chunks(
                plan.query, candidate_ids, plan.supergraph, plan.features
            )
            return _PendingVerification(
                plan, futures, None, extract_seconds, time.perf_counter() - start
            )
        self.stats.sequential_verifications += 1
        verified = self.engine.verify_plan(plan)
        return _PendingVerification(
            plan, None, verified, extract_seconds, time.perf_counter() - start
        )

    def _finish(self, pending: _PendingVerification) -> IGQQueryResult:
        """Collect a dispatched query's answers and complete it in-engine."""
        verify_seconds = pending.verify_seconds
        if pending.futures is not None:
            start = time.perf_counter()
            verified = self._collect_chunks(pending.futures)
            verify_seconds += time.perf_counter() - start
        else:
            verified = pending.verified
        result = self.engine.complete_query(pending.plan, verified, verify_seconds)
        result.filter_seconds += pending.extract_seconds
        return result

    def _run_item(self, query: LabeledGraph, supergraph: bool) -> QueryResult:
        self.stats.queries += 1
        # Extraction happens outside plan/filter, so its cost is folded back
        # into filter_seconds below — the per-query accounting must match the
        # sequential path, where extraction is part of the filtering stage.
        start = time.perf_counter()
        features = self._extract(query)
        extract_seconds = time.perf_counter() - start
        if self.engine is not None:
            result = self._run_one_igq(query, features, supergraph)
        else:
            result = self._run_one_plain(query, features, supergraph)
        result.filter_seconds += extract_seconds
        return result

    def _extract(self, query: LabeledGraph) -> GraphFeatures:
        if self._memo is None:
            return self.method.extract_query_features(query)
        features = self._memo.extract(query)
        self.stats.feature_memo_hits = self._memo.hits
        self.stats.feature_memo_misses = self._memo.misses
        return features

    def _run_one_igq(
        self, query: LabeledGraph, features: GraphFeatures, supergraph: bool
    ) -> IGQQueryResult:
        engine = self.engine
        plan = engine.plan_query(query, supergraph=supergraph, features=features)
        candidate_ids = list(plan.remaining)
        start = time.perf_counter()
        if self._use_pool(candidate_ids):
            verified = self._verify_parallel(query, candidate_ids, supergraph, features)
        else:
            self.stats.sequential_verifications += 1
            verified = engine.verify_plan(plan)
        verify_seconds = time.perf_counter() - start
        return engine.complete_query(plan, verified, verify_seconds)

    def _run_one_plain(
        self, query: LabeledGraph, features: GraphFeatures, supergraph: bool = False
    ) -> QueryResult:
        method = self.method
        tests_before = method.verifier.stats.tests
        start = time.perf_counter()
        if supergraph:
            candidates = method.filter_supergraph_candidates(query, features=features)
        else:
            candidates = method.filter_candidates(query, features=features)
        filter_seconds = time.perf_counter() - start
        candidate_ids = list(candidates)
        start = time.perf_counter()
        if self._use_pool(candidate_ids):
            answers = self._verify_parallel(
                query, candidate_ids, supergraph=supergraph, features=features
            )
        elif supergraph:
            self.stats.sequential_verifications += 1
            answers = method.verify_supergraph(query, candidates, features=features)
        else:
            self.stats.sequential_verifications += 1
            answers = method.verify(query, candidates, features=features)
        verify_seconds = time.perf_counter() - start
        return QueryResult(
            query_name=query.name,
            answers=answers,
            candidates=candidates,
            num_isomorphism_tests=method.verifier.stats.tests - tests_before,
            filter_seconds=filter_seconds,
            verify_seconds=verify_seconds,
        )

    # ------------------------------------------------------------------
    def _use_pool(self, candidate_ids: list) -> bool:
        return (
            self.backend != "sequential"
            and self.num_workers > 1
            and len(candidate_ids) >= _MIN_PARALLEL_CANDIDATES
        )

    def _chunks(self, candidate_ids: list) -> list[list]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(candidate_ids) // self.num_workers))
        return [
            candidate_ids[start : start + size]
            for start in range(0, len(candidate_ids), size)
        ]

    def _verify_parallel(
        self,
        query: LabeledGraph,
        candidate_ids: list[Hashable],
        supergraph: bool,
        features: GraphFeatures | None,
    ) -> set:
        """Fan one query's candidate verification out to the worker pool.

        The union of the chunk answers is order-independent, and the worker
        statistics deltas are folded back into the parent verifier so the
        per-query accounting matches the sequential path exactly.
        """
        return self._collect_chunks(
            self._submit_chunks(query, candidate_ids, supergraph, features)
        )

    def _submit_chunks(
        self,
        query: LabeledGraph,
        candidate_ids: list[Hashable],
        supergraph: bool,
        features: GraphFeatures | None,
    ) -> list:
        """Submit one query's verification chunks; return the futures."""
        pool = self._ensure_pool(supergraph)
        self.stats.parallel_verifications += 1
        futures = []
        for chunk in self._chunks(candidate_ids):
            self.stats.chunks_dispatched += 1
            if self.backend == "process":
                futures.append(
                    pool.submit(_process_verify_chunk, query, chunk, supergraph, features)
                )
            else:
                futures.append(
                    pool.submit(
                        _thread_verify_chunk, self.method, query, chunk, supergraph, features
                    )
                )
        return futures

    def _collect_chunks(self, futures: list) -> set:
        """Merge chunk results and fold the worker stats into the parent."""
        outcome = _ChunkOutcome()
        worker_kernels = self.stats.worker_kernels
        for future in futures:
            answers, positives, negatives, per_test_seconds, kernel = future.result()
            outcome.answers.update(answers)
            outcome.positives += positives
            outcome.negatives += negatives
            outcome.per_test_seconds.extend(per_test_seconds)
            worker_kernels[kernel] = worker_kernels.get(kernel, 0) + 1
        stats = self.method.verifier.stats
        stats.tests += len(outcome.per_test_seconds)
        stats.positives += outcome.positives
        stats.negatives += outcome.negatives
        stats.total_seconds += sum(outcome.per_test_seconds)
        stats.per_test_seconds.extend(outcome.per_test_seconds)
        return outcome.answers


def default_num_workers() -> int:
    """A safe default worker count for this machine (at most 4)."""
    return max(2, min(4, effective_cpu_count()))
