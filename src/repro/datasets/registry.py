"""Dataset registry: named, scalable stand-ins for the paper's datasets.

``load_dataset("aids")`` and friends return a ready-to-index
:class:`~repro.graphs.database.GraphDatabase` whose structural statistics
mirror Table 1 of the paper (see :mod:`repro.datasets.synthetic`).  The
``scale`` parameter multiplies the number of graphs (and, mildly, their
size), so the same code path runs both the quick benchmark configurations
and larger, closer-to-paper configurations when more time is available.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.database import GraphDatabase
from ..graphs.statistics import DatasetStatistics, summarize_dataset
from . import synthetic

__all__ = ["DatasetSpec", "available_datasets", "dataset_spec", "load_dataset", "table1_row"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a named dataset configuration."""

    name: str
    description: str
    paper_num_graphs: int
    paper_num_labels: int
    paper_avg_nodes: float
    paper_avg_degree: float
    default_num_graphs: int
    default_num_labels: int
    default_node_range: tuple[int, int]
    default_average_degree: float
    #: recommended maximum path length for path-based methods on this dataset
    recommended_path_length: int


_SPECS: dict[str, DatasetSpec] = {
    "aids": DatasetSpec(
        name="aids",
        description="NCI AIDS antiviral screen: many small sparse molecules",
        paper_num_graphs=40000,
        paper_num_labels=62,
        paper_avg_nodes=45,
        paper_avg_degree=2.09,
        default_num_graphs=300,
        default_num_labels=62,
        default_node_range=(12, 45),
        default_average_degree=2.1,
        recommended_path_length=4,
    ),
    "pdbs": DatasetSpec(
        name="pdbs",
        description="PDBS: few large sparse DNA/RNA/protein structure graphs",
        paper_num_graphs=600,
        paper_num_labels=10,
        paper_avg_nodes=2939,
        paper_avg_degree=2.13,
        default_num_graphs=60,
        default_num_labels=10,
        default_node_range=(60, 220),
        default_average_degree=2.1,
        recommended_path_length=4,
    ),
    "ppi": DatasetSpec(
        name="ppi",
        description="PPI: a handful of large dense protein-interaction networks",
        paper_num_graphs=20,
        paper_num_labels=46,
        paper_avg_nodes=4943,
        paper_avg_degree=9.23,
        default_num_graphs=12,
        default_num_labels=46,
        default_node_range=(60, 110),
        default_average_degree=6.0,
        recommended_path_length=3,
    ),
    "synthetic": DatasetSpec(
        name="synthetic",
        description="Dense synthetic graphs (the paper's generated dataset)",
        paper_num_graphs=1000,
        paper_num_labels=20,
        paper_avg_nodes=892,
        paper_avg_degree=19.52,
        default_num_graphs=40,
        default_num_labels=20,
        default_node_range=(40, 90),
        default_average_degree=8.0,
        recommended_path_length=3,
    ),
}

_GENERATORS = {
    "aids": synthetic.generate_molecule_like,
    "pdbs": synthetic.generate_biomolecule_like,
    "ppi": synthetic.generate_interaction_like,
    "synthetic": synthetic.generate_dense_synthetic,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {available_datasets()}"
        ) from None


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> GraphDatabase:
    """Generate the named dataset and wrap it in a :class:`GraphDatabase`.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    scale:
        Multiplier on the number of graphs (``0 < scale``); ``1.0`` is the
        quick default configuration documented in DESIGN.md.
    seed:
        Override the dataset's default random seed.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = dataset_spec(name)
    generator = _GENERATORS[name]
    num_graphs = max(int(round(spec.default_num_graphs * scale)), 2)
    kwargs = {
        "num_graphs": num_graphs,
        "num_labels": spec.default_num_labels,
        "node_range": spec.default_node_range,
        "average_degree": spec.default_average_degree,
    }
    if seed is not None:
        kwargs["seed"] = seed
    graphs = generator(**kwargs)
    return GraphDatabase.from_graphs(graphs, name=name)


def table1_row(name: str, scale: float = 1.0, seed: int | None = None) -> dict:
    """Reproduce one row of Table 1 for the (scaled) generated dataset.

    Returns the dataset statistics of the generated collection side by side
    with the paper's published values, so the shape substitution can be
    inspected (this is what ``benchmarks/bench_table1_datasets.py`` prints).
    """
    spec = dataset_spec(name)
    database = load_dataset(name, scale=scale, seed=seed)
    stats: DatasetStatistics = summarize_dataset(database.graphs())
    return {
        "dataset": name,
        "paper": {
            "num_graphs": spec.paper_num_graphs,
            "num_labels": spec.paper_num_labels,
            "avg_nodes": spec.paper_avg_nodes,
            "avg_degree": spec.paper_avg_degree,
        },
        "generated": stats.as_row(),
    }
