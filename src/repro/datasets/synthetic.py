"""Synthetic graph generators reproducing the *shape* of the paper's datasets.

The paper evaluates on three real datasets (AIDS antiviral screen molecules,
PDBS biomolecule structures, PPI protein-interaction networks) and one dense
synthetic dataset; Table 1 lists their structural statistics.  The real data
files are not redistributable (and not reachable offline), so this module
provides parameterised generators that reproduce those statistics *and* the
structural property that makes graph query processing interesting on them:
graphs in a real collection share substructure (molecules share functional
groups, proteins share domains), which is what produces non-trivial candidate
sets, false positives, and sub/supergraph relationships among queries.

Every generator therefore works in two steps:

1. build a pool of *motifs* — small connected labeled graphs shared by the
   whole collection (the stand-in for functional groups / domains);
2. assemble each dataset graph by sampling a few motifs (with a Zipf-skewed
   popularity, so some motifs are ubiquitous), bridging them with random
   edges and optionally adding extra random edges to reach the target
   density.

Generation is deterministic given the seed.  See DESIGN.md ("Substitutions")
for the fidelity argument.
"""

from __future__ import annotations

import random

from ..graphs.graph import LabeledGraph

__all__ = [
    "random_connected_graph",
    "MotifPool",
    "generate_motif_collection",
    "generate_molecule_like",
    "generate_biomolecule_like",
    "generate_interaction_like",
    "generate_dense_synthetic",
]


def _label_universe(num_labels: int) -> list[str]:
    """Deterministic label names ``L00..L<n-1>``."""
    return [f"L{index:02d}" for index in range(num_labels)]


def _zipf_weights(count: int, skew: float) -> list[float]:
    return [(rank + 1) ** (-skew) for rank in range(count)]


def random_connected_graph(
    rng: random.Random,
    num_nodes: int,
    average_degree: float,
    labels: list[str],
    label_skew: float = 1.0,
    name: str | None = None,
) -> LabeledGraph:
    """A connected random graph with the requested size, degree and labels.

    Construction: random-attachment spanning tree (guarantees connectivity)
    followed by uniformly random extra edges until the average degree is
    reached.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")
    if average_degree < 0:
        raise ValueError("average_degree must be non-negative")
    label_weights = _zipf_weights(len(labels), label_skew)
    graph = LabeledGraph(name=name)
    for vertex in range(num_nodes):
        graph.add_vertex(vertex, rng.choices(labels, weights=label_weights, k=1)[0])
    for vertex in range(1, num_nodes):
        graph.add_edge(vertex, rng.randrange(vertex))
    target_edges = max(int(round(average_degree * num_nodes / 2.0)), num_nodes - 1)
    max_edges = num_nodes * (num_nodes - 1) // 2
    target_edges = min(target_edges, max_edges)
    attempts = 0
    while graph.num_edges < target_edges and attempts < 20 * target_edges:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


class MotifPool:
    """A pool of shared motifs with Zipf-skewed popularity."""

    def __init__(
        self,
        rng: random.Random,
        num_motifs: int,
        size_range: tuple[int, int],
        average_degree: float,
        labels: list[str],
        label_skew: float,
        popularity_skew: float = 1.2,
    ) -> None:
        if num_motifs < 1:
            raise ValueError("num_motifs must be positive")
        low, high = size_range
        self.motifs = [
            random_connected_graph(
                rng,
                rng.randint(low, high),
                average_degree,
                labels,
                label_skew=label_skew,
                name=f"motif{index}",
            )
            for index in range(num_motifs)
        ]
        self._weights = _zipf_weights(num_motifs, popularity_skew)

    def sample(self, rng: random.Random, count: int) -> list[LabeledGraph]:
        """Sample ``count`` motifs with replacement (popular motifs recur)."""
        return rng.choices(self.motifs, weights=self._weights, k=count)


def _assemble_graph(
    rng: random.Random,
    motifs: list[LabeledGraph],
    extra_edge_fraction: float,
    name: str,
) -> LabeledGraph:
    """Union of ``motifs`` bridged into one connected graph."""
    graph = LabeledGraph(name=name)
    blocks: list[list[int]] = []
    next_vertex = 0
    for motif in motifs:
        mapping = {}
        for vertex in motif.vertices():
            mapping[vertex] = next_vertex
            graph.add_vertex(next_vertex, motif.label(vertex))
            next_vertex += 1
        for u, v in motif.edges():
            graph.add_edge(mapping[u], mapping[v])
        blocks.append(list(mapping.values()))
    # Bridge consecutive blocks so the graph is connected.
    for first, second in zip(blocks, blocks[1:]):
        graph.add_edge(rng.choice(first), rng.choice(second))
    # Optional extra random edges to raise density (dense datasets).
    extra_edges = int(round(extra_edge_fraction * graph.num_edges))
    attempts = 0
    while extra_edges > 0 and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u = rng.randrange(next_vertex)
        v = rng.randrange(next_vertex)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            extra_edges -= 1
    return graph


def generate_motif_collection(
    num_graphs: int,
    num_labels: int,
    num_motifs: int,
    motif_size_range: tuple[int, int],
    motifs_per_graph: tuple[int, int],
    average_degree: float,
    label_skew: float,
    extra_edge_fraction: float,
    seed: int,
    prefix: str,
) -> list[LabeledGraph]:
    """Generate a collection of motif-sharing graphs (see module docstring)."""
    if num_graphs < 1:
        raise ValueError("num_graphs must be positive")
    rng = random.Random(seed)
    labels = _label_universe(num_labels)
    pool = MotifPool(
        rng,
        num_motifs=num_motifs,
        size_range=motif_size_range,
        average_degree=average_degree,
        labels=labels,
        label_skew=label_skew,
    )
    low, high = motifs_per_graph
    graphs = []
    for index in range(num_graphs):
        chosen = pool.sample(rng, rng.randint(low, high))
        graphs.append(
            _assemble_graph(rng, chosen, extra_edge_fraction, f"{prefix}{index}")
        )
    return graphs


def generate_molecule_like(
    num_graphs: int = 300,
    num_labels: int = 62,
    node_range: tuple[int, int] = (12, 45),
    average_degree: float = 2.1,
    seed: int = 11,
) -> list[LabeledGraph]:
    """AIDS-like collection: many small, sparse, molecule-shaped graphs.

    The paper's AIDS dataset has 40 000 graphs of ~45 nodes on average; the
    defaults here scale the count down while preserving the shape: small
    sparse graphs, a large but heavily skewed label alphabet, and substantial
    substructure sharing across the collection (shared "functional groups").
    ``node_range`` controls the motif sizes and how many motifs make up one
    graph.
    """
    motif_low = max(node_range[0] // 3, 3)
    motif_high = max(node_range[1] // 4, motif_low + 1)
    return generate_motif_collection(
        num_graphs=num_graphs,
        num_labels=num_labels,
        num_motifs=30,
        motif_size_range=(motif_low, motif_high),
        motifs_per_graph=(3, 5),
        average_degree=average_degree,
        label_skew=2.2,
        extra_edge_fraction=0.0,
        seed=seed,
        prefix="aids",
    )


def generate_biomolecule_like(
    num_graphs: int = 60,
    num_labels: int = 10,
    node_range: tuple[int, int] = (60, 220),
    average_degree: float = 2.1,
    seed: int = 13,
) -> list[LabeledGraph]:
    """PDBS-like collection: fewer, larger, sparse graphs with few labels."""
    motif_low = max(node_range[0] // 4, 8)
    motif_high = max(node_range[1] // 6, motif_low + 1)
    return generate_motif_collection(
        num_graphs=num_graphs,
        num_labels=num_labels,
        num_motifs=18,
        motif_size_range=(motif_low, motif_high),
        motifs_per_graph=(4, 7),
        average_degree=average_degree,
        label_skew=1.0,
        extra_edge_fraction=0.0,
        seed=seed,
        prefix="pdbs",
    )


def generate_interaction_like(
    num_graphs: int = 12,
    num_labels: int = 46,
    node_range: tuple[int, int] = (60, 110),
    average_degree: float = 6.0,
    seed: int = 17,
) -> list[LabeledGraph]:
    """PPI-like collection: a handful of large, dense interaction networks."""
    motif_low = max(node_range[0] // 4, 10)
    motif_high = max(node_range[1] // 4, motif_low + 1)
    return generate_motif_collection(
        num_graphs=num_graphs,
        num_labels=num_labels,
        num_motifs=14,
        motif_size_range=(motif_low, motif_high),
        motifs_per_graph=(4, 5),
        average_degree=average_degree,
        label_skew=1.4,
        extra_edge_fraction=0.15,
        seed=seed,
        prefix="ppi",
    )


def generate_dense_synthetic(
    num_graphs: int = 40,
    num_labels: int = 20,
    node_range: tuple[int, int] = (40, 90),
    average_degree: float = 8.0,
    seed: int = 19,
) -> list[LabeledGraph]:
    """Dense synthetic collection (the paper's generator-produced dataset)."""
    motif_low = max(node_range[0] // 4, 8)
    motif_high = max(node_range[1] // 4, motif_low + 1)
    return generate_motif_collection(
        num_graphs=num_graphs,
        num_labels=num_labels,
        num_motifs=16,
        motif_size_range=(motif_low, motif_high),
        motifs_per_graph=(4, 5),
        average_degree=average_degree,
        label_skew=0.8,
        extra_edge_fraction=0.2,
        seed=seed,
        prefix="syn",
    )
