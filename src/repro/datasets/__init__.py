"""Dataset substrate: synthetic stand-ins for the paper's graph collections."""

from .registry import (
    DatasetSpec,
    available_datasets,
    dataset_spec,
    load_dataset,
    table1_row,
)
from .synthetic import (
    generate_biomolecule_like,
    generate_dense_synthetic,
    generate_interaction_like,
    generate_molecule_like,
    random_connected_graph,
)

__all__ = [
    "DatasetSpec",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
    "table1_row",
    "generate_biomolecule_like",
    "generate_dense_synthetic",
    "generate_interaction_like",
    "generate_molecule_like",
    "random_connected_graph",
]
