"""Experiment runners: execute query streams with and without iGQ.

This module is the engine room of the per-figure drivers in
:mod:`repro.experiments.figures`.  It standardises

* how datasets, base methods and query workloads are constructed (with
  per-dataset recommended feature parameters),
* the warm-up protocol of §7.1 (the first window of queries populates the
  iGQ index and is excluded from the measured statistics, for the base
  method and for iGQ alike),
* memoisation: datasets, built indexes and query streams are cached so that
  the many figures sharing the same configuration do not repeat work.

The default experiment sizes are scaled down from the paper (300-ish dataset
graphs instead of 40 000, a few hundred queries instead of 3 000, cache sizes
scaled accordingly) so that the full figure suite runs in minutes on a
laptop; every size is a parameter, so closer-to-paper runs are a matter of
passing larger numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from ..core.batch import BatchExecutor
from ..core.config import BatchConfig, CacheConfig, EngineConfig
from ..core.engine import IGQ
from ..datasets.registry import dataset_spec, load_dataset
from ..graphs.database import GraphDatabase
from ..graphs.graph import LabeledGraph
from ..methods import create_method
from ..methods.base import SubgraphQueryMethod
from ..workloads.generator import QueryGenerator, WorkloadSpec
from .metrics import SpeedupReport, StreamMetrics, speedup

__all__ = [
    "ExperimentConfig",
    "get_database",
    "get_method",
    "get_queries",
    "run_base_stream",
    "run_igq_stream",
    "run_speedup_experiment",
    "SpeedupOutcome",
]

#: default numbers of measured queries per dataset (paper: 3 000 for
#: AIDS/PDBS, 500 for PPI/synthetic)
_DEFAULT_NUM_QUERIES = {"aids": 240, "pdbs": 240, "ppi": 150, "synthetic": 150}
#: default cache / window sizes per dataset (paper: C=500, W=100 for
#: AIDS/PDBS; C=100..300, W=20 for PPI/synthetic)
_DEFAULT_CACHE = {"aids": 60, "pdbs": 60, "ppi": 30, "synthetic": 30}
_DEFAULT_WINDOW = {"aids": 20, "pdbs": 20, "ppi": 10, "synthetic": 10}


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully-specified experiment configuration (hashable, memoisable)."""

    dataset: str = "aids"
    scale: float = 1.0
    dataset_seed: int | None = None
    method: str = "ggsx"
    max_path_length: int | None = None
    tree_max_size: int = 4
    cycle_max_length: int = 6
    bitmap_bits: int = 4096
    workload: str = "zipf-zipf"
    alpha: float = 1.4
    num_queries: int | None = None
    cache_size: int | None = None
    window_size: int | None = None
    policy: str = "utility"
    query_seed: int = 5
    enable_isub: bool = True
    enable_isuper: bool = True
    #: worker-pool size for the verification stage of both streams
    #: (1 = the deterministic sequential path)
    num_workers: int = 1
    #: batch-executor backend ("auto" | "sequential" | "thread" | "process")
    batch_backend: str = "auto"
    #: memoise feature extraction across each stream; off by default so the
    #: measured baseline keeps the paper's per-occurrence extraction cost
    memoize_features: bool = False

    # ------------------------------------------------------------------
    def resolved(self) -> "ExperimentConfig":
        """Fill dataset-dependent defaults (query counts, cache sizes, path length)."""
        spec = dataset_spec(self.dataset)
        return replace(
            self,
            max_path_length=(
                self.max_path_length
                if self.max_path_length is not None
                else spec.recommended_path_length
            ),
            num_queries=(
                self.num_queries
                if self.num_queries is not None
                else _DEFAULT_NUM_QUERIES[self.dataset]
            ),
            cache_size=(
                self.cache_size
                if self.cache_size is not None
                else _DEFAULT_CACHE[self.dataset]
            ),
            window_size=(
                self.window_size
                if self.window_size is not None
                else _DEFAULT_WINDOW[self.dataset]
            ),
        )

    def engine_config(self) -> EngineConfig:
        """The :class:`EngineConfig` this experiment's iGQ engine runs under.

        One typed object carries everything that used to be re-threaded as
        flat kwargs into ``IGQ(...)`` and ``BatchExecutor(...)``; the batch
        section also drives the *base* stream, so both sides of a speedup
        comparison share one execution configuration.
        """
        resolved = self.resolved()
        return EngineConfig(
            cache=CacheConfig(
                size=resolved.cache_size,
                window=resolved.window_size,
                policy=resolved.policy,
            ),
            enable_isub=resolved.enable_isub,
            enable_isuper=resolved.enable_isuper,
            batch=BatchConfig(
                num_workers=resolved.num_workers,
                backend=resolved.batch_backend,
                memoize_features=resolved.memoize_features,
            ),
        )

    def workload_spec(self) -> WorkloadSpec:
        """Translate the workload name (e.g. ``"zipf-uni"``) into a spec."""
        graph_dist, _, node_dist = self.workload.partition("-")
        return WorkloadSpec(
            name=self.workload,
            graph_distribution=graph_dist or "uniform",
            node_distribution=node_dist or "uniform",
            alpha=self.alpha,
            seed=self.query_seed,
        )


@dataclass
class SpeedupOutcome:
    """Everything produced by one base-vs-iGQ comparison."""

    config: ExperimentConfig
    base: StreamMetrics
    igq: StreamMetrics
    report: SpeedupReport
    engine: IGQ

    def as_dict(self) -> dict:
        return {
            "dataset": self.config.dataset,
            "method": self.config.method,
            "workload": self.config.workload,
            "alpha": self.config.alpha,
            "cache_size": self.config.cache_size,
            **self.report.as_dict(),
        }


# ----------------------------------------------------------------------
# Memoised building blocks
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def get_database(dataset: str, scale: float = 1.0, seed: int | None = None) -> GraphDatabase:
    """Load (and cache) a dataset."""
    return load_dataset(dataset, scale=scale, seed=seed)


@lru_cache(maxsize=None)
def _cached_method(
    dataset: str,
    scale: float,
    dataset_seed: int | None,
    method: str,
    max_path_length: int,
    tree_max_size: int,
    cycle_max_length: int,
    bitmap_bits: int,
) -> SubgraphQueryMethod:
    database = get_database(dataset, scale, dataset_seed)
    if method in ("ggsx", "grapes", "grapes6"):
        instance = create_method(method, max_path_length=max_path_length)
    elif method == "ctindex":
        instance = create_method(
            method,
            tree_max_size=tree_max_size,
            cycle_max_length=cycle_max_length,
            bitmap_bits=bitmap_bits,
        )
    else:
        instance = create_method(method)
    instance.build_index(database)
    return instance


def get_method(config: ExperimentConfig) -> SubgraphQueryMethod:
    """Return a built (indexed) base method for ``config`` (cached)."""
    config = config.resolved()
    return _cached_method(
        config.dataset,
        config.scale,
        config.dataset_seed,
        config.method,
        config.max_path_length,
        config.tree_max_size,
        config.cycle_max_length,
        config.bitmap_bits,
    )


@lru_cache(maxsize=None)
def _cached_queries(
    dataset: str,
    scale: float,
    dataset_seed: int | None,
    workload: str,
    alpha: float,
    num_queries: int,
    query_seed: int,
) -> tuple[LabeledGraph, ...]:
    database = get_database(dataset, scale, dataset_seed)
    graph_dist, _, node_dist = workload.partition("-")
    spec = WorkloadSpec(
        name=workload,
        graph_distribution=graph_dist or "uniform",
        node_distribution=node_dist or "uniform",
        alpha=alpha,
        seed=query_seed,
    )
    return tuple(QueryGenerator(database, spec).generate(num_queries))


def get_queries(config: ExperimentConfig) -> tuple[LabeledGraph, ...]:
    """Return the query stream for ``config`` (cached).

    The stream includes the warm-up prefix (``window_size`` queries); the
    runners below exclude it from the measured statistics.
    """
    config = config.resolved()
    total = config.num_queries + config.window_size
    return _cached_queries(
        config.dataset,
        config.scale,
        config.dataset_seed,
        config.workload,
        config.alpha,
        total,
        config.query_seed,
    )


# ----------------------------------------------------------------------
# Stream runners
# ----------------------------------------------------------------------
def run_base_stream(
    method: SubgraphQueryMethod,
    queries: tuple[LabeledGraph, ...],
    warmup: int,
    label: str = "base",
    num_workers: int = 1,
    backend: str = "auto",
    memoize_features: bool = False,
) -> StreamMetrics:
    """Run the plain method over the measured part of the stream.

    The stream is driven by a :class:`~repro.core.batch.BatchExecutor`;
    with the default ``num_workers=1`` that is the deterministic sequential
    path, with more workers the verification stage runs on a pool.
    Feature memoisation is off by default so the baseline keeps the paper's
    per-occurrence extraction cost on repeated-query workloads.
    """
    metrics = StreamMetrics(label=label)
    measured = queries[warmup:]
    batch = BatchConfig(
        num_workers=num_workers,
        backend=backend,
        memoize_features=memoize_features,
    )
    with BatchExecutor(method, config=batch) as executor:
        for query, result in zip(measured, executor.run_stream(measured)):
            metrics.add(result, query)
    return metrics


def run_igq_stream(
    method: SubgraphQueryMethod,
    queries: tuple[LabeledGraph, ...],
    config: ExperimentConfig,
    label: str = "igq",
) -> tuple[StreamMetrics, IGQ]:
    """Run iGQ+method over the stream (warm-up excluded from the metrics)."""
    config = config.resolved()
    engine_config = config.engine_config()
    engine = IGQ.from_config(method, engine_config)
    engine.attach_prebuilt()
    metrics = StreamMetrics(label=label)
    warmup = config.window_size
    with BatchExecutor(engine, config=engine_config.batch) as executor:
        for _ in executor.run_stream(queries[:warmup]):
            pass
        for query, result in zip(queries[warmup:], executor.run_stream(queries[warmup:])):
            metrics.add(result, query)
    return metrics, engine


@lru_cache(maxsize=None)
def run_speedup_experiment(config: ExperimentConfig) -> SpeedupOutcome:
    """Run the full base-vs-iGQ comparison for ``config`` (cached)."""
    config = config.resolved()
    method = get_method(config)
    queries = get_queries(config)
    base = run_base_stream(
        method,
        queries,
        warmup=config.window_size,
        label=f"{config.method}",
        num_workers=config.num_workers,
        backend=config.batch_backend,
        memoize_features=config.memoize_features,
    )
    igq_metrics, engine = run_igq_stream(
        method, queries, config, label=f"igq_{config.method}"
    )
    return SpeedupOutcome(
        config=config,
        base=base,
        igq=igq_metrics,
        report=speedup(base, igq_metrics),
        engine=engine,
    )
