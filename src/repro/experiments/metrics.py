"""Metric collection for query-stream experiments.

The paper's evaluation reports, per dataset / method / workload:

* the *number of subgraph isomorphism tests* performed (Figures 7–11),
* the *query processing time* (Figures 12–17),
* the split of that time between filtering and verification (Figure 1),
* the candidate-set size, answer-set size and false positives (Figures 2–3),
* and the *speedup*, defined as the ratio of the average value of a metric
  for the base method over its average value when iGQ is added (§7.1).

:class:`StreamMetrics` accumulates those quantities over a query stream;
:func:`speedup` produces the ratios.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..graphs.graph import LabeledGraph
from ..methods.base import QueryResult

__all__ = ["StreamMetrics", "SpeedupReport", "speedup"]


@dataclass
class StreamMetrics:
    """Aggregated statistics over a stream of executed queries."""

    label: str = ""
    num_queries: int = 0
    total_isomorphism_tests: int = 0
    total_candidates: int = 0
    total_answers: int = 0
    total_false_positives: int = 0
    total_filter_seconds: float = 0.0
    total_verify_seconds: float = 0.0
    total_igq_seconds: float = 0.0
    total_seconds: float = 0.0
    #: per query-size-group totals: group -> [queries, iso tests, seconds]
    per_group: dict[int, list] = field(default_factory=lambda: defaultdict(lambda: [0, 0, 0.0]))

    # ------------------------------------------------------------------
    def add(self, result: QueryResult, query: LabeledGraph | None = None) -> None:
        """Record the outcome of one query."""
        self.num_queries += 1
        self.total_isomorphism_tests += result.num_isomorphism_tests
        self.total_candidates += result.num_candidates
        self.total_answers += result.num_answers
        self.total_false_positives += result.num_false_positives
        self.total_filter_seconds += result.filter_seconds
        self.total_verify_seconds += result.verify_seconds
        self.total_igq_seconds += result.igq_seconds
        self.total_seconds += result.total_seconds
        if query is not None:
            group = self.per_group[query.num_edges]
            group[0] += 1
            group[1] += result.num_isomorphism_tests
            group[2] += result.total_seconds

    # ------------------------------------------------------------------
    # Averages (the paper reports per-query averages)
    # ------------------------------------------------------------------
    def _avg(self, total: float) -> float:
        return total / self.num_queries if self.num_queries else 0.0

    @property
    def avg_isomorphism_tests(self) -> float:
        """Average number of subgraph isomorphism tests per query."""
        return self._avg(self.total_isomorphism_tests)

    @property
    def avg_candidates(self) -> float:
        """Average candidate-set size per query (Figures 2–3)."""
        return self._avg(self.total_candidates)

    @property
    def avg_answers(self) -> float:
        """Average answer-set size per query (Figures 2–3)."""
        return self._avg(self.total_answers)

    @property
    def avg_false_positives(self) -> float:
        """Average number of false positives per query (Figures 2–3)."""
        return self._avg(self.total_false_positives)

    @property
    def avg_seconds(self) -> float:
        """Average total query processing time per query."""
        return self._avg(self.total_seconds)

    @property
    def filter_time_fraction(self) -> float:
        """Fraction of the total time spent in filtering (Figure 1)."""
        if self.total_seconds == 0:
            return 0.0
        return (self.total_filter_seconds + self.total_igq_seconds) / self.total_seconds

    @property
    def verify_time_fraction(self) -> float:
        """Fraction of the total time spent in verification (Figure 1)."""
        if self.total_seconds == 0:
            return 0.0
        return self.total_verify_seconds / self.total_seconds

    # ------------------------------------------------------------------
    def group_avg_tests(self) -> dict[int, float]:
        """Average iso tests per query, per query-size group (Figures 10–11)."""
        return {
            size: counts[1] / counts[0]
            for size, counts in sorted(self.per_group.items())
            if counts[0]
        }

    def group_avg_seconds(self) -> dict[int, float]:
        """Average query time per query-size group (Figures 16–17)."""
        return {
            size: counts[2] / counts[0]
            for size, counts in sorted(self.per_group.items())
            if counts[0]
        }

    def as_dict(self) -> dict:
        """Flat dictionary of the headline averages (for reports)."""
        return {
            "label": self.label,
            "num_queries": self.num_queries,
            "avg_iso_tests": round(self.avg_isomorphism_tests, 3),
            "avg_candidates": round(self.avg_candidates, 3),
            "avg_answers": round(self.avg_answers, 3),
            "avg_false_positives": round(self.avg_false_positives, 3),
            "avg_seconds": round(self.avg_seconds, 6),
            "filter_time_fraction": round(self.filter_time_fraction, 4),
            "verify_time_fraction": round(self.verify_time_fraction, 4),
        }


@dataclass(frozen=True)
class SpeedupReport:
    """Speedups of iGQ+M over plain M (the paper's headline metric)."""

    isomorphism_test_speedup: float
    time_speedup: float
    base_avg_tests: float
    igq_avg_tests: float
    base_avg_seconds: float
    igq_avg_seconds: float

    def as_dict(self) -> dict:
        return {
            "iso_test_speedup": round(self.isomorphism_test_speedup, 3),
            "time_speedup": round(self.time_speedup, 3),
            "base_avg_tests": round(self.base_avg_tests, 3),
            "igq_avg_tests": round(self.igq_avg_tests, 3),
            "base_avg_seconds": round(self.base_avg_seconds, 6),
            "igq_avg_seconds": round(self.igq_avg_seconds, 6),
        }


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return float("inf") if numerator > 0 else 1.0
    return numerator / denominator


def speedup(base: StreamMetrics, igq: StreamMetrics) -> SpeedupReport:
    """Speedup of ``igq`` over ``base`` (ratio of base over iGQ averages)."""
    return SpeedupReport(
        isomorphism_test_speedup=_ratio(base.avg_isomorphism_tests, igq.avg_isomorphism_tests),
        time_speedup=_ratio(base.avg_seconds, igq.avg_seconds),
        base_avg_tests=base.avg_isomorphism_tests,
        igq_avg_tests=igq.avg_isomorphism_tests,
        base_avg_seconds=base.avg_seconds,
        igq_avg_seconds=igq.avg_seconds,
    )
