"""Plain-text rendering of experiment results.

The figure drivers return structured dictionaries; this module turns them
into aligned text tables so the benchmark harness (and EXPERIMENTS.md) can
present them the way the paper presents its figures — as the series of
per-configuration values underlying each plot.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_rows", "format_figure", "print_figure"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, Mapping):
        return " ".join(f"{key}={_cell(item)}" for key, item in value.items())
    return str(value)


def format_rows(rows: Sequence[Mapping]) -> str:
    """Render a list of homogeneous dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    table = [[_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in table))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in table
    )
    return "\n".join([header, separator, body])


def format_figure(result: Mapping) -> str:
    """Render one figure-driver result (title, parameters, rows)."""
    lines = [
        f"Figure {result.get('figure', '?')}: {result.get('title', '')}",
    ]
    params = result.get("params")
    if params:
        lines.append("params: " + ", ".join(f"{key}={value}" for key, value in params.items()))
    lines.append(format_rows(result.get("rows", [])))
    return "\n".join(lines)


def print_figure(result: Mapping) -> None:
    """Print a figure-driver result to stdout."""
    print()
    print(format_figure(result))
