"""Per-figure experiment drivers.

Every figure of the paper's evaluation section (plus Table 1) has a function
here that runs the corresponding experiment on the scaled-down datasets and
returns a structured result::

    {"figure": "7", "title": ..., "params": {...}, "rows": [ {...}, ... ]}

The benchmark suite (``benchmarks/bench_fig*.py``) calls these functions and
prints their rows; EXPERIMENTS.md records a reference run side by side with
the paper's reported numbers.  All sizes are parameters, so closer-to-paper
configurations only require larger arguments (and more patience).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..datasets.registry import table1_row
from .metrics import StreamMetrics
from .runner import ExperimentConfig, get_method, run_speedup_experiment

__all__ = [
    "PAPER_METHODS",
    "PAPER_WORKLOADS",
    "table1",
    "figure1_time_breakdown",
    "figure2_filtering_aids",
    "figure3_filtering_pdbs",
    "figure7_iso_speedup_aids",
    "figure8_iso_speedup_pdbs",
    "figure9_zipf_alpha_iso",
    "figure10_query_groups_ppi_iso",
    "figure11_query_groups_synthetic_iso",
    "figure12_time_speedup_aids",
    "figure13_time_speedup_pdbs",
    "figure14_cache_size_time",
    "figure15_zipf_alpha_time",
    "figure16_query_groups_ppi_time",
    "figure17_query_groups_synthetic_time",
    "figure18_index_sizes",
    "ablation_components",
    "ablation_replacement_policies",
]

#: the paper's base-method line-up
PAPER_METHODS = ("ggsx", "grapes", "grapes6", "ctindex")
#: the paper's four query workloads
PAPER_WORKLOADS = ("uni-uni", "uni-zipf", "zipf-uni", "zipf-zipf")


# ----------------------------------------------------------------------
# Table 1 — dataset characteristics
# ----------------------------------------------------------------------
def table1(scale: float = 1.0) -> dict:
    """Reproduce Table 1: characteristics of the four (generated) datasets."""
    rows = [table1_row(name, scale=scale) for name in ("aids", "pdbs", "ppi", "synthetic")]
    return {
        "figure": "Table 1",
        "title": "Characteristics of datasets (paper values vs generated stand-ins)",
        "params": {"scale": scale},
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Figures 1–3 — where the time goes / filtering power of the base methods
# ----------------------------------------------------------------------
def figure1_time_breakdown(
    datasets: Sequence[str] = ("aids", "pdbs"),
    methods: Sequence[str] = ("ggsx", "grapes", "ctindex"),
    workload: str = "uni-uni",
    **config_overrides,
) -> dict:
    """Figure 1: fraction of query time spent in filtering vs verification."""
    rows = []
    for dataset in datasets:
        for method in methods:
            config = ExperimentConfig(
                dataset=dataset, method=method, workload=workload, **config_overrides
            )
            outcome = run_speedup_experiment(config)
            rows.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "filter_time_pct": round(100 * outcome.base.filter_time_fraction, 1),
                    "verify_time_pct": round(100 * outcome.base.verify_time_fraction, 1),
                }
            )
    return {
        "figure": "1",
        "title": "Dominance of verification time in overall query processing",
        "params": {"workload": workload},
        "rows": rows,
    }


def _filtering_figure(dataset: str, figure: str, methods: Sequence[str], workload: str, **overrides) -> dict:
    rows = []
    for method in methods:
        config = ExperimentConfig(dataset=dataset, method=method, workload=workload, **overrides)
        outcome = run_speedup_experiment(config)
        base = outcome.base
        rows.append(
            {
                "method": method,
                "avg_candidates": round(base.avg_candidates, 2),
                "avg_answers": round(base.avg_answers, 2),
                "avg_false_positives": round(base.avg_false_positives, 2),
            }
        )
    return {
        "figure": figure,
        "title": f"Average candidates, answers and false positives ({dataset.upper()})",
        "params": {"dataset": dataset, "workload": workload},
        "rows": rows,
    }


def figure2_filtering_aids(
    methods: Sequence[str] = ("ggsx", "grapes", "ctindex"),
    workload: str = "uni-uni",
    **overrides,
) -> dict:
    """Figure 2: candidate/answer/false-positive sizes on the AIDS-like dataset."""
    return _filtering_figure("aids", "2", methods, workload, **overrides)


def figure3_filtering_pdbs(
    methods: Sequence[str] = ("ggsx", "grapes", "ctindex"),
    workload: str = "uni-uni",
    **overrides,
) -> dict:
    """Figure 3: candidate/answer/false-positive sizes on the PDBS-like dataset."""
    return _filtering_figure("pdbs", "3", methods, workload, **overrides)


# ----------------------------------------------------------------------
# Figures 7/8 and 12/13 — speedups across workloads and methods
# ----------------------------------------------------------------------
def _speedup_matrix(
    dataset: str,
    figure: str,
    title: str,
    metric: str,
    methods: Sequence[str],
    workloads: Sequence[str],
    **overrides,
) -> dict:
    rows = []
    for workload in workloads:
        for method in methods:
            config = ExperimentConfig(dataset=dataset, method=method, workload=workload, **overrides)
            outcome = run_speedup_experiment(config)
            value = (
                outcome.report.isomorphism_test_speedup
                if metric == "iso"
                else outcome.report.time_speedup
            )
            rows.append(
                {
                    "workload": workload,
                    "method": method,
                    "speedup": round(value, 3),
                }
            )
    return {
        "figure": figure,
        "title": title,
        "params": {"dataset": dataset, "metric": metric},
        "rows": rows,
    }


def figure7_iso_speedup_aids(
    methods: Sequence[str] = PAPER_METHODS,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    **overrides,
) -> dict:
    """Figure 7: speedup in number of isomorphism tests (AIDS-like)."""
    return _speedup_matrix(
        "aids", "7", "Speedup in number of subgraph isomorphism tests (AIDS)",
        "iso", methods, workloads, **overrides,
    )


def figure8_iso_speedup_pdbs(
    methods: Sequence[str] = PAPER_METHODS,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    **overrides,
) -> dict:
    """Figure 8: speedup in number of isomorphism tests (PDBS-like)."""
    return _speedup_matrix(
        "pdbs", "8", "Speedup in number of subgraph isomorphism tests (PDBS)",
        "iso", methods, workloads, **overrides,
    )


def figure12_time_speedup_aids(
    methods: Sequence[str] = PAPER_METHODS,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    **overrides,
) -> dict:
    """Figure 12: speedup in query processing time (AIDS-like)."""
    return _speedup_matrix(
        "aids", "12", "Speedup in query processing time (AIDS)",
        "time", methods, workloads, **overrides,
    )


def figure13_time_speedup_pdbs(
    methods: Sequence[str] = PAPER_METHODS,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    **overrides,
) -> dict:
    """Figure 13: speedup in query processing time (PDBS-like)."""
    return _speedup_matrix(
        "pdbs", "13", "Speedup in query processing time (PDBS)",
        "time", methods, workloads, **overrides,
    )


# ----------------------------------------------------------------------
# Figures 9 and 15 — effect of the Zipf skew α
# ----------------------------------------------------------------------
def _zipf_alpha_figure(
    figure: str, metric: str, dataset: str, method: str, alphas: Sequence[float], **overrides
) -> dict:
    rows = []
    for alpha in alphas:
        config = ExperimentConfig(
            dataset=dataset, method=method, workload="zipf-zipf", alpha=alpha, **overrides
        )
        outcome = run_speedup_experiment(config)
        value = (
            outcome.report.isomorphism_test_speedup
            if metric == "iso"
            else outcome.report.time_speedup
        )
        rows.append({"alpha": alpha, "method": method, "speedup": round(value, 3)})
    label = "isomorphism tests" if metric == "iso" else "query processing time"
    return {
        "figure": figure,
        "title": f"Speedup in {label} vs Zipf skew α ({dataset.upper()}/{method})",
        "params": {"dataset": dataset, "method": method, "metric": metric},
        "rows": rows,
    }


def figure9_zipf_alpha_iso(
    dataset: str = "pdbs",
    method: str = "grapes6",
    alphas: Sequence[float] = (1.1, 1.4, 2.0),
    **overrides,
) -> dict:
    """Figure 9: iso-test speedup vs Zipf α (PDBS-like, Grapes(6))."""
    return _zipf_alpha_figure("9", "iso", dataset, method, alphas, **overrides)


def figure15_zipf_alpha_time(
    dataset: str = "pdbs",
    method: str = "grapes6",
    alphas: Sequence[float] = (1.1, 1.4, 2.0),
    **overrides,
) -> dict:
    """Figure 15: query-time speedup vs Zipf α (PDBS-like, Grapes(6))."""
    return _zipf_alpha_figure("15", "time", dataset, method, alphas, **overrides)


# ----------------------------------------------------------------------
# Figures 10/11 and 16/17 — speedups per query-size group vs cache size
# ----------------------------------------------------------------------
def _group_speedups(base: StreamMetrics, igq: StreamMetrics, metric: str) -> dict[int, float]:
    base_groups = base.group_avg_tests() if metric == "iso" else base.group_avg_seconds()
    igq_groups = igq.group_avg_tests() if metric == "iso" else igq.group_avg_seconds()
    speedups = {}
    for size, base_value in base_groups.items():
        igq_value = igq_groups.get(size)
        if igq_value is None:
            continue
        speedups[size] = base_value / igq_value if igq_value > 0 else float("inf")
    return speedups


def _query_group_figure(
    figure: str,
    metric: str,
    dataset: str,
    method: str,
    cache_sizes: Sequence[int],
    alpha: float,
    **overrides,
) -> dict:
    rows = []
    for cache_size in cache_sizes:
        config = ExperimentConfig(
            dataset=dataset,
            method=method,
            workload="zipf-zipf",
            alpha=alpha,
            cache_size=cache_size,
            **overrides,
        )
        outcome = run_speedup_experiment(config)
        for size, value in sorted(
            _group_speedups(outcome.base, outcome.igq, metric).items()
        ):
            rows.append(
                {
                    "cache_size": cache_size,
                    "query_group": f"Q{size}",
                    "speedup": round(value, 3),
                }
            )
        overall = (
            outcome.report.isomorphism_test_speedup
            if metric == "iso"
            else outcome.report.time_speedup
        )
        rows.append(
            {"cache_size": cache_size, "query_group": "all", "speedup": round(overall, 3)}
        )
    label = "isomorphism tests" if metric == "iso" else "query processing time"
    return {
        "figure": figure,
        "title": f"Speedup in {label} per query group ({dataset.upper()}/{method}, α={alpha})",
        "params": {
            "dataset": dataset,
            "method": method,
            "alpha": alpha,
            "cache_sizes": list(cache_sizes),
            "metric": metric,
        },
        "rows": rows,
    }


def figure10_query_groups_ppi_iso(
    cache_sizes: Sequence[int] = (20, 30, 40),
    alpha: float = 1.4,
    method: str = "grapes6",
    **overrides,
) -> dict:
    """Figure 10: iso-test speedup per query group (PPI-like, Grapes(6))."""
    return _query_group_figure("10", "iso", "ppi", method, cache_sizes, alpha, **overrides)


def figure11_query_groups_synthetic_iso(
    cache_sizes: Sequence[int] = (20, 30, 40),
    alpha: float = 2.4,
    method: str = "grapes6",
    **overrides,
) -> dict:
    """Figure 11: iso-test speedup per query group (dense synthetic, Grapes(6))."""
    return _query_group_figure(
        "11", "iso", "synthetic", method, cache_sizes, alpha, **overrides
    )


def figure16_query_groups_ppi_time(
    cache_sizes: Sequence[int] = (20, 30, 40),
    alpha: float = 1.4,
    method: str = "grapes6",
    **overrides,
) -> dict:
    """Figure 16: query-time speedup per query group (PPI-like, Grapes(6))."""
    return _query_group_figure("16", "time", "ppi", method, cache_sizes, alpha, **overrides)


def figure17_query_groups_synthetic_time(
    cache_sizes: Sequence[int] = (20, 30, 40),
    alpha: float = 2.4,
    method: str = "grapes6",
    **overrides,
) -> dict:
    """Figure 17: query-time speedup per query group (dense synthetic, Grapes(6))."""
    return _query_group_figure(
        "17", "time", "synthetic", method, cache_sizes, alpha, **overrides
    )


# ----------------------------------------------------------------------
# Figure 14 — query-time speedup vs cache size
# ----------------------------------------------------------------------
def figure14_cache_size_time(
    dataset: str = "pdbs",
    method: str = "grapes6",
    cache_sizes: Sequence[int] = (30, 60, 90),
    workload: str = "zipf-zipf",
    **overrides,
) -> dict:
    """Figure 14: query-time speedup vs iGQ cache size (PDBS-like, Grapes(6)).

    The window size follows the paper's ratio (``W = C / 5``) unless an
    explicit ``window_size`` override is supplied.
    """
    explicit_window = overrides.pop("window_size", None)
    rows = []
    for cache_size in cache_sizes:
        window_size = explicit_window if explicit_window is not None else max(cache_size // 5, 1)
        config = ExperimentConfig(
            dataset=dataset,
            method=method,
            workload=workload,
            cache_size=cache_size,
            window_size=window_size,
            **overrides,
        )
        outcome = run_speedup_experiment(config)
        rows.append(
            {
                "cache_size": cache_size,
                "time_speedup": round(outcome.report.time_speedup, 3),
                "iso_test_speedup": round(outcome.report.isomorphism_test_speedup, 3),
            }
        )
    return {
        "figure": "14",
        "title": f"Speedup in query processing time vs cache size ({dataset.upper()}/{method})",
        "params": {"dataset": dataset, "method": method, "workload": workload},
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Figure 18 — index sizes
# ----------------------------------------------------------------------
def figure18_index_sizes(dataset: str = "aids", **overrides) -> dict:
    """Figure 18: absolute index sizes, base methods vs the iGQ overhead.

    For each base method the default configuration and the next-larger
    configuration (longer paths / bigger trees, cycles and bitmaps) are
    reported, alongside the size of the iGQ query index after a full
    zipf–zipf run (the paper's point: the iGQ overhead is negligible
    compared to growing the base index).
    """
    rows = []
    default_configs = {
        "ggsx": {},
        "grapes": {},
        "ctindex": {},
    }
    larger_configs = {
        "ggsx": {"max_path_length": 5},
        "grapes": {"max_path_length": 5},
        "ctindex": {"tree_max_size": 5, "cycle_max_length": 7, "bitmap_bits": 8192},
    }
    for method, extra in default_configs.items():
        config = ExperimentConfig(dataset=dataset, method=method, **extra, **overrides)
        built = get_method(config)
        rows.append(
            {
                "index": f"{method} (default)",
                "size_bytes": built.index_size_bytes(),
            }
        )
    for method, extra in larger_configs.items():
        config = ExperimentConfig(dataset=dataset, method=method, **extra, **overrides)
        built = get_method(config)
        rows.append(
            {
                "index": f"{method} (larger config)",
                "size_bytes": built.index_size_bytes(),
            }
        )
    igq_outcome = run_speedup_experiment(
        ExperimentConfig(dataset=dataset, method="ggsx", workload="zipf-zipf", **overrides)
    )
    rows.append(
        {
            "index": "iGQ query index (after zipf-zipf run)",
            "size_bytes": igq_outcome.engine.index_size_bytes(),
        }
    )
    return {
        "figure": "18",
        "title": f"Absolute index sizes ({dataset.upper()})",
        "params": {"dataset": dataset},
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_components(
    dataset: str = "aids", method: str = "ggsx", workload: str = "zipf-zipf", **overrides
) -> dict:
    """Isub-only vs Isuper-only vs both (the two pruning paths of §4.2)."""
    variants = [
        ("isub+isuper", True, True),
        ("isub only", True, False),
        ("isuper only", False, True),
    ]
    rows = []
    for label, enable_isub, enable_isuper in variants:
        config = ExperimentConfig(
            dataset=dataset,
            method=method,
            workload=workload,
            enable_isub=enable_isub,
            enable_isuper=enable_isuper,
            **overrides,
        )
        outcome = run_speedup_experiment(config)
        rows.append(
            {
                "components": label,
                "iso_test_speedup": round(outcome.report.isomorphism_test_speedup, 3),
                "time_speedup": round(outcome.report.time_speedup, 3),
            }
        )
    return {
        "figure": "ablation/components",
        "title": f"iGQ component ablation ({dataset.upper()}/{method}/{workload})",
        "params": {"dataset": dataset, "method": method, "workload": workload},
        "rows": rows,
    }


def ablation_replacement_policies(
    dataset: str = "pdbs",
    method: str = "grapes",
    workload: str = "zipf-zipf",
    policies: Sequence[str] = ("utility", "hit_rate", "fifo"),
    cache_size: int | None = 30,
    **overrides,
) -> dict:
    """Utility-based replacement vs popularity-only vs FIFO (§5.1).

    The window defaults to the paper's ``W = C / 5`` ratio so that each
    maintenance step evicts a policy-chosen minority of the cache (with
    ``W = C`` every policy would churn the whole cache and behave alike).
    """
    explicit_window = overrides.pop("window_size", None)
    rows = []
    for policy in policies:
        window_size = (
            explicit_window
            if explicit_window is not None
            else max((cache_size or 30) // 5, 1)
        )
        config = ExperimentConfig(
            dataset=dataset,
            method=method,
            workload=workload,
            policy=policy,
            cache_size=cache_size,
            window_size=window_size,
            **overrides,
        )
        outcome = run_speedup_experiment(config)
        rows.append(
            {
                "policy": policy,
                "iso_test_speedup": round(outcome.report.isomorphism_test_speedup, 3),
                "time_speedup": round(outcome.report.time_speedup, 3),
            }
        )
    return {
        "figure": "ablation/replacement",
        "title": f"Replacement policy ablation ({dataset.upper()}/{method}/{workload})",
        "params": {"dataset": dataset, "method": method, "cache_size": cache_size},
        "rows": rows,
    }
