"""Dataset-level statistics (reproduces Table 1 of the paper).

Table 1 characterises each dataset by the number of distinct vertex labels,
the number of graphs, the average vertex degree, and the mean / standard
deviation / maximum of the node and edge counts per graph.  The same summary
is produced here for any collection of :class:`~repro.graphs.graph.LabeledGraph`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .graph import LabeledGraph

__all__ = ["DatasetStatistics", "summarize_dataset"]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((value - mean) ** 2 for value in values) / len(values))


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary statistics of a graph collection, mirroring Table 1."""

    num_graphs: int
    num_labels: int
    average_degree: float
    nodes_avg: float
    nodes_std: float
    nodes_max: int
    edges_avg: float
    edges_std: float
    edges_max: int

    def as_row(self) -> dict[str, float | int]:
        """Return the statistics as a flat dictionary (one table row)."""
        return {
            "num_labels": self.num_labels,
            "num_graphs": self.num_graphs,
            "avg_degree": round(self.average_degree, 2),
            "nodes_avg": round(self.nodes_avg, 1),
            "nodes_std": round(self.nodes_std, 1),
            "nodes_max": self.nodes_max,
            "edges_avg": round(self.edges_avg, 1),
            "edges_std": round(self.edges_std, 1),
            "edges_max": self.edges_max,
        }


def summarize_dataset(graphs: Iterable[LabeledGraph]) -> DatasetStatistics:
    """Compute :class:`DatasetStatistics` over ``graphs``."""
    graphs = list(graphs)
    labels: set = set()
    node_counts: list[int] = []
    edge_counts: list[int] = []
    total_degree = 0.0
    total_vertices = 0
    for graph in graphs:
        labels.update(graph.labels())
        node_counts.append(graph.num_vertices)
        edge_counts.append(graph.num_edges)
        total_degree += 2.0 * graph.num_edges
        total_vertices += graph.num_vertices
    average_degree = total_degree / total_vertices if total_vertices else 0.0
    return DatasetStatistics(
        num_graphs=len(graphs),
        num_labels=len(labels),
        average_degree=average_degree,
        nodes_avg=_mean(node_counts),
        nodes_std=_std(node_counts),
        nodes_max=max(node_counts) if node_counts else 0,
        edges_avg=_mean(edge_counts),
        edges_std=_std(edge_counts),
        edges_max=max(edge_counts) if edge_counts else 0,
    )
