"""Integer-bitmask candidate sets over dataset-graph ids.

The filter-then-verify pipeline shuffles *candidate sets* between its layers:
the base method produces one, the two iGQ components prune it, the verifier
consumes what is left.  The seed implementation used plain ``set`` objects;
every pruning step therefore paid per-element hashing.  This module replaces
that bookkeeping with arbitrary-precision integer bitmasks: a
:class:`GraphIdSpace` fixes a bit position for every dataset-graph id, and a
:class:`CandidateBitmap` wraps one mask while still *behaving* like a set
(it implements :class:`collections.abc.Set`), so every existing consumer —
metric accounting, tests, reporting — keeps working unchanged while the hot
set algebra (union / intersection / difference between candidate sets and
cached answer sets) collapses to single CPython big-int operations.

``iter_bits`` is shared with the two component indexes, which use raw masks
keyed by cache-entry id for their own candidate bookkeeping.

:class:`GraphIdSpace` is deliberately agnostic about what its ids denote:
the compiled verification kernel
(:mod:`repro.isomorphism.compiled`) instantiates it over the *vertex* ids of
a single graph to get dense bit positions for neighbourhood bitsets —
:data:`VertexIdSpace` is the alias used in that role.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Set

__all__ = [
    "DensePositions",
    "GraphIdSpace",
    "VertexIdSpace",
    "CandidateBitmap",
    "iter_bits",
]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class DensePositions:
    """A growable key → dense-bit-position allocator for bitmask bookkeeping.

    Unlike the frozen :class:`GraphIdSpace`, keys arrive over time (the iGQ
    component indexes add cache entries whose monotonically assigned ids are
    never reused, so using the ids as bit positions directly would let the
    masks grow without bound over a long query stream).  :meth:`remove`
    releases the key's position onto a free list and :meth:`add` reuses
    freed positions before growing, so a churny add/remove stream keeps the
    allocator's footprint proportional to the number of *live* keys.  The
    trade-off is that position order equals insertion order only until the
    first reuse; the engine's maintenance path always rebuilds through
    :meth:`reset`, so its iteration order is unaffected.
    """

    __slots__ = ("_positions", "_order", "_free")

    def __init__(self) -> None:
        self._positions: dict = {}
        self._order: list = []
        self._free: list[int] = []

    def add(self, key: Hashable) -> int:
        """Assign (and return) a free position for ``key``."""
        if self._free:
            position = self._free.pop()
            self._order[position] = key
        else:
            position = len(self._order)
            self._order.append(key)
        self._positions[key] = position
        return position

    def remove(self, key: Hashable) -> None:
        """Forget ``key`` and release its position for reuse."""
        position = self._positions.pop(key)
        self._order[position] = None
        self._free.append(position)

    def reset(self) -> None:
        """Drop all assignments (start of a shadow rebuild)."""
        self._positions = {}
        self._order = []
        self._free = []

    def bit(self, key: Hashable) -> int:
        """Single-bit mask of ``key``."""
        return 1 << self._positions[key]

    def key_at(self, position: int) -> Hashable:
        """Key assigned to ``position``."""
        return self._order[position]

    def keys_of(self, mask: int) -> Iterator[Hashable]:
        """Keys covered by ``mask``, in position order.

        Position order equals insertion order only until a freed position
        is recycled by :meth:`add`; after that, a recycled key sorts where
        its predecessor did.  Callers needing strict insertion order must
        rebuild through :meth:`reset` (as the engine's maintenance does).
        """
        order = self._order
        return (order[position] for position in iter_bits(mask))

    def __len__(self) -> int:
        return len(self._positions)


class GraphIdSpace:
    """A frozen id ↔ bit-position mapping over a collection of graph ids."""

    __slots__ = ("_ids", "_positions")

    def __init__(self, ids: Iterable[Hashable]) -> None:
        self._ids = tuple(ids)
        self._positions = {graph_id: index for index, graph_id in enumerate(self._ids)}
        if len(self._positions) != len(self._ids):
            raise ValueError("graph ids must be unique")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, graph_id: Hashable) -> bool:
        return graph_id in self._positions

    def position(self, graph_id: Hashable) -> int:
        """Bit position assigned to ``graph_id``."""
        return self._positions[graph_id]

    def bit(self, graph_id: Hashable) -> int:
        """The single-bit mask of ``graph_id``."""
        return 1 << self._positions[graph_id]

    def id_at(self, position: int) -> Hashable:
        """Graph id stored at ``position``."""
        return self._ids[position]

    @property
    def full_mask(self) -> int:
        """Mask with one set bit per known graph id."""
        return (1 << len(self._ids)) - 1

    # ------------------------------------------------------------------
    def mask_of(self, ids: Iterable[Hashable]) -> int:
        """Mask covering ``ids`` (fast path for same-space bitmaps)."""
        if isinstance(ids, CandidateBitmap) and ids.space is self:
            return ids.mask
        positions = self._positions
        mask = 0
        for graph_id in ids:
            mask |= 1 << positions[graph_id]
        return mask

    def to_ids(self, mask: int) -> list:
        """Graph ids covered by ``mask``, in bit-position order."""
        ids = self._ids
        return [ids[position] for position in iter_bits(mask)]

    def bitmap(self, mask: int = 0) -> "CandidateBitmap":
        """Wrap ``mask`` in a set-like :class:`CandidateBitmap`."""
        return CandidateBitmap(self, mask)

    def __repr__(self) -> str:
        return f"<GraphIdSpace ids={len(self._ids)}>"


#: the same frozen id ↔ bit-position mapping, used over the vertex ids of a
#: single graph (compiled verification) instead of over dataset-graph ids
VertexIdSpace = GraphIdSpace


class CandidateBitmap(Set):
    """A set of graph ids backed by one integer mask over a shared id space.

    Interoperates with built-in ``set`` / ``frozenset`` in both operand
    orders through the :class:`collections.abc.Set` protocol; operations
    between two bitmaps of the *same* space short-circuit to integer
    bitwise ops.
    """

    __slots__ = ("space", "mask")

    def __init__(self, space: GraphIdSpace, mask: int = 0) -> None:
        self.space = space
        self.mask = mask

    @classmethod
    def from_ids(cls, space: GraphIdSpace, ids: Iterable[Hashable]) -> "CandidateBitmap":
        """Build a bitmap over ``space`` covering ``ids``."""
        return cls(space, space.mask_of(ids))

    # ``collections.abc.Set`` builds results of mixed-type operations via
    # this hook; binding it to the instance keeps the id space attached.
    def _from_iterable(self, iterable: Iterable[Hashable]) -> "CandidateBitmap":
        return CandidateBitmap.from_ids(self.space, iterable)

    # ------------------------------------------------------------------
    def __contains__(self, graph_id: Hashable) -> bool:
        position = self.space._positions.get(graph_id)
        return position is not None and bool((self.mask >> position) & 1)

    def __iter__(self) -> Iterator[Hashable]:
        ids = self.space._ids
        return (ids[position] for position in iter_bits(self.mask))

    def __len__(self) -> int:
        return self.mask.bit_count()

    def __bool__(self) -> bool:
        return self.mask != 0

    # ------------------------------------------------------------------
    # Same-space fast paths (fall back to the Set protocol otherwise)
    # ------------------------------------------------------------------
    def _same_space_mask(self, other: object) -> int | None:
        if isinstance(other, CandidateBitmap) and other.space is self.space:
            return other.mask
        return None

    def __and__(self, other):
        mask = self._same_space_mask(other)
        if mask is None:
            return super().__and__(other)
        return CandidateBitmap(self.space, self.mask & mask)

    def __or__(self, other):
        mask = self._same_space_mask(other)
        if mask is None:
            return super().__or__(other)
        return CandidateBitmap(self.space, self.mask | mask)

    def __sub__(self, other):
        mask = self._same_space_mask(other)
        if mask is None:
            return super().__sub__(other)
        return CandidateBitmap(self.space, self.mask & ~mask)

    def __xor__(self, other):
        mask = self._same_space_mask(other)
        if mask is None:
            return super().__xor__(other)
        return CandidateBitmap(self.space, self.mask ^ mask)

    def __le__(self, other):
        mask = self._same_space_mask(other)
        if mask is None:
            return super().__le__(other)
        return self.mask & ~mask == 0

    def __eq__(self, other):
        mask = self._same_space_mask(other)
        if mask is None:
            return super().__eq__(other)
        return self.mask == mask

    __hash__ = None

    def isdisjoint(self, other) -> bool:
        mask = self._same_space_mask(other)
        if mask is None:
            return super().isdisjoint(other)
        return self.mask & mask == 0

    def __repr__(self) -> str:
        preview = ", ".join(repr(graph_id) for _, graph_id in zip(range(6), self))
        suffix = ", ..." if len(self) > 6 else ""
        return f"CandidateBitmap({{{preview}{suffix}}})"
