"""Graph substrate: labeled graphs, traversal, statistics and I/O."""

from .bitset import CandidateBitmap, GraphIdSpace, VertexIdSpace, iter_bits
from .database import GraphDatabase
from .graph import GraphError, LabeledGraph
from .io import (
    graph_from_dict,
    graph_to_dict,
    graphs_from_gfu,
    graphs_to_gfu,
    read_gfu,
    read_jsonl,
    write_gfu,
    write_jsonl,
)
from .statistics import DatasetStatistics, summarize_dataset
from .traversal import (
    bfs_distances,
    bfs_edges,
    bfs_order,
    connected_components,
    dfs_order,
    is_connected,
    largest_connected_component,
    shortest_path_length,
    vertices_within_distance,
)

__all__ = [
    "CandidateBitmap",
    "GraphDatabase",
    "GraphError",
    "GraphIdSpace",
    "VertexIdSpace",
    "LabeledGraph",
    "iter_bits",
    "DatasetStatistics",
    "summarize_dataset",
    "bfs_distances",
    "bfs_edges",
    "bfs_order",
    "connected_components",
    "dfs_order",
    "is_connected",
    "largest_connected_component",
    "shortest_path_length",
    "vertices_within_distance",
    "graph_from_dict",
    "graph_to_dict",
    "graphs_from_gfu",
    "graphs_to_gfu",
    "read_gfu",
    "read_jsonl",
    "write_gfu",
    "write_jsonl",
]
