"""Serialization of labeled graphs and graph collections.

Two formats are supported:

``GFU`` (text)
    The simple multi-graph text format used by the GGSX / Grapes project
    distributions (one ``#name`` header, vertex count, one label per line,
    edge count, one ``u v`` pair per line).  This is the interchange format
    of the original paper's artefacts, so dataset files written by this
    module can be consumed by the reference C++ tools and vice versa.

``JSONL``
    One JSON object per line with explicit vertex ids and optional edge
    labels; loss-less for graphs with non-contiguous ids.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from .graph import GraphError, LabeledGraph

__all__ = [
    "graphs_to_gfu",
    "graphs_from_gfu",
    "write_gfu",
    "read_gfu",
    "graph_to_dict",
    "graph_from_dict",
    "write_jsonl",
    "read_jsonl",
]


# ----------------------------------------------------------------------
# GFU text format
# ----------------------------------------------------------------------
def graphs_to_gfu(graphs: Iterable[LabeledGraph]) -> str:
    """Serialise ``graphs`` to a GFU-format string.

    Vertices are renumbered to ``0..n-1`` in iteration order; the caller is
    expected to use :meth:`LabeledGraph.relabeled` beforehand if a specific
    numbering must be preserved.
    """
    chunks: list[str] = []
    for index, graph in enumerate(graphs):
        name = graph.name or f"g{index}"
        mapping = {vertex: position for position, vertex in enumerate(graph.vertices())}
        lines = [f"#{name}", str(graph.num_vertices)]
        lines.extend(str(graph.label(vertex)) for vertex in graph.vertices())
        lines.append(str(graph.num_edges))
        lines.extend(f"{mapping[u]} {mapping[v]}" for u, v in graph.edges())
        chunks.append("\n".join(lines))
    return "\n".join(chunks) + ("\n" if chunks else "")


def graphs_from_gfu(text: str) -> list[LabeledGraph]:
    """Parse a GFU-format string into a list of graphs."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    graphs: list[LabeledGraph] = []
    position = 0
    while position < len(lines):
        header = lines[position]
        if not header.startswith("#"):
            raise GraphError(f"expected '#<name>' header, got {header!r}")
        name = header[1:].strip() or None
        position += 1
        try:
            num_vertices = int(lines[position])
        except (IndexError, ValueError) as exc:
            raise GraphError(f"invalid vertex count for graph {name!r}") from exc
        position += 1
        graph = LabeledGraph(name=name)
        for vertex in range(num_vertices):
            try:
                graph.add_vertex(vertex, lines[position])
            except IndexError as exc:
                raise GraphError(f"truncated vertex labels in graph {name!r}") from exc
            position += 1
        try:
            num_edges = int(lines[position])
        except (IndexError, ValueError) as exc:
            raise GraphError(f"invalid edge count for graph {name!r}") from exc
        position += 1
        for _ in range(num_edges):
            try:
                u_text, v_text = lines[position].split()
            except (IndexError, ValueError) as exc:
                raise GraphError(f"invalid edge line in graph {name!r}") from exc
            graph.add_edge(int(u_text), int(v_text))
            position += 1
        graphs.append(graph)
    return graphs


def write_gfu(graphs: Iterable[LabeledGraph], path: str | Path) -> None:
    """Write ``graphs`` to ``path`` in GFU format."""
    Path(path).write_text(graphs_to_gfu(graphs), encoding="utf-8")


def read_gfu(path: str | Path) -> list[LabeledGraph]:
    """Read a GFU file into a list of graphs."""
    return graphs_from_gfu(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# JSONL format
# ----------------------------------------------------------------------
def graph_to_dict(graph: LabeledGraph) -> dict:
    """Return a JSON-serialisable dictionary describing ``graph``."""
    return {
        "name": graph.name,
        "vertices": [[vertex, graph.label(vertex)] for vertex in graph.vertices()],
        "edges": [[u, v, graph.edge_label(u, v)] for u, v in graph.edges()],
    }


def graph_from_dict(payload: dict) -> LabeledGraph:
    """Rebuild a graph from the output of :func:`graph_to_dict`."""
    graph = LabeledGraph(name=payload.get("name"))
    for vertex, label in payload["vertices"]:
        graph.add_vertex(vertex, label)
    for edge in payload["edges"]:
        if len(edge) == 3:
            u, v, edge_label = edge
        else:
            (u, v), edge_label = edge, None
        graph.add_edge(u, v, edge_label)
    return graph


def write_jsonl(graphs: Iterable[LabeledGraph], path: str | Path) -> None:
    """Write ``graphs`` to ``path``, one JSON document per line."""
    with Path(path).open("w", encoding="utf-8") as handle:
        for graph in graphs:
            handle.write(json.dumps(graph_to_dict(graph)))
            handle.write("\n")


def read_jsonl(path: str | Path) -> list[LabeledGraph]:
    """Read a JSONL graph collection from ``path``."""
    return list(iter_jsonl(path))


def iter_jsonl(path: str | Path) -> Iterator[LabeledGraph]:
    """Lazily iterate over the graphs stored in a JSONL file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield graph_from_dict(json.loads(line))
