"""A small in-memory graph database: the dataset ``D = {G_1, ..., G_n}``.

The subgraph/supergraph querying problems of Definitions 3 and 4 are posed
against a *collection* of graphs.  :class:`GraphDatabase` is that collection:
it assigns stable ids, provides lookups, and knows the size of the label
universe (the ``L`` of the cost model in §5.1).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from .graph import GraphError, LabeledGraph

__all__ = ["GraphDatabase"]


class GraphDatabase:
    """An ordered, id-addressable collection of dataset graphs."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._graphs: dict[Hashable, LabeledGraph] = {}
        self._labels: set = set()

    # ------------------------------------------------------------------
    @classmethod
    def from_graphs(
        cls, graphs: Iterable[LabeledGraph], name: str | None = None
    ) -> "GraphDatabase":
        """Build a database from an iterable of graphs.

        Graphs named ``"<name>"`` keep their name as id; unnamed graphs get a
        positional ``"g<i>"`` id.
        """
        database = cls(name=name)
        for index, graph in enumerate(graphs):
            graph_id = graph.name if graph.name is not None else f"g{index}"
            database.add(graph_id, graph)
        return database

    def add(self, graph_id: Hashable, graph: LabeledGraph) -> None:
        """Add ``graph`` under ``graph_id`` (ids must be unique)."""
        if graph_id in self._graphs:
            raise GraphError(f"duplicate graph id {graph_id!r}")
        self._graphs[graph_id] = graph
        self._labels.update(graph.labels())

    # ------------------------------------------------------------------
    def get(self, graph_id: Hashable) -> LabeledGraph:
        """Return the graph stored under ``graph_id``."""
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise GraphError(f"unknown graph id {graph_id!r}") from None

    def ids(self) -> list[Hashable]:
        """All graph ids, in insertion order."""
        return list(self._graphs)

    def items(self) -> Iterator[tuple[Hashable, LabeledGraph]]:
        """Iterate over ``(graph_id, graph)`` pairs in insertion order."""
        return iter(self._graphs.items())

    def graphs(self) -> Iterator[LabeledGraph]:
        """Iterate over the stored graphs in insertion order."""
        return iter(self._graphs.values())

    @property
    def num_labels(self) -> int:
        """Size of the vertex-label universe across all stored graphs."""
        return len(self._labels)

    def labels(self) -> set:
        """The vertex-label universe."""
        return set(self._labels)

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, graph_id: Hashable) -> bool:
        return graph_id in self._graphs

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._graphs)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"<GraphDatabase{label} graphs={len(self._graphs)} labels={self.num_labels}>"
